"""Resilient execution layer for the decision runner.

The paper's procedures are EXPTIME-hard (nonrecursive containment is
EXPTIME-complete; general containment is undecidable), so a batch over
a large scenario matrix *will* contain cells that time out, exhaust
memory, or kill a worker.  This package makes those outcomes data
instead of batch aborts, via four cooperating pieces:

* :mod:`repro.resilience.supervisor` -- wraps
  ``ProcessPoolExecutor`` with crash detection (``BrokenProcessPool``
  and heartbeat-based stall detection), pool respawn, bounded retries
  with deterministic backoff, and quarantine of poisoned jobs; also
  home of the error taxonomy (:func:`classify_failure`,
  :data:`ERROR_CATEGORIES`).
* :mod:`repro.resilience.ladder` -- the degradation ladder: which
  cheaper (engine, kernel) rung a failed job retries on
  (columnar -> compiled -> interpretive; bitset -> frozenset).
* :mod:`repro.resilience.chaos` -- deterministic fault injection
  (crash / hang / memory / corrupt, keyed by scenario, per-process job
  index, and attempt number) that the resilience tests and the CI
  chaos job use to prove every recovery path end-to-end.
* universal deadlines live in :mod:`repro.budget` (the cooperative
  ``check_deadline`` tier threaded through the fixpoint loops and
  antichain kernels); this package consumes them.

:class:`ResilienceConfig` bundles the knobs the batch runner threads
through: per-job deadline, retry budget, whether the ladder is
enabled, and an explicit chaos schedule (``None`` defers to the
``REPRO_CHAOS`` environment variable, which is how schedules reach
pool workers across respawns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .chaos import (ChaosSchedule, Fault, PayloadCorruption,
                    SimulatedWorkerCrash, parse_schedule)
from .ladder import ENGINE_CHAIN, KERNEL_CHAIN, ladder_rungs, rung_label
from .supervisor import (ERROR_CATEGORIES, Quarantined, RetryPolicy,
                         SupervisedOutcome, classify_failure,
                         run_supervised)

__all__ = [
    "ChaosSchedule",
    "ENGINE_CHAIN",
    "ERROR_CATEGORIES",
    "Fault",
    "KERNEL_CHAIN",
    "PayloadCorruption",
    "Quarantined",
    "ResilienceConfig",
    "RetryPolicy",
    "SimulatedWorkerCrash",
    "SupervisedOutcome",
    "classify_failure",
    "ladder_rungs",
    "parse_schedule",
    "run_supervised",
    "rung_label",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """The runner-facing bundle of resilience knobs.

    ``deadline_s`` is the per-job wall-clock deadline (combined with a
    scenario's own ``budget_s`` by taking the tighter of the two);
    ``max_attempts`` bounds total tries per job across ladder rungs
    and supervisor resubmissions; ``ladder=False`` pins every retry to
    the job's own (engine, kernel); ``chaos=None`` means "read the
    ``REPRO_CHAOS`` environment variable", which is also how a
    schedule survives pool respawns; ``stall_timeout_s`` arms the
    supervisor's heartbeat watchdog.  Instances are immutable and
    picklable -- they ride along to pool workers.
    """

    deadline_s: Optional[float] = None
    max_attempts: int = 3
    ladder: bool = True
    chaos: Optional[ChaosSchedule] = None
    backoff_base_s: float = 0.05
    stall_timeout_s: Optional[float] = None

    def policy(self) -> RetryPolicy:
        """The supervisor retry policy these knobs imply."""
        return RetryPolicy(
            max_attempts=self.max_attempts,
            backoff_base_s=self.backoff_base_s,
        )
