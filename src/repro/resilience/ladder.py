"""The degradation ladder: which cheaper configuration answers when a
job's own configuration fails.

The engine axis orders the evaluation backends by how much machinery
sits between the program and the answer -- ``columnar`` (vectorized
relation storage + batch join kernels) over ``compiled`` (row-oriented
compiled plans) over ``interpretive`` (the direct reference
interpreter).  The kernel axis orders the antichain representations:
``bitset`` (interned bit-vector antichains) over ``frozenset`` (the
reference sets-of-sets form).  Each step down trades speed for a
smaller, simpler footprint, which is exactly what a job that just blew
its memory budget or crashed a worker needs on its retry.

Decision-kind jobs (containment / equivalence / boundedness) spend
their time in the antichain kernels, so they degrade along the kernel
axis; evaluation-kind jobs (evaluation / magic) degrade along the
engine axis.  Every rung still runs the same decision procedure
against the same scenario ground truth -- degradation changes *how*
the answer is computed, never *what* is checked.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = [
    "ENGINE_CHAIN",
    "KERNEL_CHAIN",
    "ladder_rungs",
    "rung_label",
]

#: Engine backends, fastest/heaviest first (labels match
#: ``repro.runner.batch.ENGINE_CONFIGS``).
ENGINE_CHAIN: Tuple[str, ...] = ("columnar", "compiled", "interpretive")

#: Antichain kernels, fastest/heaviest first (labels match
#: ``repro.runner.batch.KERNEL_CONFIGS``).
KERNEL_CHAIN: Tuple[str, ...] = ("bitset", "frozenset")


def rung_label(engine: str, kernel: str) -> str:
    """The ``engine/kernel`` display form used in ``degraded_to``."""
    return f"{engine}/{kernel}"


def ladder_rungs(engine: str, kernel: str,
                 decision: bool) -> List[Tuple[str, str]]:
    """The (engine, kernel) configurations to try, in order.

    The first rung is the job's own configuration; each later rung is
    one step down the axis that matters for the job's kind --
    *decision* jobs walk :data:`KERNEL_CHAIN`, evaluation jobs walk
    :data:`ENGINE_CHAIN` -- starting from wherever the job already
    sits (a job that asked for ``frozenset`` has no cheaper kernel
    left and gets a single rung).

        >>> ladder_rungs("columnar", "bitset", decision=True)
        [('columnar', 'bitset'), ('columnar', 'frozenset')]
        >>> ladder_rungs("columnar", "bitset", decision=False)
        [('columnar', 'bitset'), ('compiled', 'bitset'), ('interpretive', 'bitset')]
        >>> ladder_rungs("interpretive", "frozenset", decision=False)
        [('interpretive', 'frozenset')]
    """
    if decision:
        if kernel in KERNEL_CHAIN:
            start = KERNEL_CHAIN.index(kernel)
            return [(engine, k) for k in KERNEL_CHAIN[start:]]
        return [(engine, kernel)]
    if engine in ENGINE_CHAIN:
        start = ENGINE_CHAIN.index(engine)
        return [(e, kernel) for e in ENGINE_CHAIN[start:]]
    return [(engine, kernel)]
