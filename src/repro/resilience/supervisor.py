"""Supervised process-pool execution: crash detection, respawn,
bounded retries, and quarantine.

``ProcessPoolExecutor`` has a brutal failure mode: one worker dying
(segfault, ``os._exit``, OOM-kill) marks the whole pool broken, every
pending future raises ``BrokenProcessPool``, and the batch aborts with
no record of which job was poisoned.  For EXPTIME-hard decision
workloads that is the *expected* steady state, not an anomaly, so the
supervisor turns worker death into data:

1. **Wave 0** submits one future per shard (preserving the runner's
   scenario-affine sharding and warm-cache semantics).  Futures that
   complete before a crash keep their results.
2. On a broken pool -- detected via ``BrokenProcessPool`` from any
   future, or a **stall** (no future completes and no worker heartbeat
   within ``stall_timeout_s``, in which case the supervisor kills the
   workers itself) -- the executor is shut down and respawned, and
   every job whose future died is charged one attempt.
3. Failed jobs retry in **sequential isolation**: one future in
   flight at a time, so a poisoned job can only take itself down and
   every crash attributes exactly -- a concurrent retry wave would let
   the poisoned job break the pool under its innocent wave-mates and
   charge them too.  Retries of the same job are separated by
   exponential backoff with deterministic jitter (hashed from the job
   key, so reruns sleep the same schedule).
4. A job that still fails after ``max_attempts`` tries is
   **quarantined**: the batch completes without it and the caller
   receives a :class:`Quarantined` record (job, attempts, error
   category) to surface as a ``Decision``-shaped error row.

The supervisor is generic over the job/result types: the batch runner
passes its shard and job callables in, and converts
:class:`Quarantined` records into error decisions.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (Any, Callable, List, Optional, Sequence, Tuple)

from ..budget import BudgetExhausted
from .chaos import PayloadCorruption, SimulatedWorkerCrash

__all__ = [
    "ERROR_CATEGORIES",
    "Quarantined",
    "RetryPolicy",
    "SupervisedOutcome",
    "beat",
    "classify_failure",
    "run_supervised",
]

#: The error taxonomy, in severity order used by summary tables.
ERROR_CATEGORIES: Tuple[str, ...] = (
    "timeout", "memory", "crash", "corrupt", "error",
)


def classify_failure(exc: BaseException) -> str:
    """Map an exception to its error-taxonomy category.

        >>> classify_failure(MemoryError())
        'memory'
        >>> classify_failure(BudgetExhausted(1.5))
        'timeout'
        >>> classify_failure(ValueError("boom"))
        'error'
    """
    if isinstance(exc, BudgetExhausted):
        return "timeout"
    if isinstance(exc, MemoryError):
        return "memory"
    if isinstance(exc, (SimulatedWorkerCrash, BrokenProcessPool)):
        return "crash"
    if isinstance(exc, PayloadCorruption):
        return "corrupt"
    return "error"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic
    jitter.

    ``max_attempts`` counts every try of a job -- ladder rungs inside
    a worker and supervisor resubmissions alike -- so a wildcard fault
    cannot loop forever.  Jitter is hashed from ``(job key, attempt)``
    rather than drawn from a RNG: reruns of the same batch sleep the
    same schedule, keeping chaos tests reproducible.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0

    def backoff(self, key: str, failures: int) -> float:
        """Seconds to sleep after the ``failures``-th failure of the
        job identified by ``key`` (0 failures -> no sleep)."""
        if failures <= 0:
            return 0.0
        raw = min(
            self.backoff_base_s * self.backoff_factor ** (failures - 1),
            self.backoff_max_s,
        )
        digest = hashlib.sha1(f"{key}#{failures}".encode()).digest()
        fraction = int.from_bytes(digest[:4], "big") / 2 ** 32
        return raw * (0.5 + 0.5 * fraction)


@dataclass(frozen=True)
class Quarantined:
    """A job abandoned after exhausting its retry budget."""

    job: Any
    attempts: int
    category: str
    message: str


@dataclass
class SupervisedOutcome:
    """Everything a supervised batch produced."""

    results: List[Any] = field(default_factory=list)
    quarantined: List[Quarantined] = field(default_factory=list)
    respawns: int = 0
    retried_jobs: int = 0


# ----------------------------------------------------------------------
# Worker-side heartbeat.
# ----------------------------------------------------------------------

_HEARTBEATS = None  # Manager dict proxy, installed in workers.


def _install_worker(heartbeats, initializer, initargs) -> None:
    """Worker initializer shim: install the heartbeat channel, then run
    the caller's own initializer (which disarms stale itimers etc.)."""
    global _HEARTBEATS
    _HEARTBEATS = heartbeats
    beat()
    if initializer is not None:
        initializer(*initargs)


def beat() -> None:
    """Record a liveness timestamp for this worker (no-op outside a
    supervised pool, or if the heartbeat channel is gone).  Workers
    call this at job start and end; the supervisor treats a pool whose
    newest heartbeat is older than ``stall_timeout_s`` as hung."""
    if _HEARTBEATS is None:
        return
    try:
        _HEARTBEATS[os.getpid()] = time.monotonic()
    except Exception:
        pass


def _newest_heartbeat() -> Optional[float]:
    if _HEARTBEATS is None:
        return None
    try:
        values = list(_HEARTBEATS.values())
    except Exception:
        return None
    return max(values) if values else None


def _kill_workers(executor: ProcessPoolExecutor) -> None:
    """Forcibly terminate a hung pool's workers; their deaths surface
    as ``BrokenProcessPool`` on the pending futures."""
    processes = getattr(executor, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except Exception:
            pass


# ----------------------------------------------------------------------
# The supervisor loop.
# ----------------------------------------------------------------------

def run_supervised(
    shards: Sequence[Sequence[Any]],
    shard_fn: Callable[[Sequence[Any]], List[Any]],
    job_fn: Callable[[Any, int], Any],
    *,
    max_workers: int,
    policy: Optional[RetryPolicy] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
    stall_timeout_s: Optional[float] = None,
    job_key: Callable[[Any], str] = str,
    log: Optional[Callable[[str], None]] = None,
) -> SupervisedOutcome:
    """Run *shards* of jobs under supervision and return every result
    or quarantine record.

    ``shard_fn`` (wave 0) maps a whole shard to a list of results;
    ``job_fn(job, attempt)`` runs one job in isolation, where
    *attempt* is the 1-based number of this try (prior failed tries
    included).  Both execute in pool workers and so must be picklable
    module-level callables.  ``initializer``/``initargs`` run in every
    (re)spawned worker -- the batch runner uses them to disarm stale
    itimers and mark the process as a worker for chaos purposes.
    """
    policy = policy or RetryPolicy()
    outcome = SupervisedOutcome()
    say = log or (lambda _msg: None)

    heartbeats = None
    if stall_timeout_s is not None:
        import multiprocessing

        manager = multiprocessing.Manager()
        heartbeats = manager.dict()
    global _HEARTBEATS
    _HEARTBEATS = heartbeats  # supervisor side reads _newest_heartbeat()

    def spawn() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_install_worker,
            initargs=(heartbeats, initializer, initargs),
        )

    executor: Optional[ProcessPoolExecutor] = spawn()
    tick = 0.25 if stall_timeout_s is None else max(
        0.05, min(0.25, stall_timeout_s / 4.0))

    def drain(futures: dict) -> Tuple[List[Tuple[Any, Any]],
                                      List[Tuple[Any, str, str]], bool]:
        """Await every future in ``futures`` ({future: tag}); return
        (completed [(tag, result)], failed [(tag, category, message)],
        pool_broken).  Watches the heartbeat channel and kills a hung
        pool when ``stall_timeout_s`` is armed."""
        completed: List[Tuple[Any, Any]] = []
        failed: List[Tuple[Any, str, str]] = []
        pool_broken = False
        pending = set(futures)
        last_progress = time.monotonic()
        # This wait loop IS the deadline machinery: it watches the
        # heartbeat channel and enforces stall_timeout_s itself, so
        # check_deadline() would be redundant here.
        while pending:  # lint: allow(L001)
            done, not_done = wait(pending, timeout=tick,
                                  return_when=FIRST_COMPLETED)
            if done:
                last_progress = time.monotonic()
            for future in done:
                tag = futures[future]
                try:
                    completed.append((tag, future.result()))
                except BrokenProcessPool as exc:
                    pool_broken = True
                    failed.append((tag, "crash",
                                   str(exc) or "worker process died"))
                except Exception as exc:
                    failed.append((tag, classify_failure(exc),
                                   f"{type(exc).__name__}: {exc}"))
            pending = not_done
            if pool_broken:
                # The executor is unusable; every pending future is
                # doomed -- charge them all and let the caller respawn.
                for future in pending:
                    failed.append((futures[future], "crash",
                                   "worker process died (pool broken)"))
                pending = set()
            elif pending and not done and stall_timeout_s is not None:
                newest = _newest_heartbeat()
                alive_at = max(last_progress, newest or 0.0)
                if time.monotonic() - alive_at > stall_timeout_s:
                    say(f"supervisor: no progress or heartbeat for "
                        f">{stall_timeout_s}s, killing workers")
                    _kill_workers(executor)
                    pool_broken = True
        return completed, failed, pool_broken

    try:
        # Wave 0: every shard concurrently.
        futures = {
            executor.submit(shard_fn, list(shard)): list(shard)
            for shard in shards if shard
        }
        completed, failed, pool_broken = drain(futures)
        for _tag, result in completed:
            outcome.results.extend(result)

        # Retry queue: each job of a failed shard has one failed try.
        retry: List[Tuple[Any, int]] = []
        for shard_jobs, category, message in failed:
            for job in shard_jobs:
                if policy.max_attempts <= 1:
                    outcome.quarantined.append(Quarantined(
                        job=job, attempts=1, category=category,
                        message=message))
                else:
                    retry.append((job, 2))

        # Sequential isolation: exactly one future in flight, so a
        # crash attributes to the job that caused it and can never
        # charge an innocent wave-mate through a broken pool.
        while retry:
            job, attempt = retry.pop(0)
            if pool_broken:
                executor.shutdown(wait=False)
                executor = spawn()
                outcome.respawns += 1
                pool_broken = False
            time.sleep(policy.backoff(job_key(job), attempt - 1))
            say(f"supervisor: retrying {job_key(job)} "
                f"(attempt {attempt}/{policy.max_attempts})")
            outcome.retried_jobs += 1
            completed, failed, pool_broken = drain({
                executor.submit(job_fn, job, attempt): job,
            })
            for _tag, result in completed:
                outcome.results.append(result)
            for _tag, category, message in failed:
                if attempt >= policy.max_attempts:
                    outcome.quarantined.append(Quarantined(
                        job=job, attempts=attempt, category=category,
                        message=message))
                    say(f"supervisor: quarantined {job_key(job)} "
                        f"after {attempt} attempts ({category})")
                else:
                    retry.append((job, attempt + 1))
    finally:
        if executor is not None:
            executor.shutdown(wait=True)
        _HEARTBEATS = None
        if heartbeats is not None:
            manager.shutdown()

    return outcome
