"""Deterministic fault injection for the resilient execution layer.

Crash recovery, deadlines, and the degradation ladder are only
trustworthy if their recovery paths are *provable* -- so every fault
this module injects is deterministic and replayable: a
:class:`ChaosSchedule` is a tuple of :class:`Fault` entries, each
matched by (scenario name or nth-job-in-process, try number).  The
same schedule on the same job matrix plants the same faults on every
machine, which is what lets ``tests/test_resilience.py`` assert exact
recovery outcomes (and the CI chaos job assert zero aborted batches).

Fault kinds and what they exercise:

``crash``
    Worker death.  Inside a pool worker the process ``os._exit``\\ s,
    producing the real ``BrokenProcessPool`` the supervisor must
    recover from; in the driver process (serial runs, unit tests) a
    :class:`SimulatedWorkerCrash` is raised instead so the test
    process survives while the same retry/quarantine path runs.
``hang``
    A stuck decision: a loop that spins for ``seconds`` calling
    :func:`repro.budget.check_deadline` -- the shape of a hot
    instrumented loop that has stopped making progress.  The
    cooperative deadline tier must interrupt it; without a deadline it
    eventually completes (so planted hangs also measure watchdogs).
``memory``
    ``MemoryError`` mid-decision (the EXPTIME blow-up case), which the
    degradation ladder must absorb by retrying a cheaper rung.
``corrupt``
    A payload that fails to build (:class:`PayloadCorruption`),
    exercising the error taxonomy's ``corrupt`` category and the
    retry-on-next-rung path.

Schedules travel as compact spec strings (the ``REPRO_CHAOS``
environment variable and the runner's ``--chaos`` flag)::

    crash:scenario=eval_sg_tree_d5,attempt=1;hang:nth=3,seconds=30

``attempt=*`` makes a fault fire on *every* try -- the way to force a
job through all retries into quarantine.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..budget import check_deadline

__all__ = [
    "CHAOS_ENV",
    "ChaosSchedule",
    "Fault",
    "PayloadCorruption",
    "SimulatedWorkerCrash",
    "in_worker",
    "inject",
    "jobs_executed",
    "mark_worker",
    "next_job_index",
    "parse_schedule",
]

#: Environment variable holding a schedule spec (workers inherit it
#: across pool respawns; an explicit schedule argument wins over it).
CHAOS_ENV = "REPRO_CHAOS"

_FAULT_KINDS = ("crash", "hang", "memory", "corrupt")

#: Exit status of a chaos-crashed worker (distinctive in core dumps /
#: supervisor logs; any abnormal exit breaks the pool identically).
CRASH_EXIT_CODE = 23


class SimulatedWorkerCrash(Exception):
    """Stand-in for worker death where ``os._exit`` would kill the
    test or driver process itself (serial execution paths).  Classified
    as ``crash`` by the error taxonomy."""


class PayloadCorruption(Exception):
    """An injected payload-construction failure (the ``corrupt``
    fault kind)."""


@dataclass(frozen=True)
class Fault:
    """One planted fault.

    ``scenario`` targets jobs by scenario name (``"*"`` matches any);
    ``nth`` targets the nth job executed in the current process
    (0-based, matched against the worker's job counter) -- set one or
    both.  ``attempt`` is the 1-based try number the fault fires on,
    or ``None`` (spec ``attempt=*``) for every try.  ``seconds`` is
    the hang duration.
    """

    kind: str
    scenario: str = "*"
    nth: Optional[int] = None
    attempt: Optional[int] = 1
    seconds: float = 30.0

    def __post_init__(self):
        if self.kind not in _FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {_FAULT_KINDS}")

    def matches(self, scenario: str, nth: int, attempt: int) -> bool:
        if self.scenario != "*" and self.scenario != scenario:
            return False
        if self.nth is not None and self.nth != nth:
            return False
        if self.attempt is not None and self.attempt != attempt:
            return False
        return True

    def spec(self) -> str:
        parts = []
        if self.scenario != "*":
            parts.append(f"scenario={self.scenario}")
        if self.nth is not None:
            parts.append(f"nth={self.nth}")
        parts.append("attempt=*" if self.attempt is None
                      else f"attempt={self.attempt}")
        if self.kind == "hang":
            parts.append(f"seconds={self.seconds:g}")
        return f"{self.kind}:{','.join(parts)}"


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered tuple of faults; the first match wins."""

    faults: Tuple[Fault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    def match(self, scenario: str, nth: int,
              attempt: int) -> Optional[Fault]:
        for fault in self.faults:
            if fault.matches(scenario, nth, attempt):
                return fault
        return None

    def spec(self) -> str:
        """The compact string form (round-trips through
        :func:`parse_schedule`)."""
        return ";".join(fault.spec() for fault in self.faults)


def parse_schedule(spec: str) -> ChaosSchedule:
    """Parse a spec string (see the module docstring) into a schedule.

        >>> schedule = parse_schedule("memory:scenario=eval_sg_tree_d5;"
        ...                           "hang:nth=2,seconds=5")
        >>> [fault.kind for fault in schedule.faults]
        ['memory', 'hang']
        >>> parse_schedule(schedule.spec()) == schedule
        True
    """
    faults = []
    for chunk in filter(None, (part.strip() for part in spec.split(";"))):
        kind, _, arg_text = chunk.partition(":")
        kwargs = {}
        for pair in filter(None, (p.strip() for p in arg_text.split(","))):
            key, _, value = pair.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "scenario":
                kwargs["scenario"] = value
            elif key == "nth":
                kwargs["nth"] = int(value)
            elif key == "attempt":
                kwargs["attempt"] = None if value == "*" else int(value)
            elif key == "seconds":
                kwargs["seconds"] = float(value)
            else:
                raise ValueError(f"unknown fault selector {key!r} in "
                                 f"{chunk!r}")
        faults.append(Fault(kind=kind.strip(), **kwargs))
    return ChaosSchedule(tuple(faults))


def from_env() -> ChaosSchedule:
    """The schedule planted in ``REPRO_CHAOS`` (empty when unset)."""
    spec = os.environ.get(CHAOS_ENV, "")
    return parse_schedule(spec) if spec else ChaosSchedule()


# ----------------------------------------------------------------------
# Worker-side state: process role and the per-process job counter.
# ----------------------------------------------------------------------

_IN_WORKER = False
_JOB_COUNTER = 0


def mark_worker() -> None:
    """Record that this process is a pool worker (called by the
    supervisor's worker initializer): ``crash`` faults really exit."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    return _IN_WORKER


def next_job_index() -> int:
    """The 0-based index of the job about to execute in this process
    (the ``nth`` selector's counter); increments on each call."""
    global _JOB_COUNTER
    index = _JOB_COUNTER
    _JOB_COUNTER += 1
    return index


def jobs_executed() -> int:
    return _JOB_COUNTER


def inject(scenario: str, nth: int, attempt: int, *,
           schedule: Optional[ChaosSchedule] = None) -> None:
    """Fire the first matching fault for this job execution, if any.

    Callers place this at the top of a job's execution (inside the
    job's deadline scope, so ``hang`` faults are interruptible).  May
    not return: ``crash`` in a real worker exits the process.
    """
    schedule = from_env() if schedule is None else schedule
    fault = schedule.match(scenario, nth, attempt)
    if fault is None:
        return
    if fault.kind == "crash":
        if _IN_WORKER:
            os._exit(CRASH_EXIT_CODE)
        raise SimulatedWorkerCrash(
            f"chaos: worker crash planted on {scenario!r} "
            f"(attempt {attempt})")
    if fault.kind == "memory":
        raise MemoryError(
            f"chaos: MemoryError planted on {scenario!r} "
            f"(attempt {attempt})")
    if fault.kind == "corrupt":
        raise PayloadCorruption(
            f"chaos: corrupted payload planted on {scenario!r} "
            f"(attempt {attempt})")
    # hang: a stuck-but-instrumented loop; the cooperative deadline
    # tier must interrupt it (BudgetExhausted), else it completes.
    end = time.monotonic() + fault.seconds
    while time.monotonic() < end:
        check_deadline()
        time.sleep(0.002)
