"""The Section 6 lower-bound encoding: doubly-exponential-space Turing
machines -> containment of linear programs in *nonrecursive* programs.

Configurations now have 2^(2^n) cells, each addressed by a 2^n-bit
counter; a cell is a chain of 2^n *address points* followed by one
*symbol point*.  The recursive program Pi uses a single ternary IDB
``bit`` (one unfolding per point); the nonrecursive program Pi' packs
the error checks into succinct distance/equality subprograms:

* ``dexact_i`` -- paths of length exactly 2^i (Example 6.1's dist);
* ``dle_i`` / ``dlt_i`` -- paths of length at most 2^i / 2^i - 1
  (Example 6.2, with the paper's empty-body rules);
* ``equal_i`` -- pairs of equally-labeled paths of length 2^i
  (Example 6.3), used to align corresponding cells of successive
  configurations;
* ``allones_i`` / ``allzeros_i`` -- constant-labeled exact paths, our
  completion of the paper's sketch for the "configuration must change
  at address 1...1" and end-of-tape checks.

``Pi contained-in Pi'`` iff the machine does not accept the empty tape
in space 2^(2^n).  As with Section 5.3 the generator exists to be
*measured* and semantically validated (Pi' is a plain nonrecursive
program, so it can be evaluated directly on encoded traces), not to be
pushed through the triply-exponential decision procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Variable
from .turing import CellSymbol, TuringMachine, is_composite, local_relations, symbol_name

Z, U, V = Variable("Z"), Variable("U"), Variable("V")
Z2, U2 = Variable("Z2"), Variable("U2")


def _q(symbol) -> str:
    return f"q_{symbol_name(symbol)}"


@dataclass
class NonrecEncoding:
    """The generated (Pi, Pi') pair and bookkeeping."""

    program: Program
    nonrecursive: Program
    machine: TuringMachine
    n: int
    rule_families: Dict[str, int] = field(default_factory=dict)

    def sizes(self) -> Dict[str, int]:
        return {
            "n": self.n,
            "program_rules": len(self.program),
            "program_size": self.program.size(),
            "nonrecursive_rules": len(self.nonrecursive),
            "nonrecursive_size": self.nonrecursive.size(),
        }


def _recursive_program(machine: TuringMachine) -> Tuple[List[Rule], Dict[str, int]]:
    rules: List[Rule] = []
    families: Dict[str, int] = {}

    def add(family: str, rule: Rule) -> None:
        rules.append(rule)
        families[family] = families.get(family, 0) + 1

    bit = lambda z, u, v: Atom("bit", (z, u, v))  # noqa: E731

    # Address rules: four bit-value combinations.
    for value_pred in ("zero", "one"):
        for carry_pred in ("carry0", "carry1"):
            add(
                "address",
                Rule(
                    bit(Z, U, V),
                    (
                        bit(Z2, U, V),
                        Atom("a", (Z, U, V)),
                        Atom("address", (Z,)),
                        Atom("e", (Z, Z2)),
                        Atom(value_pred, (Z,)),
                        Atom(carry_pred, (Z,)),
                    ),
                ),
            )

    # Symbol rules: same configuration continues.
    for symbol in machine.cell_symbols():
        add(
            "symbol",
            Rule(
                bit(Z, U, V),
                (
                    bit(Z2, U, V),
                    Atom("a", (Z, U, V)),
                    Atom("e", (Z, Z2)),
                    Atom("symbol", (Z,)),
                    Atom(_q(symbol), (Z,)),
                ),
            ),
        )
        # Transition rules: u migrates one position.
        add(
            "transition",
            Rule(
                bit(Z, U, V),
                (
                    bit(Z2, U2, U),
                    Atom("a", (Z, U, V)),
                    Atom("e", (Z, Z2)),
                    Atom("symbol", (Z,)),
                    Atom(_q(symbol), (Z,)),
                ),
            ),
        )

    # End rules at accepting composites.
    for symbol in machine.accepting_cell_symbols():
        add(
            "end",
            Rule(
                bit(Z, U, V),
                (Atom("a", (Z, U, V)), Atom("symbol", (Z,)), Atom(_q(symbol), (Z,))),
            ),
        )

    # Start rule: the first point is address bit 0 with carry 1.
    add(
        "start",
        Rule(
            Atom("c", ()),
            (
                Atom("start", (Z,)),
                bit(Z, U, V),
                Atom("a", (Z, U, V)),
                Atom("address", (Z,)),
                Atom("zero", (Z,)),
                Atom("carry1", (Z,)),
            ),
        ),
    )
    return rules, families


def _distance_subprograms(n: int) -> List[Rule]:
    """dexact/dle/dlt/equal/allones/allzeros up to level n."""
    src: List[str] = [
        "dexact0(X, Y) :- e(X, Y).",
        "dle0(X, Y) :- e(X, Y).",
        "dle0(X, X) :- .",
        "dlt0(X, X) :- .",
        "equal0(X, Y, U, V) :- e(X, Y), e(U, V), zero(X), zero(U).",
        "equal0(X, Y, U, V) :- e(X, Y), e(U, V), one(X), one(U).",
        "allones0(X, Y) :- e(X, Y), one(X), address(X).",
        "allzeros0(X, Y) :- e(X, Y), zero(X), address(X).",
    ]
    for i in range(1, n + 1):
        src.append(f"dexact{i}(X, Y) :- dexact{i-1}(X, Z), dexact{i-1}(Z, Y).")
        src.append(f"dle{i}(X, Y) :- dle{i-1}(X, Z), dle{i-1}(Z, Y).")
        src.append(f"dlt{i}(X, Y) :- dlt{i-1}(X, Z), dle{i-1}(Z, Y).")
        src.append(
            f"equal{i}(X, Y, U, V) :- equal{i-1}(X, X1, U, U1), equal{i-1}(X1, Y, U1, V)."
        )
        src.append(f"allones{i}(X, Y) :- allones{i-1}(X, Z), allones{i-1}(Z, Y).")
        src.append(f"allzeros{i}(X, Y) :- allzeros{i-1}(X, Z), allzeros{i-1}(Z, Y).")
    from ..datalog.parser import parse_program

    return list(parse_program("\n".join(src)).rules)


def encode_nonrecursive(machine: TuringMachine, n: int,
                        include_transition_errors: bool = True) -> NonrecEncoding:
    """Build (Pi, Pi') for Section 6 with 2^n-bit cell addresses."""
    if n < 1:
        raise ValueError("n must be at least 1")
    rules, families = _recursive_program(machine)
    program = Program(rules)

    checks: List[Rule] = list(_distance_subprograms(n))
    check_families: Dict[str, int] = {}

    def add(family: str, source: str) -> None:
        from ..datalog.parser import parse_rule

        checks.append(parse_rule(source))
        check_families[family] = check_families.get(family, 0) + 1

    D = n  # distance level for 2^n

    # Format filters: blocks of 2^n address points, then a symbol point.
    add("format", f"c() :- start(Z), dlt{D}(Z, Z1), symbol(Z1).")
    add("format", f"c() :- start(Z), dexact{D}(Z, Z1), address(Z1).")
    add("format", f"c() :- symbol(Z), e(Z, Z1), dlt{D}(Z1, Z2), symbol(Z2).")
    add("format", f"c() :- symbol(Z), dexact{D}(Z, Z1), e(Z1, Z2), address(Z2).")

    # Counter errors.
    add("counter", f"c() :- start(Z), dlt{D}(Z, Z1), one(Z1).")
    add("counter", "c() :- start(Z), carry0(Z).")
    add("counter", "c() :- symbol(Z), e(Z, Z1), address(Z1), carry0(Z1).")
    # gamma_i = 0 forces gamma_{i+1} = 0 within one address block.
    add("counter", "c() :- address(Z), carry0(Z), e(Z, Z1), address(Z1), carry1(Z1).")
    # alpha_i = 1 and gamma_i(next) = 1 force gamma_{i+1}(next) = 1.
    add(
        "counter",
        f"c() :- address(Z), one(Z), dexact{D}(Z, Z1), e(Z1, Z2), carry1(Z2), "
        "e(Z2, Z3), address(Z3), carry0(Z3).",
    )
    # alpha_i = 0 forces gamma_{i+1}(next) = 0.
    add(
        "counter",
        f"c() :- address(Z), zero(Z), dexact{D}(Z, Z1), e(Z1, Z2), "
        "e(Z2, Z3), address(Z3), carry1(Z3).",
    )
    # Sum errors: beta_i = alpha_i xor gamma_i.
    for alpha, gamma, beta in (
        ("zero", "carry0", "one"),
        ("one", "carry1", "one"),
        ("one", "carry0", "zero"),
        ("zero", "carry1", "zero"),
    ):
        add(
            "sum",
            f"c() :- address(Z), {alpha}(Z), dexact{D}(Z, Z1), e(Z1, Z2), "
            f"address(Z2), {gamma}(Z2), {beta}(Z2).",
        )

    # Configuration boundary errors.
    add(
        "config",
        f"c() :- address(Z), a(Z, U, V), zero(Z), dexact{D}(Z, Z1), symbol(Z1), "
        "e(Z1, Z2), a(Z2, U2, U).",
    )
    add(
        "config",
        f"c() :- allones{D}(Z, Z1), symbol(Z1), a(Z1, U, V), e(Z1, Z2), a(Z2, U, V).",
    )

    # Initial-configuration errors.
    initial_symbol = (machine.initial_state, machine.blank)
    for symbol in machine.cell_symbols():
        if symbol != initial_symbol:
            add(
                "initial",
                f"c() :- start(Z), dexact{D}(Z, Z1), symbol(Z1), {_q(symbol)}(Z1).",
            )
        if symbol != machine.blank:
            add(
                "initial",
                f"c() :- start(Z0), a(Z0, U, V), one(Z), address(Z), a(Z, U, V), "
                f"dle{D}(Z, Z1), symbol(Z1), {_q(symbol)}(Z1).",
            )

    # Transition errors via address equality (equal_n).
    if include_transition_errors:
        from .turing import composite_count

        r_m, r_left, r_right = local_relations(machine)
        symbols = machine.cell_symbols()
        for a in symbols:
            for b in symbols:
                for c_sym in symbols:
                    if composite_count(a, b, c_sym) > 1:
                        # Multi-head windows cannot occur; see turing.py.
                        continue
                    for d in symbols:
                        if (a, b, c_sym, d) in r_m:
                            continue
                        add(
                            "transition",
                            "c() :- "
                            f"symbol(Z1), {_q(a)}(Z1), a(Z1, U, V), e(Z1, T1), "
                            f"dexact{D}(T1, Z2), symbol(Z2), {_q(b)}(Z2), a(Z2, U, V), "
                            f"e(Z2, T15), dexact{D}(T15, Z3), symbol(Z3), {_q(c_sym)}(Z3), "
                            "a(Z3, U, V), "
                            f"a(T2, U3, U), dexact{D}(T2, Z4), symbol(Z4), {_q(d)}(Z4), "
                            f"a(Z4, U3, U), equal{D}(T1, Z2, T2, Z4).",
                        )
        for a in symbols:
            for b in symbols:
                if composite_count(a, b) > 1:
                    continue
                for d in symbols:
                    if (a, b, d) not in r_left:
                        add(
                            "transition_left",
                            "c() :- "
                            f"allzeros{D}(T1, Z1), symbol(Z1), {_q(a)}(Z1), a(Z1, U, V), "
                            f"e(Z1, T15), dexact{D}(T15, Z2), symbol(Z2), {_q(b)}(Z2), "
                            "a(Z2, U, V), "
                            f"allzeros{D}(T2, Z4), symbol(Z4), {_q(d)}(Z4), a(Z4, U3, U).",
                        )
                    if (a, b, d) not in r_right:
                        add(
                            "transition_right",
                            "c() :- "
                            f"symbol(Z1), {_q(a)}(Z1), a(Z1, U, V), e(Z1, T1), "
                            f"allones{D}(T1, Z2), symbol(Z2), {_q(b)}(Z2), a(Z2, U, V), "
                            f"allones{D}(T2, Z4), symbol(Z4), {_q(d)}(Z4), a(Z4, U3, U).",
                        )

    nonrecursive = Program(checks)
    families.update({f"check_{k}": v for k, v in check_families.items()})
    return NonrecEncoding(program, nonrecursive, machine, n, families)


# ----------------------------------------------------------------------
# Trace databases: encode a configuration sequence as a database, so
# that Pi and Pi' can be *evaluated* against it (semantic validation).
# ----------------------------------------------------------------------

def trace_database(machine: TuringMachine,
                   configurations: List[Tuple[CellSymbol, ...]],
                   n: int, corrupt_counter_at: int = -1) -> Database:
    """Encode a configuration sequence as a chain database.

    Every cell becomes 2^n address points (labelled zero/one, with
    carry bits of the running increment) followed by a symbol point;
    configuration identity is carried by the ``a(point, u, v)`` facts.
    Setting ``corrupt_counter_at`` to a point index flips that address
    bit, planting exactly one counter error (used to validate that Pi'
    fires on flawed traces and stays silent on legal ones).
    """
    bits = 2 ** n
    expected_cells = 2 ** bits
    for config in configurations:
        if len(config) != expected_cells:
            raise ValueError(
                f"the n={n} encoding addresses configurations of exactly "
                f"{expected_cells} cells; got {len(config)} (run the machine "
                f"with space={expected_cells})"
            )
    db = Database()
    point = 0

    def point_name(index: int) -> str:
        return f"p{index}"

    first = True
    for config_index, config in enumerate(configurations):
        # The paper's convention: a point of configuration k carries
        # (u, v) where v is the *previous* configuration's u -- the
        # transition rules pass the parent's u into the child's v slot.
        u = f"cfg{config_index}"
        v = f"cfg{config_index - 1}"
        for cell_index, cell in enumerate(config):
            address = cell_index
            carry_bits = _increment_carries(cell_index, bits)
            for bit_index in range(bits):
                name = point_name(point)
                value = (address >> bit_index) & 1
                if point == corrupt_counter_at:
                    value = 1 - value
                if first:
                    db.add("start", (name,))
                    first = False
                db.add("address", (name,))
                db.add("one" if value else "zero", (name,))
                db.add("carry1" if carry_bits[bit_index] else "carry0", (name,))
                db.add("a", (name, u, v))
                db.add("e", (name, point_name(point + 1)))
                point += 1
            name = point_name(point)
            db.add("symbol", (name,))
            db.add(_q(cell), (name,))
            db.add("a", (name, u, v))
            db.add("e", (name, point_name(point + 1)))
            point += 1
    return db


def _increment_carries(address: int, bits: int) -> List[int]:
    """Carry bits produced when the *previous* address was incremented
    to reach *address* (the convention stored on address points)."""
    previous = (address - 1) % (2 ** bits)
    carries = []
    carry = 1
    for i in range(bits):
        bit = (previous >> i) & 1
        carries.append(carry)
        carry = 1 if (bit and carry) else 0
    return carries
