"""Executable lower-bound constructions (Sections 5.3 and 6)."""

from .encoding_nonrec import NonrecEncoding, encode_nonrecursive, trace_database
from .encoding_space import (
    AlternatingEncoding,
    DecodedStep,
    SpaceEncoding,
    decode_expansion,
    encode_alternating,
    encode_deterministic,
    standard_carries,
    synthesize_trace_query,
    trace_addresses,
)
from .turing import (
    AlternatingTuringMachine,
    TuringMachine,
    local_relations,
    simple_accepting_machine,
    simple_rejecting_machine,
    sweeping_machine,
    symbol_name,
    tiny_accepting_machine,
    tiny_rejecting_machine,
)

__all__ = [
    "AlternatingEncoding",
    "AlternatingTuringMachine",
    "DecodedStep",
    "NonrecEncoding",
    "SpaceEncoding",
    "TuringMachine",
    "decode_expansion",
    "encode_alternating",
    "encode_deterministic",
    "encode_nonrecursive",
    "local_relations",
    "simple_accepting_machine",
    "simple_rejecting_machine",
    "standard_carries",
    "sweeping_machine",
    "symbol_name",
    "synthesize_trace_query",
    "tiny_accepting_machine",
    "tiny_rejecting_machine",
    "trace_addresses",
    "trace_database",
]
