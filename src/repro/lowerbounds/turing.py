"""Turing machines and their local transition relations (Section 5.3).

The lower-bound encodings need, for a machine M:

* configurations as strings over ``symbols(M)`` = tape symbols plus
  *composite* symbols ``(state, symbol)`` marking the head;
* the 4-ary relation ``R_M`` on symbols such that b is a successor
  configuration of a iff ``(a[i-1], a[i], a[i+1], b[i]) in R_M`` for
  all interior i, plus the 3-ary end relations ``Rl_M`` and ``Rr_M``;
* a direct simulator used to cross-check the encodings on tiny
  machines.

Deterministic machines drive the EXPSPACE encoding; the
:class:`AlternatingTuringMachine` (existential/universal states with a
left and a right successor transition, as the paper normalizes) drives
the 2EXPTIME variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..datalog.errors import ValidationError

Symbol = str
Composite = Tuple[str, str]  # (state, tape symbol)
CellSymbol = Union[Symbol, Composite]

LEFT, STAY, RIGHT = -1, 0, 1


def is_composite(symbol: CellSymbol) -> bool:
    """True for a head-marking composite symbol."""
    return isinstance(symbol, tuple)


def symbol_name(symbol: CellSymbol) -> str:
    """A predicate-friendly name for a cell symbol."""
    if is_composite(symbol):
        return f"{symbol[0]}_{symbol[1]}"
    return str(symbol)


@dataclass(frozen=True)
class TuringMachine:
    """A deterministic single-tape Turing machine.

    ``transitions`` maps ``(state, symbol)`` to
    ``(state', symbol', move)`` with move in {-1, 0, +1}.  The head
    never moves off the left end; the tape is bounded by the space
    limit supplied to the simulator (the paper's machines are
    space-bounded by construction).
    """

    states: FrozenSet[str]
    tape_symbols: FrozenSet[str]
    blank: str
    initial_state: str
    accepting_states: FrozenSet[str]
    transitions: Dict[Tuple[str, str], Tuple[str, str, int]]

    def __post_init__(self):
        if self.blank not in self.tape_symbols:
            raise ValidationError("blank symbol must be a tape symbol")
        if self.initial_state not in self.states:
            raise ValidationError("initial state missing from state set")

    def cell_symbols(self) -> List[CellSymbol]:
        """All cell symbols: tape symbols plus composites."""
        symbols: List[CellSymbol] = sorted(self.tape_symbols)
        symbols.extend(
            (state, tape) for state in sorted(self.states) for tape in sorted(self.tape_symbols)
        )
        return symbols

    def accepting_cell_symbols(self) -> List[Composite]:
        """Composites whose state is accepting."""
        return [
            (state, tape)
            for state in sorted(self.accepting_states)
            for tape in sorted(self.tape_symbols)
        ]

    def initial_configuration(self, space: int) -> Tuple[CellSymbol, ...]:
        """``(s0, blank) blank^(space-1)``: the empty-tape start."""
        return ((self.initial_state, self.blank),) + (self.blank,) * (space - 1)

    def step_configuration(self, config: Tuple[CellSymbol, ...]) -> Optional[Tuple[CellSymbol, ...]]:
        """The successor configuration, or None when the machine halts
        (no applicable transition, or the head would leave the tape)."""
        cells = list(config)
        head = next((i for i, c in enumerate(cells) if is_composite(c)), None)
        if head is None:
            return None
        state, symbol = cells[head]
        action = self.transitions.get((state, symbol))
        if action is None:
            return None
        new_state, written, move = action
        cells[head] = written
        target = head + move
        if target < 0 or target >= len(cells):
            return None
        cells[target] = (new_state, cells[target])
        return tuple(cells)

    def accepts_in_space(self, space: int, max_steps: int = 10_000) -> bool:
        """Simulate on the empty tape within *space* cells."""
        config = self.initial_configuration(space)
        for _ in range(max_steps):
            head = next((c for c in config if is_composite(c)), None)
            if head is not None and head[0] in self.accepting_states:
                return True
            successor = self.step_configuration(config)
            if successor is None:
                return False
            config = successor
        return False

    def run_configurations(self, space: int, max_steps: int = 10_000) -> List[Tuple[CellSymbol, ...]]:
        """The configuration sequence until halt/accept (inclusive)."""
        config = self.initial_configuration(space)
        history = [config]
        for _ in range(max_steps):
            head = next((c for c in config if is_composite(c)), None)
            if head is not None and head[0] in self.accepting_states:
                break
            successor = self.step_configuration(config)
            if successor is None:
                break
            config = successor
            history.append(config)
        return history


def _written_cell(machine: TuringMachine, state: str, symbol: str) -> Optional[CellSymbol]:
    action = machine.transitions.get((state, symbol))
    if action is None:
        return None
    new_state, written, move = action
    if move == STAY:
        return (new_state, written)
    return written


def local_relations(machine: TuringMachine):
    """The relations ``(R_M, Rl_M, Rr_M)`` characterizing legal
    successor configurations by purely local constraints.

    ``(x, y, z, b) in R_M`` iff whenever three consecutive cells read
    x y z, the middle cell may read b in the successor configuration.
    Tuples with more than one composite among x, y, z never occur in a
    configuration and are excluded (so they are flagged as errors).
    """
    symbols = machine.cell_symbols()
    r_m: Set[Tuple[CellSymbol, CellSymbol, CellSymbol, CellSymbol]] = set()
    r_left: Set[Tuple[CellSymbol, CellSymbol, CellSymbol]] = set()
    r_right: Set[Tuple[CellSymbol, CellSymbol, CellSymbol]] = set()

    def middle_successors(x: CellSymbol, y: CellSymbol, z: CellSymbol) -> List[CellSymbol]:
        composites = sum(1 for c in (x, y, z) if is_composite(c))
        if composites > 1:
            return []
        if is_composite(y):
            state, symbol = y
            action = machine.transitions.get((state, symbol))
            if action is None:
                # Halting configuration: it has no successor, so no
                # tuple is legal (any claimed successor is an error).
                return []
            written = _written_cell(machine, state, symbol)
            return [written] if written is not None else []
        if is_composite(x):
            state, symbol = x
            action = machine.transitions.get((state, symbol))
            if action is not None and action[2] == RIGHT and not is_composite(y):
                return [(action[0], y)]
            return [y]
        if is_composite(z):
            state, symbol = z
            action = machine.transitions.get((state, symbol))
            if action is not None and action[2] == LEFT and not is_composite(y):
                return [(action[0], y)]
            return [y]
        return [y]

    for x, y, z in product(symbols, repeat=3):
        for b in middle_successors(x, y, z):
            r_m.add((x, y, z, b))

    for x, y in product(symbols, repeat=2):
        # Left end: cell 1 with right neighbour y.
        composites = sum(1 for c in (x, y) if is_composite(c))
        if composites <= 1:
            if is_composite(x):
                state, symbol = x
                action = machine.transitions.get((state, symbol))
                if action is not None:
                    written = _written_cell(machine, state, symbol)
                    if written is not None and action[2] != LEFT:
                        r_left.add((x, y, written))
            elif is_composite(y):
                state, symbol = y
                action = machine.transitions.get((state, symbol))
                if action is not None and action[2] == LEFT:
                    r_left.add((x, y, (action[0], x)))
                elif action is not None:
                    r_left.add((x, y, x))
            else:
                r_left.add((x, y, x))
        # Right end: cell m with left neighbour x (reuse roles: the
        # pair is (a_{m-1}, a_m)).
        if composites <= 1:
            if is_composite(y):
                state, symbol = y
                action = machine.transitions.get((state, symbol))
                if action is not None:
                    written = _written_cell(machine, state, symbol)
                    if written is not None and action[2] != RIGHT:
                        r_right.add((x, y, written))
            elif is_composite(x):
                state, symbol = x
                action = machine.transitions.get((state, symbol))
                if action is not None and action[2] == RIGHT:
                    r_right.add((x, y, (action[0], y)))
                elif action is not None:
                    r_right.add((x, y, y))
            else:
                r_right.add((x, y, y))
    return r_m, frozenset(r_left), frozenset(r_right)


def composite_count(*symbols: CellSymbol) -> int:
    """How many of *symbols* are head-marking composites.

    Windows with two or more composites never occur in a legal
    computation (configurations have a single head, and the
    initial-configuration checks plus induction preserve that), so the
    encodings skip error rules for them -- this is what keeps the
    reductions polynomial in practice.
    """
    return sum(1 for s in symbols if is_composite(s))


@dataclass(frozen=True)
class AlternatingTuringMachine:
    """An alternating machine normalized as in Section 5.3: states are
    existential or universal (strictly alternating is not enforced),
    and every configuration has a *left* and a *right* successor, given
    by two deterministic transition tables."""

    states: FrozenSet[str]
    tape_symbols: FrozenSet[str]
    blank: str
    initial_state: str
    accepting_states: FrozenSet[str]
    universal_states: FrozenSet[str]
    left_transitions: Dict[Tuple[str, str], Tuple[str, str, int]]
    right_transitions: Dict[Tuple[str, str], Tuple[str, str, int]]

    def is_universal(self, state: str) -> bool:
        return state in self.universal_states

    def _branch(self, which: str) -> TuringMachine:
        transitions = self.left_transitions if which == "left" else self.right_transitions
        return TuringMachine(
            states=self.states,
            tape_symbols=self.tape_symbols,
            blank=self.blank,
            initial_state=self.initial_state,
            accepting_states=self.accepting_states,
            transitions=transitions,
        )

    def accepts_in_space(self, space: int, max_depth: int = 64) -> bool:
        """Evaluate the computation tree (memoized) on the empty tape."""
        left = self._branch("left")
        right = self._branch("right")
        memo: Dict[Tuple[Tuple[CellSymbol, ...], int], bool] = {}

        def run(config: Tuple[CellSymbol, ...], depth: int) -> bool:
            key = (config, depth)
            if key in memo:
                return memo[key]
            memo[key] = False  # cycle-safe default
            head = next((c for c in config if is_composite(c)), None)
            if head is None or depth <= 0:
                return False
            state = head[0]
            if state in self.accepting_states:
                memo[key] = True
                return True
            successors = [
                branch.step_configuration(config) for branch in (left, right)
            ]
            successors = [s for s in successors if s is not None]
            if not successors:
                memo[key] = False
            elif self.is_universal(state):
                memo[key] = all(run(s, depth - 1) for s in successors)
            else:
                memo[key] = any(run(s, depth - 1) for s in successors)
            return memo[key]

        return run(self._branch("left").initial_configuration(space), max_depth)


def tiny_accepting_machine() -> TuringMachine:
    """The smallest accepting machine (two states, one tape symbol:
    step straight into qa).  Its cell alphabet has 3 symbols, so it
    yields the smallest Section 5.3 / Section 6 encodings -- the
    ``tag:stress`` tier uses it to pin the *minimum* instance size at
    which the containment decisions are already infeasible."""
    return TuringMachine(
        states=frozenset({"q0", "qa"}),
        tape_symbols=frozenset({"b"}),
        blank="b",
        initial_state="q0",
        accepting_states=frozenset({"qa"}),
        transitions={("q0", "b"): ("qa", "b", STAY)},
    )


def tiny_rejecting_machine() -> TuringMachine:
    """The smallest non-accepting machine (one state, one tape symbol,
    looping in place forever -- no accepting state at all)."""
    return TuringMachine(
        states=frozenset({"q0"}),
        tape_symbols=frozenset({"b"}),
        blank="b",
        initial_state="q0",
        accepting_states=frozenset(),
        transitions={("q0", "b"): ("q0", "b", STAY)},
    )


def simple_accepting_machine() -> TuringMachine:
    """A machine that immediately accepts (writes and enters qa)."""
    return TuringMachine(
        states=frozenset({"q0", "qa"}),
        tape_symbols=frozenset({"0", "1", "b"}),
        blank="b",
        initial_state="q0",
        accepting_states=frozenset({"qa"}),
        transitions={("q0", "b"): ("qa", "1", STAY)},
    )


def simple_rejecting_machine() -> TuringMachine:
    """A machine that loops in place and never accepts."""
    return TuringMachine(
        states=frozenset({"q0", "q1", "qa"}),
        tape_symbols=frozenset({"0", "1", "b"}),
        blank="b",
        initial_state="q0",
        accepting_states=frozenset({"qa"}),
        transitions={
            ("q0", "b"): ("q1", "0", STAY),
            ("q1", "0"): ("q0", "b", STAY),
        },
    )


def sweeping_machine() -> TuringMachine:
    """Writes a 1, steps right, writes another 1, steps back left and
    accepts -- exercises both head directions in the local relations.
    Accepts in any space of at least two cells."""
    return TuringMachine(
        states=frozenset({"q0", "q1", "q2", "qa"}),
        tape_symbols=frozenset({"1", "b"}),
        blank="b",
        initial_state="q0",
        accepting_states=frozenset({"qa"}),
        transitions={
            ("q0", "b"): ("q1", "1", RIGHT),
            ("q1", "b"): ("q2", "1", LEFT),
            ("q2", "1"): ("qa", "1", STAY),
        },
    )
