"""The Section 5.3 lower-bound encoding: exponential-space Turing
machines -> containment of linear programs in unions of conjunctive
queries.

Given a machine M and a parameter n, :func:`encode_deterministic`
builds a linear Datalog program Pi and a union Theta of Boolean
conjunctive queries such that the unfolding expansions of Pi spell out
sequences of 2^n-cell configurations (n address bits per cell, one rule
unfolding per bit) ending in an accepting configuration, and Theta
collects one query per *local error* that disqualifies an expansion
from being a legal accepting computation:

* address-counter errors (the first address is not 0...0; carry and
  sum bits violate binary increment) -- 7 error shapes, as in the
  paper;
* configuration-boundary errors (the configuration changes at an
  address other than 1...1, or fails to change at 1...1);
* initial-configuration errors (the first cell is not ``(s0, blank)``,
  a later cell of the first configuration is not blank);
* transition errors: violations of the local relations R_M, Rl_M, Rr_M
  between corresponding cells of successive configurations.

Then ``Pi contained-in Theta`` iff M does not accept the empty tape in
space 2^n.  Deciding these instances is doubly exponential by design --
the generator is used to *measure* instance growth and to validate the
encoding semantically (expansions decode to configuration sequences;
each error query matches exactly the flawed expansions), not to run
the full decision procedure on real machines.

The alternating variant (2EXPTIME-hardness) is in
:func:`encode_alternating`: Bit/A gain two arguments, universal
configurations spawn both successors through a nonlinear rule, and the
error queries are extended as the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..datalog.atoms import Atom
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Variable
from .turing import AlternatingTuringMachine, TuringMachine, local_relations, symbol_name

X, Y, Z, U, V = (Variable(n) for n in "XYZUV")
Z2, U2 = Variable("Z2"), Variable("U2")


def _q(symbol) -> str:
    return f"q_{symbol_name(symbol)}"


@dataclass
class SpaceEncoding:
    """The generated instance and its bookkeeping."""

    program: Program
    union: UnionOfConjunctiveQueries
    machine: TuringMachine
    n: int
    query_families: Dict[str, int] = field(default_factory=dict)

    def sizes(self) -> Dict[str, int]:
        return {
            "n": self.n,
            "program_rules": len(self.program),
            "program_size": self.program.size(),
            "union_disjuncts": len(self.union),
            "union_size": self.union.size(),
        }


class _QueryBuilder:
    """Assembles the Boolean error queries.

    All queries share the convention of the paper: arguments 1-2 of
    every A_i atom are the persistent variables x, y acting as the
    constants 0 and 1; argument 3 is the address bit, argument 4 the
    carry bit, arguments 5-6 chain consecutive positions, arguments 7-8
    identify the configuration.
    """

    def __init__(self, n: int):
        self.n = n
        self._fresh = 0

    def fresh(self, prefix: str = "F") -> Variable:
        self._fresh += 1
        return Variable(f"{prefix}{self._fresh}")

    def a_atom(self, i: int, addr, carry, z_in, z_out, u, v) -> Atom:
        addr = addr if addr is not None else self.fresh("D")
        carry = carry if carry is not None else self.fresh("D")
        return Atom(f"a{i}", (X, Y, addr, carry, z_in, z_out, u, v))

    def chain(self, levels: Sequence[int], z_vars: Sequence[Variable], u, v,
              addr: Optional[Dict[int, Variable]] = None,
              carry: Optional[Dict[int, Variable]] = None) -> List[Atom]:
        """A run of A atoms at the given bit levels, chained through
        *z_vars* (length len(levels)+1), sharing (u, v)."""
        addr = addr or {}
        carry = carry or {}
        atoms = []
        for position, level in enumerate(levels):
            atoms.append(
                self.a_atom(
                    level,
                    addr.get(position),
                    carry.get(position),
                    z_vars[position],
                    z_vars[position + 1],
                    u,
                    v,
                )
            )
        return atoms

    def zs(self, count: int) -> List[Variable]:
        return [self.fresh("Z") for _ in range(count)]

    def boolean(self, atoms: Sequence[Atom]) -> ConjunctiveQuery:
        return ConjunctiveQuery(Atom("c", ()), tuple(atoms))


def _levels_from(start: int, count: int, n: int) -> List[int]:
    """Bit levels cycling 1..n, beginning at *start*."""
    return [(start - 1 + offset) % n + 1 for offset in range(count)]


def encode_deterministic(machine: TuringMachine, n: int,
                         include_transition_errors: bool = True) -> SpaceEncoding:
    """The Section 5.3 instance for a deterministic machine.

    Returns Pi (linear, goal ``c``) and Theta such that Pi is contained
    in Theta iff *machine* does not accept the empty tape in space 2^n.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    symbols = machine.cell_symbols()
    rules: List[Rule] = []

    bit_pairs = [(X, X), (X, Y), (Y, X), (Y, Y)]
    head = lambda i, z=Z: Atom(f"bit{i}", (X, Y, z, U, V))  # noqa: E731

    # Address rules: one unfolding per address bit.
    for i in range(1, n):
        for addr, carry in bit_pairs:
            rules.append(
                Rule(
                    head(i),
                    (
                        Atom(f"bit{i+1}", (X, Y, Z2, U, V)),
                        Atom(f"a{i}", (X, Y, addr, carry, Z, Z2, U, V)),
                    ),
                )
            )

    # Symbol rules: the n-th bit carries the cell's symbol and loops
    # back to bit 1 within the same configuration.
    for symbol in symbols:
        for addr, carry in bit_pairs:
            rules.append(
                Rule(
                    head(n),
                    (
                        Atom("bit1", (X, Y, Z2, U, V)),
                        Atom(f"a{n}", (X, Y, addr, carry, Z, Z2, U, V)),
                        Atom(_q(symbol), (Z,)),
                    ),
                )
            )
            # Configuration-transition rules: u migrates one position.
            rules.append(
                Rule(
                    head(n),
                    (
                        Atom("bit1", (X, Y, Z2, U2, U)),
                        Atom(f"a{n}", (X, Y, addr, carry, Z, Z2, U, V)),
                        Atom(_q(symbol), (Z,)),
                    ),
                )
            )

    # End rules: the computation may stop at an accepting composite.
    for symbol in machine.accepting_cell_symbols():
        for addr, carry in bit_pairs:
            rules.append(
                Rule(
                    head(n),
                    (
                        Atom(f"a{n}", (X, Y, addr, carry, Z, Z2, U, V)),
                        Atom(_q(symbol), (Z,)),
                    ),
                )
            )

    # Start rule.
    rules.append(
        Rule(Atom("c", ()), (Atom("bit1", (X, Y, Z, U, V)), Atom("start", (Z,))))
    )
    program = Program(rules)

    # ------------------------------------------------------------------
    # Error queries.
    # ------------------------------------------------------------------
    builder = _QueryBuilder(n)
    queries: List[ConjunctiveQuery] = []
    families: Dict[str, int] = {}

    def add(family: str, query: ConjunctiveQuery) -> None:
        queries.append(query)
        families[family] = families.get(family, 0) + 1

    # (1) First address not 0...0: some bit of the first address is 1.
    for i in range(1, n + 1):
        zs = builder.zs(i + 1)
        atoms = [Atom("start", (zs[0],))]
        atoms += builder.chain(list(range(1, i + 1)), zs, U, V, addr={i - 1: Y})
        add("first_address_nonzero", builder.boolean(atoms))

    # (2) Carry errors.  alpha_i = address bit i of one address (first
    # block), gamma_i / beta_i = carry / address bit i of the *next*
    # address (second block, n positions later).
    def two_address_query(i: int, span: int, first_addr, second_addr, second_carry,
                          extra_level_bits=()) -> ConjunctiveQuery:
        levels = _levels_from(i, span, n)
        zs = builder.zs(span + 1)
        addr: Dict[int, Variable] = {}
        carry: Dict[int, Variable] = {}
        if first_addr is not None:
            addr[0] = first_addr
        if second_addr is not None:
            addr[n] = second_addr
        if second_carry is not None:
            carry[n] = second_carry
        for position, bit in extra_level_bits:
            carry[position] = bit
        atoms = builder.chain(levels, zs, builder.fresh("U"), builder.fresh("V"),
                              addr=addr, carry=carry)
        return builder.boolean(atoms)

    # gamma_1 = 0 anywhere: the first carry bit must always be 1.
    add("carry", builder.boolean([builder.a_atom(1, None, X, builder.fresh("Z"),
                                                 builder.fresh("Z"),
                                                 builder.fresh("U"), builder.fresh("V"))]))
    for i in range(1, n):
        # alpha_i=1, gamma_i=1, gamma_{i+1}=0
        add("carry", two_address_query(i, n + 2, Y, None, Y, [(n + 1, X)]))
        # alpha_i=0 but gamma_{i+1}=1
        add("carry", two_address_query(i, n + 2, X, None, None, [(n + 1, Y)]))
        # gamma_i=0 but gamma_{i+1}=1
        add("carry", two_address_query(i, n + 2, None, None, X, [(n + 1, Y)]))
    for i in range(1, n + 1):
        # Sum errors: beta_i must be alpha_i XOR gamma_i.
        add("sum", two_address_query(i, n + 1, X, Y, X))   # 0 xor 0 -> 1
        add("sum", two_address_query(i, n + 1, Y, Y, Y))   # 1 xor 1 -> 1
        add("sum", two_address_query(i, n + 1, Y, X, X))   # 1 xor 0 -> 0
        add("sum", two_address_query(i, n + 1, X, X, Y))   # 0 xor 1 -> 0

    # (3) Configuration boundary errors.
    for i in range(1, n + 1):
        # Change although address bit i is 0.
        levels = _levels_from(i, n - i + 1, n)
        zs = builder.zs(len(levels) + 2)
        atoms = builder.chain(levels, zs[:-1], U, V, addr={0: X})
        atoms.append(builder.a_atom(1, None, None, zs[-2], zs[-1], builder.fresh("U"), U))
        add("config_change", builder.boolean(atoms))
    # No change although the address is 1...1.
    zs = builder.zs(n + 2)
    atoms = builder.chain(list(range(1, n + 1)), zs[:-1], U, V,
                          addr={k: Y for k in range(n)})
    atoms.append(builder.a_atom(1, None, None, zs[-2], zs[-1], U, V))
    add("config_change", builder.boolean(atoms))

    # (4) Initial configuration errors.
    initial_symbol = (machine.initial_state, machine.blank)
    for symbol in symbols:
        if symbol != initial_symbol:
            zs = builder.zs(n + 1)
            atoms = [Atom("start", (zs[0],))]
            atoms += builder.chain(list(range(1, n + 1)), zs, U, V)
            atoms.append(Atom(_q(symbol), (zs[n - 1],)))
            add("initial_first_cell", builder.boolean(atoms))
        if symbol != machine.blank:
            for i in range(1, n + 1):
                z0 = builder.fresh("Z")
                atoms = [Atom("start", (z0,)),
                         builder.a_atom(1, None, None, z0, builder.fresh("Z"), U, V)]
                levels = _levels_from(i, n - i + 1, n)
                zs = builder.zs(len(levels) + 1)
                atoms += builder.chain(levels, zs, U, V, addr={0: Y})
                atoms.append(Atom(_q(symbol), (zs[-2],)))
                add("initial_rest_blank", builder.boolean(atoms))

    # (5) Transition errors: violations of R_M / Rl_M / Rr_M between
    # corresponding cells of successive configurations.
    if include_transition_errors:
        r_m, r_left, r_right = local_relations(machine)

        def cell_block(z_start: Variable, addr_vars, u, v, symbol) -> Tuple[List[Atom], Variable]:
            zs = [z_start] + builder.zs(n)
            addr = {k: addr_vars[k] for k in range(n)} if addr_vars else {}
            atoms = builder.chain(list(range(1, n + 1)), zs, u, v, addr=addr)
            atoms.append(Atom(_q(symbol), (zs[n - 1],)))
            return atoms, zs[-1]

        from .turing import composite_count

        for a in symbols:
            for b in symbols:
                for c_sym in symbols:
                    if composite_count(a, b, c_sym) > 1:
                        # Multi-head windows cannot occur (single-head
                        # invariant); skipping keeps the query count small.
                        continue
                    for d in symbols:
                        if (a, b, c_sym, d) in r_m:
                            continue
                        shared = [builder.fresh("S") for _ in range(n)]
                        u, v, u_next = (builder.fresh(p) for p in ("U", "V", "U"))
                        z0 = builder.fresh("Z")
                        block1, z1 = cell_block(z0, None, u, v, a)
                        block2, z2_ = cell_block(z1, shared, u, v, b)
                        block3, _ = cell_block(z2_, None, u, v, c_sym)
                        block4, _ = cell_block(builder.fresh("Z"), shared, u_next, u, d)
                        add("transition", builder.boolean(block1 + block2 + block3 + block4))

        for a, b, d in (
            tuple((a, b, d) for a in symbols for b in symbols for d in symbols)
        ):
            if composite_count(a, b) > 1:
                continue
            if (a, b, d) not in r_left:
                zeros = [X] * n
                u, v, u_next = (builder.fresh(p) for p in ("U", "V", "U"))
                block1, z1 = cell_block(builder.fresh("Z"), zeros, u, v, a)
                block2, _ = cell_block(z1, None, u, v, b)
                block4, _ = cell_block(builder.fresh("Z"), zeros, u_next, u, d)
                add("transition_left", builder.boolean(block1 + block2 + block4))
            if (a, b, d) not in r_right:
                ones = [Y] * n
                u, v, u_next = (builder.fresh(p) for p in ("U", "V", "U"))
                block1, z1 = cell_block(builder.fresh("Z"), None, u, v, a)
                block2, _ = cell_block(z1, ones, u, v, b)
                block4, _ = cell_block(builder.fresh("Z"), ones, u_next, u, d)
                add("transition_right", builder.boolean(block1 + block2 + block4))

    union = UnionOfConjunctiveQueries(queries, arity=0)
    return SpaceEncoding(program, union, machine, n, families)


# ----------------------------------------------------------------------
# Decoding expansions back into configuration traces (for validation).
# ----------------------------------------------------------------------

@dataclass
class DecodedStep:
    """One rule unfolding of the encoding's spine: a single bit."""

    level: int
    address_bit: Optional[int]
    carry_bit: Optional[int]
    symbol: Optional[str]
    config_break: bool


def decode_expansion(tree, n: int) -> List[DecodedStep]:
    """Decode an unfolding expansion tree of the deterministic encoding
    into its bit trace (root of the tree must be the goal ``c``)."""
    steps: List[DecodedStep] = []
    node = tree
    # Skip the start rule (goal c).
    if node.atom.predicate == "c":
        node = node.children[0] if node.children else None
    while node is not None:
        rule = node.rule
        level = int(node.atom.predicate.removeprefix("bit"))
        x_var, y_var = rule.head.args[0], rule.head.args[1]
        a_atom = next(a for a in rule.body if a.predicate.startswith("a"))
        addr = {x_var: 0, y_var: 1}.get(a_atom.args[2])
        carry = {x_var: 0, y_var: 1}.get(a_atom.args[3])
        symbol = None
        for atom in rule.body:
            if atom.predicate.startswith("q_"):
                symbol = atom.predicate.removeprefix("q_")
        config_break = False
        for atom in rule.body:
            if atom.predicate.startswith("bit") and len(atom.args) == 5:
                # Transition rules pass u into the child's 5th slot.
                config_break = atom.args[4] == rule.head.args[3]
        steps.append(DecodedStep(level, addr, carry, symbol, config_break))
        node = node.children[0] if node.children else None
    return steps


@dataclass
class AlternatingEncoding:
    """The alternating (2EXPTIME) variant of the Section 5.3 instance."""

    program: Program
    union: UnionOfConjunctiveQueries
    machine: AlternatingTuringMachine
    n: int
    query_families: Dict[str, int] = field(default_factory=dict)

    def sizes(self) -> Dict[str, int]:
        return {
            "n": self.n,
            "program_rules": len(self.program),
            "program_size": self.program.size(),
            "union_disjuncts": len(self.union),
            "union_size": self.union.size(),
        }


def encode_alternating(machine: AlternatingTuringMachine, n: int) -> AlternatingEncoding:
    """The alternating-machine extension sketched at the end of
    Section 5.3 (the 2EXPTIME lower bound).

    Bit_i and A_i gain two arguments (w, t): the configuration pair
    (u, v) becomes a triple (u, v, w) because a universal configuration
    has two successors, and t in {x, y} marks the configuration as
    existential or universal.  Universal configurations spawn both
    successors through a *nonlinear* rule (two Bit_1 subgoals).  The
    paper sketches the revised error queries; we generate the two
    families it illustrates (universal configurations mistagged as
    existential, and left-successor transition errors) alongside the
    counter machinery shared with the deterministic encoding.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    W, T = Variable("W"), Variable("T")
    W2, U3 = Variable("W2"), Variable("U3")
    symbols = machine._branch("left").cell_symbols()
    universal_composites = {
        (state, tape)
        for state in machine.universal_states
        for tape in sorted(machine.tape_symbols)
    }
    bit_pairs = [(X, X), (X, Y), (Y, X), (Y, Y)]
    rules: List[Rule] = []

    def bit(i, z=Z, u=U, v=V, w=W, t=T):
        return Atom(f"bit{i}", (X, Y, z, u, v, w, t))

    def a_atom(i, addr, carry, z=Z, z2=Z2, u=U, v=V, w=W, t=T):
        return Atom(f"a{i}", (X, Y, addr, carry, z, z2, u, v, w, t))

    # Address rules (t and the triple pass through unchanged).
    for i in range(1, n):
        for addr, carry in bit_pairs:
            rules.append(
                Rule(bit(i), (bit(i + 1, z=Z2), a_atom(i, addr, carry)))
            )

    for symbol in symbols:
        is_universal = symbol in universal_composites
        tag = Y if is_universal else X
        for addr, carry in bit_pairs:
            # Same-configuration symbol rules.
            rules.append(
                Rule(
                    bit(n, t=tag),
                    (bit(1, z=Z2, t=tag), a_atom(n, addr, carry, t=tag),
                     Atom(_q(symbol), (Z,))),
                )
            )
            if not is_universal:
                # Existential: u migrates into the fifth OR the sixth
                # slot (left or right successor).
                rules.append(
                    Rule(
                        bit(n, t=X),
                        (Atom(f"bit{1}", (X, Y, Z2, U2, U, W2, Y)),
                         a_atom(n, addr, carry, t=X), Atom(_q(symbol), (Z,))),
                    )
                )
                rules.append(
                    Rule(
                        bit(n, t=X),
                        (Atom(f"bit{1}", (X, Y, Z2, U2, V, U, Y)),
                         a_atom(n, addr, carry, t=X), Atom(_q(symbol), (Z,))),
                    )
                )
            else:
                # Universal: both successors, via the nonlinear rule.
                rules.append(
                    Rule(
                        bit(n, t=Y),
                        (
                            Atom(f"bit{1}", (X, Y, Z2, U2, U, W2, X)),
                            Atom(f"bit{1}", (X, Y, Z2, U3, V, U, X)),
                            a_atom(n, addr, carry, t=Y),
                            Atom(_q(symbol), (Z,)),
                        ),
                    )
                )

    # End rules at accepting composites.
    for symbol in machine._branch("left").accepting_cell_symbols():
        if symbol[0] not in machine.accepting_states:
            continue
        for addr, carry in bit_pairs:
            rules.append(
                Rule(bit(n), (a_atom(n, addr, carry), Atom(_q(symbol), (Z,))))
            )

    # Start rule: the initial configuration is existential.
    rules.append(
        Rule(
            Atom("c", ()),
            (Atom("bit1", (X, Y, Z, U, V, W, X)), Atom("start", (Z,))),
        )
    )
    program = Program(rules)

    # Error queries: the counter families carry over with two extra
    # don't-care arguments; we add the two alternation-specific
    # families the paper spells out.
    builder = _QueryBuilder(n)
    queries: List[ConjunctiveQuery] = []
    families: Dict[str, int] = {}

    def add(family: str, query: ConjunctiveQuery) -> None:
        queries.append(query)
        families[family] = families.get(family, 0) + 1

    def alt_a_atom(i, addr, carry, z_in, z_out, u, v, w, t):
        addr = addr if addr is not None else builder.fresh("D")
        carry = carry if carry is not None else builder.fresh("D")
        return Atom(f"a{i}", (X, Y, addr, carry, z_in, z_out, u, v, w, t))

    # (1) First address not zero.
    for i in range(1, n + 1):
        zs = builder.zs(i + 1)
        u, v, w, t = (builder.fresh(p) for p in "UVWT")
        atoms = [Atom("start", (zs[0],))]
        atoms += [
            alt_a_atom(j, Y if j == i else None, None, zs[j - 1], zs[j], u, v, w, t)
            for j in range(1, i + 1)
        ]
        add("first_address_nonzero", builder.boolean(atoms))

    # (2) Universal configurations mistagged as existential (the
    # query family the paper shows).
    for symbol in universal_composites:
        zs = builder.zs(2)
        u, v, w = (builder.fresh(p) for p in "UVW")
        atoms = [
            alt_a_atom(n, None, None, zs[0], zs[1], u, v, w, X),
            Atom(_q(symbol), (zs[0],)),
        ]
        add("universal_mistagged", builder.boolean(atoms))
    # ... and existential composites tagged universal.
    for symbol in symbols:
        if symbol in universal_composites:
            continue
        if not (isinstance(symbol, tuple)):
            continue
        zs = builder.zs(2)
        u, v, w = (builder.fresh(p) for p in "UVW")
        atoms = [
            alt_a_atom(n, None, None, zs[0], zs[1], u, v, w, Y),
            Atom(_q(symbol), (zs[0],)),
        ]
        add("existential_mistagged", builder.boolean(atoms))

    # (3) Left-successor transition errors (the illustrated family):
    # u migrates one position to the right.
    from .turing import composite_count

    r_m, _, _ = local_relations(machine._branch("left"))
    for a in symbols:
        for b in symbols:
            for c_sym in symbols:
                if composite_count(a, b, c_sym) > 1:
                    continue
                for d in symbols:
                    if (a, b, c_sym, d) in r_m:
                        continue
                    shared = [builder.fresh("S") for _ in range(n)]
                    u, v, w, t = (builder.fresh(p) for p in "UVWT")
                    u2, w2, t2 = (builder.fresh(p) for p in ("U", "W", "T"))
                    z0 = builder.fresh("Z")

                    def block(z_start, addr_vars, uu, vv, ww, tt, sym):
                        zs = [z_start] + builder.zs(n)
                        atoms = []
                        for j in range(1, n + 1):
                            addr = addr_vars[j - 1] if addr_vars else None
                            atoms.append(
                                alt_a_atom(j, addr, None, zs[j - 1], zs[j],
                                           uu, vv, ww, tt)
                            )
                        atoms.append(Atom(_q(sym), (zs[n - 1],)))
                        return atoms, zs[-1]

                    block1, z1 = block(z0, None, u, v, w, t, a)
                    block2, z2_ = block(z1, shared, u, v, w, t, b)
                    block3, _ = block(z2_, None, u, v, w, t, c_sym)
                    block4, _ = block(builder.fresh("Z"), shared, u2, u, w2, t2, d)
                    add("transition_left_successor",
                        builder.boolean(block1 + block2 + block3 + block4))

    union = UnionOfConjunctiveQueries(queries, arity=0)
    return AlternatingEncoding(program, union, machine, n, families)


def synthesize_trace_query(n: int, cells: List[dict]):
    """The expansion query of the unfolding that spells out *cells*.

    Each cell is a dict with ``address`` (int), ``carries`` (list of n
    bits), ``symbol`` (cell symbol), and optional ``config_break``
    (True when the configuration changes right after this cell).  The
    atoms produced are exactly those of the corresponding unfolding
    expansion of :func:`encode_deterministic`'s program, so error
    queries can be homomorphism-tested against it without searching the
    (enormous) expansion space.
    """
    from ..cq.query import ConjunctiveQuery

    x, y = Variable("GX"), Variable("GY")
    atoms: List[Atom] = []
    z_vars = [Variable(f"GZ{k}") for k in range(len(cells) * n + 1)]
    atoms.append(Atom("start", (z_vars[0],)))
    config = 0
    u_vars = [Variable("GU0"), Variable("GU1")]

    def config_pair(index: int):
        while len(u_vars) <= index + 1:
            u_vars.append(Variable(f"GU{len(u_vars)}"))
        # Configuration c carries (u_c, u_{c-1})-style linkage: we give
        # config c the pair (u_{c+1}, u_c).
        return u_vars[index + 1], u_vars[index]

    k = 0
    for cell in cells:
        u, v = config_pair(config)
        address = cell["address"]
        carries = cell["carries"]
        for i in range(1, n + 1):
            addr_bit = (address >> (i - 1)) & 1
            carry_bit = carries[i - 1]
            atoms.append(
                Atom(
                    f"a{i}",
                    (
                        x, y,
                        y if addr_bit else x,
                        y if carry_bit else x,
                        z_vars[k], z_vars[k + 1],
                        u, v,
                    ),
                )
            )
            k += 1
        atoms.append(Atom(_q(cell["symbol"]), (z_vars[k - 1],)))
        if cell.get("config_break"):
            config += 1
    return ConjunctiveQuery(Atom("c", ()), tuple(atoms))


def standard_carries(address: int, n: int) -> List[int]:
    """Carry bits stored with *address* (produced when the previous
    address was incremented, wrapping modulo 2^n)."""
    previous = (address - 1) % (2 ** n)
    carries = []
    carry = 1
    for i in range(n):
        carries.append(carry)
        carry = 1 if (((previous >> i) & 1) and carry) else 0
    return carries


def trace_addresses(steps: List[DecodedStep], n: int) -> List[int]:
    """Collapse a bit trace into the sequence of n-bit addresses
    (least significant bit first, i.e. bit level 1 first)."""
    addresses = []
    for start in range(0, len(steps) - n + 1, n):
        window = steps[start : start + n]
        if [s.level for s in window] != list(range(1, n + 1)):
            raise ValueError("bit levels out of phase")
        value = sum((s.address_bit or 0) << k for k, s in enumerate(window))
        addresses.append(value)
    return addresses
