"""Wall-clock budgets and universal deadlines for decision instances.

The paper's decision procedures are EXPTIME-hard (nonrecursive
containment is EXPTIME-complete, boundedness is undecidable in
general), so a long-running system *will* see individual decisions
overrun any budget.  This module delivers deterministic "ran out of
budget" outcomes through two cooperating enforcement tiers:

**Precise tier (SIGALRM).**  ``signal.setitimer`` + ``SIGALRM``
interrupts a pure-Python decision procedure mid-flight without
threading the deadline through every loop.  Signals are delivered to
the main thread only, so this tier covers pytest, the CLI, and the
batch runner's worker processes (whose shards run on their main
threads) -- but *not* helper threads or platforms without
``setitimer``.

**Cooperative tier (check hooks).**  :func:`time_budget` always
installs the deadline in a :class:`contextvars.ContextVar`
(tightest-enclosing-deadline-wins), and the hot loops of the
evaluation and decision stack -- the plan/columnar fixpoint drivers,
the antichain kernels, the profile searches -- call
:func:`check_deadline` once per iteration.  The check is one
ContextVar read plus one clock read, so it is free when no deadline is
armed, and it fires on *any* thread: a ``Session`` decision given a
``deadline=`` times out cleanly off the main thread too.

When only the cooperative tier can enforce (non-main thread, or no
``setitimer``), the budget is *degraded*: code that never reaches an
instrumented loop cannot be interrupted.  That used to be silent;
now it is a loud :class:`BudgetEnforcementWarning`, and an
:class:`UnenforceableBudgetError` under ``strict=True``.

Implementation notes (each is load-bearing):

* The previous ``SIGALRM`` disposition and any pending itimer are
  restored on exit, so nested budgets compose (the inner budget wins
  while active, the outer one resumes with its remaining time).
* The itimer is armed with a small *repeat interval*, not one-shot.
  CPython discards exceptions that escape a ``gc.callbacks`` hook
  (they go to ``sys.unraisablehook``), so a handler raise that lands
  while the main thread happens to be inside a GC callback -- e.g.
  Hypothesis' ``gc_cumulative_time`` hook -- is silently swallowed; a
  one-shot alarm is then spent and the block runs forever.  The
  interval re-fires until one raise lands in an interruptible frame.
* :func:`disarm_alarm` exists for process-pool worker initializers: a
  worker respawned after a crash must not inherit a dying worker's
  armed itimer, or the first retried job would be killed by a stale
  alarm (see :mod:`repro.resilience`).
"""

from __future__ import annotations

import signal
import threading
import warnings
from contextlib import contextmanager
from contextvars import ContextVar
from time import monotonic
from typing import Iterator, Optional, Tuple


class BudgetExhausted(Exception):
    """Raised inside a :func:`time_budget` block when the wall-clock
    budget runs out."""

    def __init__(self, seconds: float):
        super().__init__(f"wall-clock budget of {seconds}s exhausted")
        self.seconds = seconds


class BudgetEnforcementWarning(UserWarning):
    """A budget was requested where only cooperative enforcement is
    available (non-main thread, or no ``setitimer``): code outside the
    instrumented loops cannot be interrupted."""


class UnenforceableBudgetError(Exception):
    """Raised by ``time_budget(..., strict=True)`` instead of degrading
    to cooperative-only enforcement."""


def budgets_enforceable() -> bool:
    """True when the *precise* tier can enforce here: main thread, and
    the platform has ``signal.setitimer``.  The cooperative tier
    (:func:`check_deadline`) is available everywhere regardless."""
    return (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


# ----------------------------------------------------------------------
# Cooperative tier: the ambient deadline and its check hook.
# ----------------------------------------------------------------------

#: The tightest active deadline of this context: ``(expires_at,
#: seconds)`` with ``expires_at`` on the monotonic clock, or None.
_DEADLINE: ContextVar[Optional[Tuple[float, float]]] = ContextVar(
    "repro_deadline", default=None
)


def check_deadline() -> None:
    """Cooperative enforcement hook: raise :class:`BudgetExhausted`
    when the ambient :func:`time_budget` deadline has passed.

    One ContextVar read when no deadline is armed, so the fixpoint
    drivers and antichain kernels call it once per outer iteration at
    negligible cost.  Works on any thread -- this is what makes
    ``Session`` deadlines universal rather than main-thread-only.
    """
    entry = _DEADLINE.get()
    if entry is not None and monotonic() >= entry[0]:
        raise BudgetExhausted(entry[1])


def deadline_remaining() -> Optional[float]:
    """Seconds left on the ambient deadline (None when unarmed;
    0.0 once expired)."""
    entry = _DEADLINE.get()
    if entry is None:
        return None
    return max(0.0, entry[0] - monotonic())


def disarm_alarm() -> None:
    """Cancel any pending itimer and restore the default ``SIGALRM``
    disposition (no-op off the main thread).

    Pool-worker initializers call this on (re)spawn so a retried job
    cannot inherit an armed timer from the incarnation that died
    mid-budget -- without it, a stale alarm would kill the first job
    of the respawned worker at an arbitrary point.
    """
    if not budgets_enforceable():
        return
    signal.setitimer(signal.ITIMER_REAL, 0.0)
    signal.signal(signal.SIGALRM, signal.SIG_DFL)


@contextmanager
def _cooperative_deadline(seconds: float) -> Iterator[None]:
    """Install the cooperative deadline for the block, tightest
    enclosing deadline wins."""
    expires = monotonic() + seconds
    outer = _DEADLINE.get()
    entry = outer if (outer is not None and outer[0] <= expires) \
        else (expires, seconds)
    token = _DEADLINE.set(entry)
    try:
        yield
    finally:
        _DEADLINE.reset(token)


@contextmanager
def _sigalrm_budget(seconds: float) -> Iterator[None]:
    """The precise tier: arm SIGALRM for the block (main thread only)."""

    def _expire(signum, frame):
        raise BudgetExhausted(seconds)

    # Repeat interval: a raise that lands inside a GC callback is
    # swallowed by the interpreter (see module docstring), so keep
    # ticking until one raise sticks.
    interval = min(0.1, float(seconds))
    previous_handler = signal.signal(signal.SIGALRM, _expire)
    previous_timer = signal.setitimer(
        signal.ITIMER_REAL, float(seconds), interval
    )
    try:
        yield
    finally:
        while True:
            try:
                remaining = signal.setitimer(signal.ITIMER_REAL, 0.0)[0]
                break
            except BudgetExhausted:
                # A tick landed between the block ending and the
                # disarm; the block's outcome is already decided.
                continue
        signal.signal(signal.SIGALRM, previous_handler)
        outer = previous_timer[0]
        if outer > 0:
            # Resume an enclosing budget with the time it has left
            # (what it had when we started, minus what this block used).
            used = max(0.0, seconds - remaining) if remaining else seconds
            signal.setitimer(
                signal.ITIMER_REAL,
                max(0.001, outer - used),
                min(0.1, outer),
            )


@contextmanager
def time_budget(seconds: Optional[float], *,
                strict: bool = False) -> Iterator[None]:
    """Run the block under a wall-clock budget of *seconds*.

    ``None`` (or a non-positive value) disables the budget.  When the
    budget fires, :class:`BudgetExhausted` propagates out of the block.

    Both tiers are armed when available: the cooperative deadline
    (always -- any thread, consulted by :func:`check_deadline` in the
    instrumented loops) and the precise ``SIGALRM`` itimer (main
    thread with ``setitimer`` only).  Where only the cooperative tier
    applies, a :class:`BudgetEnforcementWarning` is emitted -- code
    outside instrumented loops cannot be interrupted there -- and
    ``strict=True`` raises :class:`UnenforceableBudgetError` instead
    of degrading.
    """
    if seconds is None or seconds <= 0:
        yield
        return
    precise = budgets_enforceable()
    if not precise:
        message = (
            f"wall-clock budget of {seconds}s is enforced cooperatively "
            f"only (non-main thread or no setitimer): code that never "
            f"reaches a check_deadline() hook cannot be interrupted"
        )
        if strict:
            raise UnenforceableBudgetError(message)
        warnings.warn(message, BudgetEnforcementWarning, stacklevel=3)
    with _cooperative_deadline(float(seconds)):
        if precise:
            with _sigalrm_budget(float(seconds)):
                yield
        else:
            yield
