"""Wall-clock budgets for provably-infeasible decision instances.

The ``tag:stress`` scenario tier (:mod:`repro.workloads.stress`) runs
the paper's lower-bound constructions *as workloads*: instances that
are EXPSPACE- or 2EXPTIME-hard **by construction** (Sections 5.3 and
6), so no kernel finishes them and "ran out of budget" *is* the
expected, paper-faithful verdict.  :func:`time_budget` delivers that
verdict deterministically: the protected block either completes or
raises :class:`BudgetExhausted` after the given number of seconds.

Implementation notes (each is load-bearing):

* ``signal.setitimer`` + ``SIGALRM`` is the only way to interrupt a
  pure-Python decision procedure mid-flight without threading the
  deadline through every loop.  Signals are delivered to the main
  thread only, and the batch runner's worker processes run their
  shards in their main thread, so every scenario execution path
  (pytest, CLI, process pool) is coverable.
* Off the main thread -- or on a platform without ``setitimer`` --
  the budget cannot interrupt, so the block runs unbudgeted.  Callers
  that schedule budgeted scenarios on helper threads own that risk;
  every in-repo runner stays on main threads.
* The previous ``SIGALRM`` disposition and any pending itimer are
  restored on exit, so nested budgets compose (the inner budget wins
  while active, the outer one resumes with its remaining time).
* The itimer is armed with a small *repeat interval*, not one-shot.
  CPython discards exceptions that escape a ``gc.callbacks`` hook
  (they go to ``sys.unraisablehook``), so a handler raise that lands
  while the main thread happens to be inside a GC callback -- e.g.
  Hypothesis' ``gc_cumulative_time`` hook -- is silently swallowed; a
  one-shot alarm is then spent and the block runs forever.  The
  interval re-fires until one raise lands in an interruptible frame.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator, Optional


class BudgetExhausted(Exception):
    """Raised inside a :func:`time_budget` block when the wall-clock
    budget runs out."""

    def __init__(self, seconds: float):
        super().__init__(f"wall-clock budget of {seconds}s exhausted")
        self.seconds = seconds


def budgets_enforceable() -> bool:
    """True when :func:`time_budget` can actually interrupt here:
    main thread, and the platform has ``signal.setitimer``."""
    return (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def time_budget(seconds: Optional[float]) -> Iterator[None]:
    """Run the block under a wall-clock budget of *seconds*.

    ``None`` (or a non-positive value) disables the budget.  When the
    budget fires, :class:`BudgetExhausted` propagates out of the block;
    when enforcement is unavailable (non-main thread, no ``setitimer``)
    the block runs unbudgeted -- see the module docstring.
    """
    if seconds is None or seconds <= 0 or not budgets_enforceable():
        yield
        return

    def _expire(signum, frame):
        raise BudgetExhausted(seconds)

    # Repeat interval: a raise that lands inside a GC callback is
    # swallowed by the interpreter (see module docstring), so keep
    # ticking until one raise sticks.
    interval = min(0.1, float(seconds))
    previous_handler = signal.signal(signal.SIGALRM, _expire)
    previous_timer = signal.setitimer(
        signal.ITIMER_REAL, float(seconds), interval
    )
    try:
        yield
    finally:
        while True:
            try:
                remaining = signal.setitimer(signal.ITIMER_REAL, 0.0)[0]
                break
            except BudgetExhausted:
                # A tick landed between the block ending and the
                # disarm; the block's outcome is already decided.
                continue
        signal.signal(signal.SIGALRM, previous_handler)
        outer = previous_timer[0]
        if outer > 0:
            # Resume an enclosing budget with the time it has left
            # (what it had when we started, minus what this block used).
            used = max(0.0, seconds - remaining) if remaining else seconds
            signal.setitimer(
                signal.ITIMER_REAL,
                max(0.001, outer - used),
                min(0.1, outer),
            )
