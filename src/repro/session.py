"""The session facade: one configured entry point for every decision.

The paper's decision procedures (containment in a UCQ, Theorem 5.12;
equivalence to a nonrecursive program, Theorem 6.5; the boundedness
semi-decision) plus bottom-up evaluation and the scenario registry
used to be reachable only as free functions with divergent signatures
-- ``kernel=`` threaded by hand, the engine picked by a process-global
default, three unrelated result dataclasses.  A :class:`Session` owns
that configuration (an :class:`~repro.datalog.engine.EngineConfig`, a
:class:`~repro.automata.kernel.KernelConfig`, and a
:class:`CachePolicy`) together with its caches (compiled plans,
automaton factories, EDB images -- a private
:class:`~repro.context.CacheScope` per session), and exposes every
entry point as a method returning one uniform :class:`Decision`.

Two sessions are fully isolated: different backends, separate caches,
zero bleed -- the enabling step for concurrent multi-config serving.
The *default* session wraps the historical process-global state (the
default engine, the global cache scope) and is held in a
:class:`contextvars.ContextVar`, so the legacy free functions -- which
now delegate here -- keep their exact behavior while becoming
thread-safe.

    >>> from repro import Session, parse_program
    >>> session = Session()
    >>> recursive = parse_program('''
    ...     buys(X, Y) :- likes(X, Y).
    ...     buys(X, Y) :- trendy(X), buys(Z, Y).
    ... ''')
    >>> nonrecursive = parse_program('''
    ...     buys(X, Y) :- likes(X, Y).
    ...     buys(X, Y) :- trendy(X), likes(Z, Y).
    ... ''')
    >>> decision = session.equivalent_to_nonrecursive(
    ...     recursive, nonrecursive, goal="buys")
    >>> bool(decision), decision.verdict["equivalent"]
    (True, True)
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, replace
from time import perf_counter
from typing import Any, Dict, Iterator, Mapping, Optional

from . import context as _context
from .automata.kernel import KernelConfig
from .budget import BudgetExhausted, time_budget
from .core import boundedness as _boundedness
from .core import containment as _containment
from .core import equivalence as _equivalence
from .core.instances import warm_shared_caches as _warm_caches
from .cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from .datalog.database import Database
from .datalog.engine import (
    Engine,
    EngineConfig,
    process_default_engine,
)
from .datalog.errors import UnsafeProgramError, ValidationError
from .datalog.program import Program
from .datalog.unfold import expansion_union, unfold_nonrecursive

__all__ = [
    "CachePolicy",
    "Decision",
    "Session",
    "config_fingerprint",
    "current_session",
    "default_session",
    "rows_checksum",
    "use_session",
]

_CACHE_SCOPES = ("private", "shared")


@dataclass(frozen=True)
class CachePolicy:
    """Cache ownership of a session.

    ``scope``
        ``"private"`` (the default): the session owns a fresh
        :class:`~repro.context.CacheScope` -- automaton factories and
        EDB images are isolated from every other session.
        ``"shared"``: the session reads and writes the process-global
        scope (what the default session does), trading isolation for
        reuse across sessions with compatible configuration.
    """

    scope: str = "private"

    def __post_init__(self):
        if self.scope not in _CACHE_SCOPES:
            raise ValidationError(
                f"unknown cache scope {self.scope!r}; "
                f"expected one of {_CACHE_SCOPES}"
            )


def rows_checksum(rows) -> str:
    """A process-independent digest of a relation.

    Rows are normalized to plain-value tuples (engine rows hold
    :class:`~repro.datalog.terms.Constant` objects; structural ground
    truth holds bare strings) and sorted, so the digest agrees between
    the engine under test and a graph-walk oracle, across processes
    and ``PYTHONHASHSEED`` values.  This is the ``checksum`` hook every
    evaluation :class:`Decision` carries.
    """
    normalized = sorted(
        tuple(getattr(value, "value", value) for value in row)
        for row in rows
    )
    return hashlib.sha1(repr(normalized).encode()).hexdigest()[:16]


def config_fingerprint(engine: "EngineConfig", kernel: KernelConfig,
                       cache: "CachePolicy") -> str:
    """The stable digest of a (engine, kernel, cache-policy)
    configuration triple -- what :attr:`Session.fingerprint` reports,
    computable without constructing a session (the decision service
    derives coalescing keys from it)."""
    config = {
        "engine": asdict(engine),
        "kernel": asdict(kernel),
        "cache": asdict(cache),
    }
    blob = repr(sorted(
        (section, sorted(values.items()))
        for section, values in config.items()
    ))
    return hashlib.sha1(blob.encode()).hexdigest()[:16]


def _analysis():
    """The static-analysis package, imported on first use (it sits
    above the datalog substrate this module is built from)."""
    from . import analysis
    return analysis


#: Per-kind verdict key that drives ``bool(decision)``.
_TRUTH_KEYS = {
    "containment": "contained",
    "equivalence": "equivalent",
    "boundedness": "bounded",
}


@dataclass
class Decision:
    """The uniform outcome of every session entry point.

    ``verdict`` is the JSON-serializable core (the keys the scenario
    registry checks against ground truth); ``certificate`` carries the
    procedure's rich payload (a witness proof tree, a witness union, an
    :class:`~repro.datalog.engine.EvaluationResult`); ``stats`` and
    ``timings`` carry per-phase search metrics and wall-clock seconds;
    ``fingerprint`` identifies the producing session's configuration,
    so two decisions are comparable only when their fingerprints match;
    ``checksum`` is the row digest of evaluation answers; ``ok`` is the
    ground-truth check when one exists (scenario runs); ``meta`` holds
    carrier fields (scenario name, matrix cell, worker pid).

    The resilience layer adds three fields: ``error`` is the
    error-taxonomy category of a job that was quarantined after
    exhausting its retries (``None`` for a real verdict); ``attempts``
    counts the tries that produced this decision (1 = first try);
    ``degraded_to`` names the ladder rung (``"engine/kernel"``) that
    answered when it was not the requested configuration.  All three
    round-trip through :meth:`record`.

    ``raw`` is the legacy result object
    (:class:`~repro.core.tree_containment.ContainmentResult`,
    :class:`~repro.core.equivalence.EquivalenceResult`,
    :class:`~repro.core.boundedness.BoundednessResult`, ...) that the
    delegating shims hand back, so pre-session call sites keep their
    exact return types.

    Decisions are dict-compatible for the batch runner's trajectory
    records: ``decision["verdict"]`` reads from :meth:`record`.
    """

    kind: str
    verdict: Dict[str, Any]
    ok: Optional[bool] = None
    stats: Dict[str, Any] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    fingerprint: str = ""
    checksum: Optional[str] = None
    error: Optional[str] = None
    attempts: int = 1
    degraded_to: Optional[str] = None
    certificate: Any = field(default=None, repr=False)
    meta: Dict[str, Any] = field(default_factory=dict)
    raw: Any = field(default=None, repr=False, compare=False)

    def __bool__(self) -> bool:
        if self.error is not None:
            return False
        if self.ok is False:
            return False
        key = _TRUTH_KEYS.get(self.kind)
        if key is not None:
            return bool(self.verdict.get(key))
        return True

    # -- dict compatibility (trajectory records, scenario harnesses) --

    def record(self) -> Dict[str, Any]:
        """The JSON-serializable view: ``meta`` flattened, then the
        uniform fields.  This is what the batch runner writes to the
        ``BENCH_*.json`` trajectories."""
        rec: Dict[str, Any] = dict(self.meta)
        rec["kind"] = self.kind
        rec["verdict"] = dict(self.verdict)
        rec["ok"] = self.ok
        rec["stats"] = dict(self.stats)
        rec["timings"] = dict(self.timings)
        rec["fingerprint"] = self.fingerprint
        rec["attempts"] = self.attempts
        if self.checksum is not None:
            rec["checksum"] = self.checksum
        if self.error is not None:
            rec["error"] = self.error
        if self.degraded_to is not None:
            rec["degraded_to"] = self.degraded_to
        return rec

    #: Dataclass fields surfaced as record keys (uniform fields win
    #: over ``meta`` on collision, matching :meth:`record`).
    _RECORD_FIELDS = ("kind", "verdict", "ok", "stats", "timings",
                      "fingerprint", "attempts")

    #: Optional fields that appear as record keys only when set.
    _OPTIONAL_FIELDS = ("checksum", "error", "degraded_to")

    def __getitem__(self, key: str) -> Any:
        # Field-direct reads: hot in the batch runner (job-order
        # reassembly, verdict comparison), so no record() rebuild.
        if key in self._RECORD_FIELDS:
            return getattr(self, key)
        if key in self._OPTIONAL_FIELDS and getattr(self, key) is not None:
            return getattr(self, key)
        return self.meta[key]

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key: str) -> bool:
        if key in self._RECORD_FIELDS:
            return True
        if key in self._OPTIONAL_FIELDS:
            return getattr(self, key) is not None
        return key in self.meta

    def keys(self):
        return self.record().keys()

    def without_payload(self) -> "Decision":
        """A copy without ``certificate``/``raw`` -- the shape the
        batch runner ships across process boundaries (witness trees
        and engine results stay in the worker)."""
        return replace(self, certificate=None, raw=None)

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "Decision":
        """Rebuild a (payload-stripped) decision from its
        :meth:`record` dict -- the inverse the decision service's wire
        format relies on: non-uniform keys land back in ``meta``.

            >>> d = Decision("containment", {"contained": True},
            ...              meta={"scenario": "x"})
            >>> Decision.from_record(d.record()) == d
            True
        """
        record = dict(record)
        kwargs: Dict[str, Any] = {
            field_name: record.pop(field_name)
            for field_name in cls._RECORD_FIELDS + cls._OPTIONAL_FIELDS
            if field_name in record
        }
        return cls(meta=record, **kwargs)


class Session:
    """A configured, isolated entry point to every decision procedure.

    A session owns an engine configuration (and hence a compiled-plan
    cache), a kernel configuration, and a cache policy; its decision
    methods activate the session in the ambient
    :class:`contextvars.ContextVar` for the duration of the call, so
    every cache the procedures consult (automaton factories, EDB
    images) resolves to this session's scope.  Methods return
    :class:`Decision`.

        >>> from repro import Session
        >>> from repro.datalog.engine import EngineConfig
        >>> fast = Session(engine=EngineConfig(backend="columnar"))
        >>> reference = Session(engine=EngineConfig(compiled=False))
        >>> fast.fingerprint != reference.fingerprint
        True
    """

    def __init__(self, engine: Optional[Any] = None,
                 kernel: Optional[KernelConfig] = None,
                 cache: Optional[Any] = None,
                 name: Optional[str] = None):
        if isinstance(engine, Engine):
            self._engine = engine
            self.engine_config = engine.config
        elif engine is None or isinstance(engine, EngineConfig):
            self.engine_config = engine or EngineConfig()
            self._engine = Engine(self.engine_config)
        else:
            raise ValidationError(
                f"engine must be an Engine or EngineConfig, got {engine!r}"
            )
        self.kernel = kernel or KernelConfig()
        if isinstance(cache, str):
            cache = CachePolicy(scope=cache)
        self.cache_policy = cache or CachePolicy()
        self.name = name or f"session-{id(self):x}"
        if self.cache_policy.scope == "shared":
            self.caches = _context.GLOBAL_SCOPE
        else:
            self.caches = _context.CacheScope(self.name)
        self._fingerprint: Optional[str] = None
        # Scenario-name-keyed EdbImages: populated by snapshot restore
        # and by scenario runs, consumed by later runs of the same
        # (deterministic) scenario payload.  Registry-bounded.
        self._snapshot_images: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Configuration identity.
    # ------------------------------------------------------------------

    @property
    def engine(self) -> Engine:
        """This session's (plan-cache-owning) evaluation engine."""
        return self._engine

    @property
    def config(self) -> Dict[str, Any]:
        """The JSON-able configuration triple the fingerprint hashes."""
        return {
            "engine": asdict(self.engine_config),
            "kernel": asdict(self.kernel),
            "cache": asdict(self.cache_policy),
        }

    @property
    def fingerprint(self) -> str:
        """A stable digest of the configuration: two sessions with the
        same fingerprint decide identically (caches never affect
        verdicts, so scope/name are excluded deliberately -- only the
        ``cache`` policy dict participates)."""
        if self._fingerprint is None:
            self._fingerprint = config_fingerprint(
                self.engine_config, self.kernel, self.cache_policy)
        return self._fingerprint

    def with_config(self, *, engine: Optional[Any] = None,
                    kernel: Optional[KernelConfig] = None,
                    cache: Optional[Any] = None,
                    name: Optional[str] = None) -> "Session":
        """A derived session: overridden fields are replaced, the rest
        -- including the live cache scope and engine -- are shared.
        (:func:`~repro.automata.kernel.set_default_kernel` uses this to
        swap the ambient kernel without discarding warm caches.)"""
        derived = Session.__new__(Session)
        if engine is None:
            derived._engine = self._engine
            derived.engine_config = self.engine_config
        elif isinstance(engine, Engine):
            derived._engine = engine
            derived.engine_config = engine.config
        else:
            derived.engine_config = engine
            derived._engine = Engine(engine)
        derived.kernel = kernel or self.kernel
        if isinstance(cache, str):
            cache = CachePolicy(scope=cache)
        derived.cache_policy = cache or self.cache_policy
        derived.name = name or self.name
        if cache is None:
            derived.caches = self.caches
            derived._snapshot_images = self._snapshot_images
        elif derived.cache_policy.scope == "shared":
            derived.caches = _context.GLOBAL_SCOPE
            derived._snapshot_images = {}
        else:
            derived.caches = _context.CacheScope(derived.name)
            derived._snapshot_images = {}
        derived._fingerprint = None
        return derived

    def __repr__(self):
        return (f"Session({self.name!r}, engine={self.engine_config}, "
                f"kernel={self.kernel}, cache={self.cache_policy})")

    # ------------------------------------------------------------------
    # Activation: make this session the ambient one.
    # ------------------------------------------------------------------

    @contextmanager
    def activated(self) -> Iterator["Session"]:
        """Make this session ambient for the ``with`` block: free
        functions and shared factories called inside resolve to this
        session's configuration and caches."""
        token = _context.activate(self)
        try:
            yield self
        finally:
            _context.deactivate(token)

    def __enter__(self) -> "Session":
        # The activation token is context-bound, so it is stacked on
        # the current context (not on self): one Session entered from
        # two threads must not pop the other thread's token.
        _context.push_session(self)
        return self

    def __exit__(self, *exc) -> bool:
        _context.pop_session()
        return False

    # ------------------------------------------------------------------
    # Decision construction.
    # ------------------------------------------------------------------

    def _decision(self, kind: str, verdict: Dict[str, Any], *,
                  ok: Optional[bool] = None,
                  stats: Optional[Dict] = None,
                  timings: Optional[Dict[str, float]] = None,
                  checksum: Optional[str] = None,
                  certificate: Any = None,
                  meta: Optional[Dict] = None,
                  raw: Any = None) -> Decision:
        return Decision(
            kind=kind,
            verdict=verdict,
            ok=ok,
            stats=dict(stats or {}),
            timings={key: round(value, 6)
                     for key, value in (timings or {}).items()},
            fingerprint=self.fingerprint,
            checksum=checksum,
            certificate=certificate,
            meta=dict(meta or {}),
            raw=raw,
        )

    @contextmanager
    def _deadline(self, seconds: Optional[float]) -> Iterator[None]:
        """Run the block under a per-call deadline (``None`` = no
        deadline).  Enforced by both budget tiers -- the cooperative
        ``check_deadline`` hooks in the fixpoint/antichain loops make
        this work off the main thread too.  When the deadline fires,
        this session's caches are dropped before the
        :class:`~repro.budget.BudgetExhausted` propagates, since the
        interrupt may have landed inside a cache-entry construction.
        """
        if seconds is None:
            yield
            return
        try:
            with time_budget(seconds):
                yield
        except BudgetExhausted:
            self.clear_caches()
            raise

    # ------------------------------------------------------------------
    # Forward containment (Theorem 5.12 / Corollary 5.7 / Theorem 6.4).
    # ------------------------------------------------------------------

    def contains(self, program: Program, goal: str,
                 union: UnionOfConjunctiveQueries, *,
                 method: str = "auto", use_antichain: bool = True,
                 use_certificates: bool = False,
                 kernel: Optional[KernelConfig] = None,
                 deadline: Optional[float] = None) -> Decision:
        """Decide ``Q_Pi subseteq union`` (Theorem 5.12).

        ``method`` is ``"auto"`` / ``"tree"`` / ``"word"`` as in
        :func:`repro.core.contained_in_ucq`; ``kernel`` overrides the
        session kernel for this call; ``deadline`` bounds the call's
        wall clock (every decision method takes one).  On
        non-containment the ``certificate`` is the witness proof tree.

        ``use_certificates=True`` consults the static analyzer first:
        a chain-rule class certificate (H005) pins the word-automaton
        method explicitly and is recorded in ``meta["analysis"]``.
        """
        analysis_meta = None
        if use_certificates and method == "auto":
            report = _analysis().analyze_program(program, goal, plans=False)
            analysis_meta = {"classes": list(report.classes)}
            if "chain" in report.classes:
                method = "word"
                analysis_meta["method"] = "word"
        kernel = kernel or self.kernel
        start = perf_counter()
        with self._deadline(deadline), self.activated():
            result = _containment.decide_containment_in_ucq(
                program, goal, union, method=method,
                use_antichain=use_antichain, kernel=kernel,
            )
        decision = self._decision(
            "containment", {"contained": result.contained},
            stats=result.stats,
            timings={"decide_s": perf_counter() - start},
            certificate=result.witness, raw=result,
        )
        if analysis_meta is not None:
            decision.meta["analysis"] = analysis_meta
        return decision

    def contains_cq(self, program: Program, goal: str,
                    theta: ConjunctiveQuery, *, method: str = "auto",
                    use_antichain: bool = True,
                    kernel: Optional[KernelConfig] = None,
                    deadline: Optional[float] = None) -> Decision:
        """Decide ``Q_Pi subseteq theta`` (Corollary 5.7)."""
        union = UnionOfConjunctiveQueries([theta], theta.arity)
        return self.contains(program, goal, union, method=method,
                             use_antichain=use_antichain, kernel=kernel,
                             deadline=deadline)

    def contains_nonrecursive(self, program: Program, goal: str,
                              nonrecursive: Program,
                              nonrecursive_goal: Optional[str] = None, *,
                              method: str = "auto",
                              kernel: Optional[KernelConfig] = None,
                              deadline: Optional[float] = None) -> Decision:
        """Decide ``Q_Pi subseteq Q'_Pi'`` for nonrecursive Pi'
        (Theorem 6.4): unfold Pi' to a UCQ, then decide containment."""
        start = perf_counter()
        union = unfold_nonrecursive(nonrecursive, nonrecursive_goal or goal)
        unfold_s = perf_counter() - start
        decision = self.contains(program, goal, union, method=method,
                                 kernel=kernel, deadline=deadline)
        decision.timings["unfold_s"] = round(unfold_s, 6)
        decision.stats.setdefault("union_disjuncts", len(union))
        return decision

    # ------------------------------------------------------------------
    # The classical reverse direction (canonical databases).
    # ------------------------------------------------------------------

    def cq_contained(self, theta: ConjunctiveQuery, program: Program,
                     goal: str, *, engine: Optional[Engine] = None,
                     deadline: Optional[float] = None) -> Decision:
        """Decide ``theta subseteq Q_Pi`` by the canonical-database
        test [CK86, Sa88b], on this session's engine."""
        start = perf_counter()
        with self._deadline(deadline), self.activated():
            held = _containment.decide_cq_in_datalog(
                theta, program, goal, engine=engine or self._engine)
        return self._decision(
            "containment", {"contained": held},
            timings={"decide_s": perf_counter() - start}, raw=held,
        )

    def ucq_contained(self, union: UnionOfConjunctiveQueries,
                      program: Program, goal: str, *,
                      engine: Optional[Engine] = None,
                      deadline: Optional[float] = None) -> Decision:
        """Decide ``union subseteq Q_Pi`` disjunct-wise (Theorem 2.3)."""
        start = perf_counter()
        with self._deadline(deadline), self.activated():
            held = _containment.decide_ucq_in_datalog(
                union, program, goal, engine=engine or self._engine)
        return self._decision(
            "containment", {"contained": held},
            stats={"union_disjuncts": len(union)},
            timings={"decide_s": perf_counter() - start}, raw=held,
        )

    def nonrecursive_contained(self, nonrecursive: Program,
                               nonrecursive_goal: str, program: Program,
                               goal: str, *,
                               engine: Optional[Engine] = None,
                               deadline: Optional[float] = None) -> Decision:
        """Decide ``Q'_Pi' subseteq Q_Pi`` for nonrecursive Pi'."""
        start = perf_counter()
        with self._deadline(deadline), self.activated():
            held = _containment.decide_nonrecursive_in_datalog(
                nonrecursive, nonrecursive_goal, program, goal,
                engine=engine or self._engine)
        return self._decision(
            "containment", {"contained": held},
            timings={"decide_s": perf_counter() - start}, raw=held,
        )

    # ------------------------------------------------------------------
    # Equivalence (Theorem 6.5) and boundedness.
    # ------------------------------------------------------------------

    def equivalent_to_nonrecursive(self, program: Program,
                                   nonrecursive: Program, goal: str,
                                   nonrecursive_goal: Optional[str] = None, *,
                                   method: str = "auto",
                                   engine: Optional[Engine] = None,
                                   kernel: Optional[KernelConfig] = None,
                                   deadline: Optional[float] = None) -> Decision:
        """Decide ``Pi == Pi'`` for nonrecursive Pi' (Theorem 6.5),
        with per-phase timings (``unfold_s`` / ``backward_s`` /
        ``forward_s``)."""
        timings: Dict[str, float] = {}
        with self._deadline(deadline), self.activated():
            result = _equivalence.decide_equivalence(
                program, nonrecursive, goal,
                nonrecursive_goal=nonrecursive_goal, method=method,
                engine=engine or self._engine, kernel=kernel or self.kernel,
                timings=timings,
            )
        return self._decision(
            "equivalence",
            {"equivalent": result.equivalent,
             "forward": result.forward_holds,
             "backward": result.backward_holds},
            stats=result.stats, timings=timings,
            certificate=result.forward_witness, raw=result,
        )

    def equivalent_to_ucq(self, program: Program, goal: str,
                          union: UnionOfConjunctiveQueries, *,
                          method: str = "auto",
                          engine: Optional[Engine] = None,
                          kernel: Optional[KernelConfig] = None,
                          deadline: Optional[float] = None) -> Decision:
        """Decide ``Pi == union`` (the Theorem 5.12 form)."""
        timings: Dict[str, float] = {}
        with self._deadline(deadline), self.activated():
            result = _equivalence.decide_equivalence_to_ucq(
                program, goal, union, method=method,
                engine=engine or self._engine, kernel=kernel or self.kernel,
                timings=timings,
            )
        return self._decision(
            "equivalence",
            {"equivalent": result.equivalent,
             "forward": result.forward_holds,
             "backward": result.backward_holds},
            stats=result.stats, timings=timings,
            certificate=result.forward_witness, raw=result,
        )

    def bounded(self, program: Program, goal: str, max_depth: int = 4, *,
                method: str = "auto", use_certificates: bool = False,
                engine: Optional[Engine] = None,
                kernel: Optional[KernelConfig] = None,
                deadline: Optional[float] = None) -> Decision:
        """Search for a boundedness certificate up to ``max_depth``
        (semi-decision; ``bounded`` is True or None=unknown).  The
        ``certificate`` is the equivalent union of conjunctive queries
        when one is found; ``stats``/``timings`` report the per-depth
        probe work.

        ``use_certificates=True`` consults the static analyzer first:
        an H001 certificate whose depth bound fits ``max_depth`` skips
        the containment search entirely and answers with the certified
        depth and its expansion-union witness.  Opt-in because the
        certified depth is a *bound*, not necessarily the minimal
        depth the search would report.
        """
        if use_certificates:
            cert = _analysis().boundedness_certificate(program, goal)
            if cert is not None and cert["depth_bound"] <= max_depth:
                start = perf_counter()
                with self._deadline(deadline), self.activated():
                    union = expansion_union(
                        program, goal, cert["depth_bound"])
                result = _boundedness.BoundednessResult(
                    bounded=True, depth=cert["depth_bound"],
                    witness_union=union)
                decision = self._decision(
                    "boundedness",
                    {"bounded": True, "depth": cert["depth_bound"]},
                    stats={"certificate_fast_path": 1},
                    timings={"expand_s": perf_counter() - start},
                    certificate=union, raw=result,
                )
                decision.meta["analysis"] = cert
                return decision
        timings: Dict[str, float] = {}
        stats: Dict[str, int] = {}
        with self._deadline(deadline), self.activated():
            # engine=None deliberately stays None: the search gives its
            # one-off candidate programs a throwaway probe engine so
            # they cannot churn this session's plan cache.
            result = _boundedness.search_boundedness(
                program, goal, max_depth=max_depth, method=method,
                engine=engine, kernel=kernel or self.kernel,
                timings=timings, stats=stats,
            )
        return self._decision(
            "boundedness",
            {"bounded": result.bounded, "depth": result.depth},
            stats=stats, timings=timings,
            certificate=result.witness_union, raw=result,
        )

    # ------------------------------------------------------------------
    # Static analysis.
    # ------------------------------------------------------------------

    def analyze(self, program, goal: Optional[str] = None, *,
                plans: bool = True):
        """Statically analyze *program* (a :class:`Program` or source
        text) and return an
        :class:`~repro.analysis.diagnostics.AnalysisReport` -- typed
        diagnostics, class certificates, no evaluation.  Source text
        with syntax or arity errors yields E004/E003 diagnostics
        rather than raising."""
        analysis = _analysis()
        with self.activated():
            if isinstance(program, str):
                return analysis.analyze_source(program, goal, plans=plans)
            return analysis.analyze_program(program, goal, plans=plans)

    # ------------------------------------------------------------------
    # Evaluation and magic sets.
    # ------------------------------------------------------------------

    def evaluate(self, program: Program, database: Database,
                 max_stages: Optional[int] = None, *,
                 goal: Optional[str] = None,
                 engine: Optional[Engine] = None,
                 deadline: Optional[float] = None) -> Decision:
        """Bottom-up evaluation on this session's engine.

        The ``certificate`` (and ``raw``) is the full
        :class:`~repro.datalog.engine.EvaluationResult`; with ``goal=``
        the verdict gains ``count`` and the decision a row
        ``checksum`` over the goal relation.
        """
        start = perf_counter()
        try:
            with self._deadline(deadline), self.activated():
                result = (engine or self._engine).evaluate(
                    program, database, max_stages=max_stages)
        except UnsafeProgramError as exc:
            # The EngineConfig(validate=True) gate: an unsafe program
            # becomes a typed error decision carrying the analyzer's
            # diagnostics instead of an exception.
            decision = self._decision(
                "evaluation", {"valid": False}, ok=False,
                timings={"evaluate_s": perf_counter() - start},
                meta={"diagnostics": exc.diagnostics},
            )
            decision.error = "invalid-program"
            return decision
        timings = {"evaluate_s": perf_counter() - start}
        verdict: Dict[str, Any] = {
            "stages": result.stages,
            "fixpoint": result.fixpoint,
            "facts": sum(len(rows) for rows in result.idb.values()),
        }
        checksum = None
        if goal is not None:
            rows = result.facts(goal)
            verdict["count"] = len(rows)
            checksum = rows_checksum(rows)
        return self._decision("evaluation", verdict, timings=timings,
                              checksum=checksum, certificate=result,
                              raw=result)

    def query(self, program: Program, database: Database, goal: str,
              max_stages: Optional[int] = None, *,
              engine: Optional[Engine] = None,
              deadline: Optional[float] = None) -> Decision:
        """The relation ``goal_Pi(D)``: an evaluation decision whose
        ``raw`` is the frozenset of goal rows."""
        program.require_goal(goal)
        decision = self.evaluate(program, database, max_stages=max_stages,
                                 goal=goal, engine=engine,
                                 deadline=deadline)
        if decision.error is not None:
            return decision
        decision.raw = decision.certificate.facts(goal)
        return decision

    def magic(self, program: Program, database: Database, goal: str,
              adornment: str, bindings, *,
              engine: Optional[Engine] = None,
              deadline: Optional[float] = None) -> Decision:
        """Goal-directed evaluation via magic sets, with the
        direct-vs-magic derived-fact counts as ``stats``."""
        from .datalog.magic import derived_fact_count, magic_query

        engine = engine or self._engine
        with self._deadline(deadline), self.activated():
            start = perf_counter()
            rows = magic_query(program, database, goal, adornment,
                               bindings, engine=engine)
            magic_s = perf_counter() - start
            start = perf_counter()
            counts = derived_fact_count(program, database, goal, adornment,
                                        bindings, engine=engine)
            count_s = perf_counter() - start
        verdict = {"rows": len(rows),
                   "magic_beats_direct": counts["magic"] < counts["direct"]}
        return self._decision(
            "magic", verdict, stats=counts,
            timings={"magic_s": magic_s, "count_s": count_s},
            checksum=rows_checksum(rows), certificate=rows, raw=rows,
        )

    # ------------------------------------------------------------------
    # Scenario execution.
    # ------------------------------------------------------------------

    def run_scenario(self, scenario, *, engine: Optional[Engine] = None,
                     kernel: Optional[KernelConfig] = None,
                     deadline: Optional[float] = None) -> Decision:
        """Execute a registry scenario (by name or object) under this
        session and check its verdict against constructed ground truth
        (``decision.ok``).

        Scenarios carrying a ``budget_s`` (the ``tag:stress`` tier's
        provably-infeasible lower-bound instances) run under a
        wall-clock budget; when it fires the verdict is the
        deterministic ``{"budget_exhausted": True}`` -- exactly what
        such scenarios register as ground truth -- and the session's
        caches are dropped, since the interrupt may have landed inside
        a cache-entry construction.

        A caller ``deadline`` composes with the scenario budget by
        tightest-wins.  The two exhaust differently: the scenario's
        *own* budget firing is part of the scenario's expected verdict,
        while a tighter caller deadline firing is an external timeout,
        so :class:`~repro.budget.BudgetExhausted` propagates for the
        resilience layer to classify.
        """
        from .workloads import scenarios as _scenarios

        if isinstance(scenario, str):
            scenario = _scenarios.get_scenario(scenario)
        budget = getattr(scenario, "budget_s", None)
        start = perf_counter()
        payload = scenario.build()
        build_s = perf_counter() - start
        start = perf_counter()
        try:
            with self._deadline(deadline), self.activated(), \
                    time_budget(budget):
                self._adopt_scenario_image(scenario.name, payload)
                verdict, stats = _scenarios.kind_runner(scenario.kind)(
                    payload, engine or self._engine, kernel or self.kernel)
        except BudgetExhausted as exhausted:
            self.clear_caches()
            if budget is None or exhausted.seconds != budget:
                raise
            verdict, stats = {"budget_exhausted": True}, {"budget_s": budget}
        else:
            self._stash_scenario_image(scenario.name, payload)
        decide_s = perf_counter() - start
        return self._decision(
            scenario.kind, verdict,
            ok=(verdict == dict(scenario.expected)),
            stats=stats,
            timings={"build_s": build_s, "decide_s": decide_s},
            checksum=verdict.get("checksum"),
            meta={"scenario": scenario.name},
        )

    # ------------------------------------------------------------------
    # Scenario image reuse (in-session and snapshot-restored).
    # ------------------------------------------------------------------

    def _adopt_scenario_image(self, name: str, payload) -> None:
        """Before running scenario *name*: if a columnar image of its
        payload database is banked (from an earlier run of this
        deterministic payload, or restored from a snapshot), install
        it so evaluation skips the interning pass.  Shape mismatch
        drops the banked image and falls back to a cold build."""
        database = payload.get("database") if isinstance(payload, dict) \
            else None
        if database is None:
            return
        image = self._snapshot_images.get(name)
        if image is None:
            return
        from .datalog.columns import adopt_image

        if not adopt_image(database, image, scope=self.caches):
            self._snapshot_images.pop(name, None)

    def _stash_scenario_image(self, name: str, payload) -> None:
        """After a successful scenario run: bank the image built for
        its payload database under the scenario name, so the next run
        (or a snapshot) reuses it.  A reference, not a copy."""
        database = payload.get("database") if isinstance(payload, dict) \
            else None
        if database is None:
            return
        from .datalog.columns import peek_image

        image = peek_image(database, scope=self.caches)
        if image is not None:
            self._snapshot_images[name] = image

    # ------------------------------------------------------------------
    # Cache lifecycle.
    # ------------------------------------------------------------------

    def warm(self, program: Optional[Program] = None,
             goal: Optional[str] = None, union=None, *,
             scenario=None, snapshot=None) -> "Session":
        """Pre-build this session's caches: either the automaton
        caches for an explicit ``(program, goal[, union])``, or
        everything a registry ``scenario`` (name or object) will touch
        -- the unions its decision procedure actually constructs.
        With ``snapshot=`` (a directory path), previously persisted
        warm state for this configuration fingerprint is restored
        first (see :mod:`repro.snapshot`), making the rest of the
        warm-up cache hits.  Returns ``self`` for chaining."""
        if snapshot is not None:
            from .snapshot import restore_session
            restore_session(self, snapshot)
        with self.activated():
            if scenario is not None:
                self._warm_scenario(scenario)
            if program is not None:
                if goal is None:
                    raise ValidationError(
                        "Session.warm(program=...) requires goal=")
                _warm_caches(program, goal, union)
        return self

    def snapshot(self, directory=None, scenarios=()) -> Optional[Any]:
        """Persist this session's warm state (see
        :func:`repro.snapshot.save_snapshot`): compiled plans, the
        automaton caches, and scenario-keyed EDB images.  Returns the
        written path, or ``None`` when no directory is configured."""
        from .snapshot import save_snapshot

        return save_snapshot(self, directory, scenarios)

    def _warm_scenario(self, scenario) -> None:
        """Warm the kernel-neutral caches one scenario's decision will
        hit: containment payloads carry their union, equivalence
        unfolds its nonrecursive program, and the boundedness search
        probes the expansion unions of every depth up to its
        ``max_depth``.  Evaluation scenarios warm their columnar EDB
        image instead (adopted from the session's image bank when one
        is available, built and banked otherwise); their plans compile
        on first run."""
        from .datalog.unfold import expansion_union
        from .workloads.scenarios import DECISION_KINDS, get_scenario

        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        if scenario.kind not in DECISION_KINDS:
            if (self.engine_config.compiled
                    and self.engine_config.backend == "columnar"):
                from .datalog.columns import edb_image

                payload = scenario.build()
                database = payload.get("database")
                if database is not None:
                    self._adopt_scenario_image(scenario.name, payload)
                    edb_image(database)
                    self._stash_scenario_image(scenario.name, payload)
            return
        try:
            # Warming is best-effort: a budgeted (tag:stress) scenario's
            # caches may be as infeasible to build as its decision.
            with time_budget(getattr(scenario, "budget_s", None)):
                payload = scenario.build()
                program, goal = payload["program"], payload["goal"]
                unions = []
                if scenario.kind == "containment":
                    unions.append(payload["union"])
                elif scenario.kind == "equivalence":
                    unions.append(unfold_nonrecursive(
                        payload["nonrecursive"],
                        payload.get("nonrecursive_goal") or goal))
                elif scenario.kind == "boundedness":
                    unions.extend(
                        expansion_union(program, goal, depth)
                        for depth in range(1, payload.get("max_depth", 3) + 1))
                _warm_caches(program, goal)
                for union in unions:
                    _warm_caches(program, goal, union)
        except BudgetExhausted:
            self.clear_caches()

    def clear_caches(self) -> None:
        """Return this session to a cold state: drop its cache scope
        (automaton factories, EDB images) and its engine's compiled
        plans.  On the default session this also runs every clearer in
        the kernel's shared-cache registry, preserving the historical
        ``clear_shared_caches()`` contract."""
        self.caches.clear()
        self._engine.clear_plans()
        if self.caches is _context.GLOBAL_SCOPE:
            from .automata.kernel import clear_registered_caches
            from .core.instances import register_core_caches

            register_core_caches()
            clear_registered_caches()

    def cache_stats(self) -> Dict[str, Any]:
        """Observability hook: per-table ``{"size", "hits", "misses"}``
        counters of this session's scope plus the compiled-plan count.
        The session-isolation tests assert zero bleed with these."""
        return {
            "scope": self.caches.stats(),
            "scope_name": self.caches.name,
            "plans": self._engine.plan_cache_size(),
        }


# ----------------------------------------------------------------------
# The default session and ambient resolution.
# ----------------------------------------------------------------------

def _make_default_session() -> Session:
    """The default session wraps the historical process-global state:
    the process default engine and the global cache scope."""
    return Session(engine=process_default_engine(),
                   cache=CachePolicy(scope="shared"), name="default")


_context.register_default_session_factory(_make_default_session)


def default_session() -> Session:
    """The process default session (created lazily, exactly once).
    Its caches are the process-global scope; the legacy free functions
    delegate to it when no session is active."""
    return _context.default_session()


def current_session() -> Session:
    """The ambient session: the innermost active one (``with
    session:`` / ``session.activated()``), else the context's default
    (as adjusted by :func:`~repro.automata.kernel.set_default_kernel`),
    else :func:`default_session`."""
    return _context.current_session()


@contextmanager
def use_session(session: Session) -> Iterator[Session]:
    """Make *session* ambient for the ``with`` block (alias for
    ``session.activated()`` that reads well at call sites)."""
    with session.activated() as active:
        yield active
