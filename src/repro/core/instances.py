"""Enumeration of rule instances over the proof-tree term space.

A proof-tree node is labeled ``(alpha, rho)`` where rho is an instance
of a program rule over ``var(Pi)`` (plus the program's constants,
Remark 5.14).  Both the proof-tree automaton (Proposition 5.9) and the
query automaton (Proposition 5.10) read these labels; this module
provides the shared, cached enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Optional, Tuple

from ..context import current_scope
from ..datalog.atoms import Atom
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Variable, is_variable
from ..datalog.unify import apply_to_atom, apply_to_atoms, resolve, unify_tuples
from ..trees.proof import term_space


@dataclass(frozen=True)
class Label:
    """A proof-tree node label ``(alpha, rho)`` -- one alphabet symbol.

    ``idb_atoms`` are the IDB atoms of rho's body in order (the child
    goals); an empty tuple makes this a leaf symbol.

    Labels key every transition cache in the decision stack, so the
    class is slotted and its (rule-instance-sized) hash is computed
    once and cached; the enumerator below reuses label objects, so the
    cache amortizes across the whole search.
    """

    __slots__ = ("atom", "rule", "idb_atoms", "edb_atoms", "_hash")

    atom: Atom
    rule: Rule
    idb_atoms: Tuple[Atom, ...]
    edb_atoms: Tuple[Atom, ...]

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            value = hash((self.atom, self.rule, self.idb_atoms, self.edb_atoms))
            object.__setattr__(self, "_hash", value)
            return value

    # Explicit pickle support: the default slot-state protocol
    # setattr()s into a frozen dataclass (FrozenInstanceError), and
    # ``_hash`` must not travel anyway -- hashes are salted per
    # process (PYTHONHASHSEED), so a snapshot-restored label recomputes
    # lazily in the new process.
    def __getstate__(self):
        return (self.atom, self.rule, self.idb_atoms, self.edb_atoms)

    def __setstate__(self, state):
        for name, value in zip(("atom", "rule", "idb_atoms", "edb_atoms"),
                               state):
            object.__setattr__(self, name, value)

    def is_leaf(self) -> bool:
        return not self.idb_atoms

    def __str__(self):
        return f"({self.atom} | {self.rule})"


class InstanceEnumerator:
    """Enumerates (and caches) rule instances for a fixed program.

    ``labels_for(atom)`` yields every label whose goal is exactly
    *atom* -- all ways a proof-tree node with that goal can be expanded.
    The count per rule is ``|term_space|^(#variables not bound by the
    head unification)``, i.e. exponential in the rule width but
    enumerated lazily and cached per goal atom.
    """

    def __init__(self, program: Program):
        self._program = program
        self._space = term_space(program)
        self._idb = program.idb_predicates
        self._cache: Dict[Atom, Tuple[Label, ...]] = {}

    @property
    def program(self) -> Program:
        return self._program

    @property
    def space(self) -> Tuple:
        return self._space

    def labels_for(self, atom: Atom) -> Tuple[Label, ...]:
        """All labels ``(atom, rho)`` with head(rho) == atom."""
        cached = self._cache.get(atom)
        if cached is not None:
            return cached
        labels: List[Label] = []
        for rule in self._program.rules_for(atom.predicate):
            labels.extend(self._instances(rule, atom))
        result = tuple(labels)
        self._cache[atom] = result
        return result

    def _instances(self, rule: Rule, head_atom: Atom) -> Iterator[Label]:
        seed = unify_tuples(rule.head.args, head_atom.args, {})
        if seed is None:
            return
        free = sorted(
            (v for v in rule.variables() if resolve(v, seed) == v),
            key=lambda v: v.name,
        )
        for values in product(self._space, repeat=len(free)):
            subst = dict(seed)
            subst.update(zip(free, values))
            head = apply_to_atom(rule.head, subst)
            if head != head_atom:
                # The head unification bound a term-space variable (the
                # rule head repeats variables or carries constants);
                # this instantiation cannot label a node with this goal.
                continue
            body = apply_to_atoms(rule.body, subst)
            instance = Rule(head, body)
            yield Label(
                atom=head,
                rule=instance,
                idb_atoms=instance.idb_body_atoms(self._idb),
                edb_atoms=instance.edb_body_atoms(self._idb),
            )

    def count_labels(self, goal: str) -> int:
        """Total number of labels across all goal atoms of *goal*
        (the alphabet size of Proposition 5.9 for that predicate)."""
        from ..trees.proof import root_atoms

        return sum(len(self.labels_for(atom)) for atom in root_atoms(self._program, goal))


def shared_enumerator(program: Program) -> InstanceEnumerator:
    """The ambient cache scope's enumerator per program value.

    ``Program`` is a frozen dataclass, so equal programs share one
    enumerator -- and hence one label cache -- across repeated
    containment calls (the boundedness search rebuilds the same
    automata for every probed depth).  The enumerator only ever grows
    monotone caches, so sharing is semantically transparent.  The memo
    table lives in the ambient session's
    :class:`~repro.context.CacheScope` (the process-global scope by
    default), so two live sessions never share enumerators.
    """
    return current_scope().memo(
        "core.enumerator", program, lambda: InstanceEnumerator(program),
        limit=64,
    )


def register_core_caches() -> None:
    """Register the default session's caches with the kernel's
    cache-lifecycle registry: the global cache scope (automaton
    factories, EDB images) and the default engine's compiled-plan
    cache.  Imported lazily to avoid import cycles; registration is
    idempotent (the core package calls this at import time, and
    :func:`clear_shared_caches` re-asserts it)."""
    from ..automata.kernel import register_shared_cache
    from ..context import GLOBAL_SCOPE
    from ..datalog.engine import clear_default_plan_cache

    register_shared_cache(GLOBAL_SCOPE.clear, "context.global_scope")
    register_shared_cache(clear_default_plan_cache,
                          "datalog.default_plan_cache")


def clear_shared_caches() -> None:
    """Drop the ambient session's caches (automaton caches, EDB
    images, compiled plans).

    This is the cold-start hook of the benchmark harness and the batch
    runner (:mod:`repro.runner`), and a memory valve for long-running
    services.  It delegates to
    :meth:`repro.session.Session.clear_caches` on the ambient session;
    for the default session that also runs
    :func:`repro.automata.kernel.clear_registered_caches`, so caches
    registered by other layers are dropped too.
    """
    from ..context import current_session

    session = current_session()
    if session is None:  # mid-import fallback: clear the registry
        from ..automata.kernel import clear_registered_caches

        register_core_caches()
        clear_registered_caches()
        return
    session.clear_caches()


def warm_shared_caches(program: Program, goal: str, union=None) -> None:
    """Pre-build the ambient scope's per-program caches for
    *program*/*goal*.

    Constructs the shared enumerator and proof-tree automaton (and,
    when a union of conjunctive queries is given, the per-disjunct
    query automata) so subsequent decision calls start warm.  Used by
    :meth:`repro.session.Session.warm` and the batch runner's worker
    initializer: each
    :class:`~concurrent.futures.ProcessPoolExecutor` worker owns its
    own caches, which would otherwise start cold.
    """
    from .cq_automaton import shared_cq_automaton
    from .ptree_automaton import shared_ptree_automaton

    shared_enumerator(program)
    shared_ptree_automaton(program, goal)
    if union is not None:
        for theta in union:
            shared_cq_automaton(program, goal, theta)
