"""The query automaton ``A^theta(Q, Pi)`` of Proposition 5.10.

``A^theta`` runs on proof trees and accepts exactly those admitting a
strong containment mapping from the conjunctive query theta
(Definition 5.4).  A state is a triple

    (goal atom, beta, M)

where *beta* is the set of theta-atoms not yet mapped into the tree and
*M* is a partial mapping from theta's variables into the term space
recording the images committed so far.  Reading a node label
``(alpha, rho)``:

1. some subset beta' of beta is mapped into the EDB atoms of rho's
   body, consistently with M (producing M1 = M + images);
2. the remaining atoms are partitioned among the node's IDB children,
   subject to the paper's side conditions: a variable of an unmapped
   atom that is already in the domain of the mapping must have its
   image among the arguments of every child atom it is sent through
   (condition 4), and two children may share a variable only when the
   variable is mapped and its image occurs in both child atoms
   (condition 3) -- which forces the automaton to *guess* images for
   unmapped variables split across children;
3. a leaf label requires beta to be mapped away entirely.

The state space is exponential in |Pi| + |theta|; the class is lazy and
only materializes states reachable during the containment search.

Implementation note (documented in DESIGN.md): the mapping component is
restricted to variables still occurring in unmapped atoms.  Transitions
consult M only on such variables, so the restriction merges states with
identical future behaviour and preserves the recognized tree language.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..cq.query import ConjunctiveQuery
from ..datalog.atoms import Atom
from ..datalog.errors import ValidationError
from ..datalog.program import Program
from ..datalog.terms import Term, Variable, is_variable
from .instances import Label

MappingItems = FrozenSet[Tuple[Variable, Term]]


@dataclass(frozen=True)
class CQState:
    """A state ``(goal atom, unmapped theta-atoms, partial mapping)``.

    ``beta`` holds indices into the query's body (index-based so that
    repeated atoms in theta are tracked as distinct obligations);
    ``mapping`` is a frozen set of (variable, image) pairs.
    """

    atom: Atom
    beta: FrozenSet[int]
    mapping: MappingItems

    def mapping_dict(self) -> Dict[Variable, Term]:
        return dict(self.mapping)


class CQAutomaton:
    """Lazy ``A^theta(Q, Pi)`` for one conjunctive query theta."""

    def __init__(self, program: Program, goal: str, theta: ConjunctiveQuery):
        program.require_goal(goal)
        for atom in theta.body:
            if atom.predicate in program.idb_predicates:
                raise ValidationError(
                    f"containment query atom {atom} uses IDB predicate "
                    f"{atom.predicate!r}; queries must be over EDB predicates"
                )
        if theta.arity != program.arity[goal]:
            raise ValidationError(
                f"query arity {theta.arity} differs from goal arity "
                f"{program.arity[goal]}"
            )
        self.program = program
        self.goal = goal
        self.theta = theta
        self._atoms: Tuple[Atom, ...] = tuple(theta.body)
        self._atom_vars: Tuple[FrozenSet[Variable], ...] = tuple(
            atom.variable_set() for atom in self._atoms
        )

    # ------------------------------------------------------------------
    # Start states (one per proof-tree root atom).
    # ------------------------------------------------------------------

    def initial_state(self, root_atom: Atom) -> Optional[CQState]:
        """The start state ``(Q(s), theta, M_theta_s)`` for one root
        atom, or None when theta's head cannot map onto it (repeated
        head variables or head constants that the root atom does not
        realize)."""
        head = self.theta.head
        if head.arity != root_atom.arity:
            return None
        seed: Dict[Variable, Term] = {}
        for term, target in zip(head.args, root_atom.args):
            if is_variable(term):
                known = seed.get(term)
                if known is None:
                    seed[term] = target
                elif known != target:
                    return None
            elif term != target:
                return None
        beta = frozenset(range(len(self._atoms)))
        return CQState(root_atom, beta, self._restrict(seed, beta))

    def _restrict(self, mapping: Dict[Variable, Term], beta: FrozenSet[int]) -> MappingItems:
        """Keep only images of variables still occurring in beta."""
        live: Set[Variable] = set()
        for index in beta:
            live.update(self._atom_vars[index])
        return frozenset((v, t) for v, t in mapping.items() if v in live)

    # ------------------------------------------------------------------
    # Transitions.
    # ------------------------------------------------------------------

    def _map_atom_options(self, index: int, label: Label,
                          mapping: Dict[Variable, Term]) -> Iterator[Dict[Variable, Term]]:
        """Ways to map theta-atom *index* into the EDB atoms of the
        label, each yielding the extended mapping."""
        atom = self._atoms[index]
        for target in label.edb_atoms:
            if target.predicate != atom.predicate or target.arity != atom.arity:
                continue
            extended = dict(mapping)
            ok = True
            for term, image in zip(atom.args, target.args):
                if is_variable(term):
                    known = extended.get(term)
                    if known is None:
                        extended[term] = image
                    elif known != image:
                        ok = False
                        break
                elif term != image:
                    ok = False
                    break
            if ok:
                yield extended

    def _partitions(self, beta: Sequence[int], label: Label,
                    mapping: Dict[Variable, Term]) -> Iterator[Tuple[FrozenSet[int], Dict[Variable, Term]]]:
        """Enumerate (remaining atoms, M1) after mapping a subset of
        beta into the label's EDB atoms (step 1 of the transition)."""
        beta = sorted(beta)

        def walk(position: int, current: Dict[Variable, Term],
                 deferred: List[int]) -> Iterator[Tuple[FrozenSet[int], Dict[Variable, Term]]]:
            if position == len(beta):
                yield frozenset(deferred), current
                return
            index = beta[position]
            # Option 1: defer the atom to the children.
            yield from walk(position + 1, current, deferred + [index])
            # Option 2: map it into this node's EDB atoms now.
            for extended in self._map_atom_options(index, label, current):
                yield from walk(position + 1, extended, deferred)

        yield from walk(0, dict(mapping), [])

    def successors(self, state: CQState, label: Label) -> Iterator[Tuple[CQState, ...]]:
        """All transition tuples of child states on *label*.

        For a leaf label the only possible result is the empty tuple
        (acceptance); for an internal label each tuple has one state
        per IDB child atom.  Duplicates are suppressed.
        """
        if state.atom != label.atom:
            return
        seen: Set[Tuple[CQState, ...]] = set()
        children = label.idb_atoms
        child_arg_sets = [frozenset(child.args) for child in children]
        for rest, mapping1 in self._partitions(state.beta, label, state.mapping_dict()):
            if label.is_leaf():
                if not rest:
                    if () not in seen:
                        seen.add(())
                        yield ()
                continue
            rest_list = sorted(rest)
            for assignment in product(range(len(children)), repeat=len(rest_list)):
                placement: Dict[int, int] = dict(zip(rest_list, assignment))
                guesses = self._required_guesses(
                    placement, mapping1, child_arg_sets
                )
                if guesses is None:
                    continue
                for guess_values in product(*[cands for _, cands in guesses]):
                    mapping_final = dict(mapping1)
                    mapping_final.update(
                        (variable, value)
                        for (variable, _), value in zip(guesses, guess_values)
                    )
                    tuple_ = self._child_states(children, placement, mapping_final)
                    if tuple_ not in seen:
                        seen.add(tuple_)
                        yield tuple_

    def _required_guesses(self, placement: Dict[int, int],
                          mapping1: Dict[Variable, Term],
                          child_arg_sets: List[FrozenSet[Term]]):
        """Check conditions 3/4 for an atom->child assignment.

        Returns a list of ``(variable, candidate images)`` for unmapped
        variables spanning several children (ordered deterministically),
        or None when the assignment is infeasible.
        """
        spans: Dict[Variable, Set[int]] = {}
        for index, child in placement.items():
            for variable in self._atom_vars[index]:
                spans.setdefault(variable, set()).add(child)
        guesses: List[Tuple[Variable, Tuple[Term, ...]]] = []
        for variable in sorted(spans, key=lambda v: v.name):
            children_of = spans[variable]
            image = mapping1.get(variable)
            if image is not None:
                # Condition 4: the committed image must flow through
                # every child atom the variable is sent into.
                if any(image not in child_arg_sets[j] for j in children_of):
                    return None
            elif len(children_of) > 1:
                # Condition 3: an unmapped variable split across
                # children must be given an image lying in all of them.
                candidates: Set[Term] = set.intersection(
                    *[set(child_arg_sets[j]) for j in children_of]
                )
                if not candidates:
                    return None
                guesses.append(
                    (variable, tuple(sorted(candidates, key=repr)))
                )
        return guesses

    def _child_states(self, children: Tuple[Atom, ...],
                      placement: Dict[int, int],
                      mapping_final: Dict[Variable, Term]) -> Tuple[CQState, ...]:
        per_child: List[Set[int]] = [set() for _ in children]
        for index, child in placement.items():
            per_child[child].add(index)
        states: List[CQState] = []
        for child_atom, beta in zip(children, per_child):
            beta_frozen = frozenset(beta)
            states.append(
                CQState(child_atom, beta_frozen, self._restrict(mapping_final, beta_frozen))
            )
        return tuple(states)

    def accepts_leaf(self, state: CQState, label: Label) -> bool:
        """Leaf acceptance: beta maps away entirely into the label."""
        if not label.is_leaf():
            return False
        return any(True for _ in self.successors(state, label))
