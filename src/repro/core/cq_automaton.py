"""The query automaton ``A^theta(Q, Pi)`` of Proposition 5.10.

``A^theta`` runs on proof trees and accepts exactly those admitting a
strong containment mapping from the conjunctive query theta
(Definition 5.4).  A state is a triple

    (goal atom, beta, M)

where *beta* is the set of theta-atoms not yet mapped into the tree and
*M* is a partial mapping from theta's variables into the term space
recording the images committed so far.  Reading a node label
``(alpha, rho)``:

1. some subset beta' of beta is mapped into the EDB atoms of rho's
   body, consistently with M (producing M1 = M + images);
2. the remaining atoms are partitioned among the node's IDB children,
   subject to the paper's side conditions: a variable of an unmapped
   atom that is already in the domain of the mapping must have its
   image among the arguments of every child atom it is sent through
   (condition 4), and two children may share a variable only when the
   variable is mapped and its image occurs in both child atoms
   (condition 3) -- which forces the automaton to *guess* images for
   unmapped variables split across children;
3. a leaf label requires beta to be mapped away entirely.

The state space is exponential in |Pi| + |theta|; the class is lazy and
only materializes states reachable during the containment search.

Implementation note (documented in DESIGN.md): the mapping component is
restricted to variables still occurring in unmapped atoms.  Transitions
consult M only on such variables, so the restriction merges states with
identical future behaviour and preserves the recognized tree language.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..context import current_scope
from ..cq.query import ConjunctiveQuery
from ..datalog.atoms import Atom
from ..datalog.errors import ValidationError
from ..datalog.program import Program
from ..datalog.terms import Term, Variable, is_variable
from .instances import Label

MappingItems = FrozenSet[Tuple[Variable, Term]]


@dataclass(frozen=True)
class CQState:
    """A state ``(goal atom, unmapped theta-atoms, partial mapping)``.

    ``beta`` holds indices into the query's body (index-based so that
    repeated atoms in theta are tracked as distinct obligations);
    ``mapping`` is a frozen set of (variable, image) pairs.

    States are small and extremely hot (every profile subset holds
    them), so the class is slotted and its hash -- over an atom, an
    int frozenset, and a pair frozenset -- is computed once and cached.
    :class:`CQAutomaton` additionally hash-conses the states it
    creates, so identical states are usually the *same* object and
    equality short-circuits on identity inside dict/set probes.
    """

    __slots__ = ("atom", "beta", "mapping", "_hash")

    atom: Atom
    beta: FrozenSet[int]
    mapping: MappingItems

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            value = hash((self.atom, self.beta, self.mapping))
            object.__setattr__(self, "_hash", value)
            return value

    # Explicit pickle support (mirrors Label): the default slot-state
    # protocol setattr()s into a frozen dataclass, and the cached
    # ``_hash`` is process-local (PYTHONHASHSEED) so it must be
    # recomputed after a snapshot restore, not carried.
    def __getstate__(self):
        return (self.atom, self.beta, self.mapping)

    def __setstate__(self, state):
        for name, value in zip(("atom", "beta", "mapping"), state):
            object.__setattr__(self, name, value)

    def mapping_dict(self) -> Dict[Variable, Term]:
        return dict(self.mapping)


class CQAutomaton:
    """Lazy ``A^theta(Q, Pi)`` for one conjunctive query theta."""

    def __init__(self, program: Program, goal: str, theta: ConjunctiveQuery):
        program.require_goal(goal)
        for atom in theta.body:
            if atom.predicate in program.idb_predicates:
                raise ValidationError(
                    f"containment query atom {atom} uses IDB predicate "
                    f"{atom.predicate!r}; queries must be over EDB predicates"
                )
        if theta.arity != program.arity[goal]:
            raise ValidationError(
                f"query arity {theta.arity} differs from goal arity "
                f"{program.arity[goal]}"
            )
        self.program = program
        self.goal = goal
        self.theta = theta
        self._atoms: Tuple[Atom, ...] = tuple(theta.body)
        self._atom_vars: Tuple[FrozenSet[Variable], ...] = tuple(
            atom.variable_set() for atom in self._atoms
        )
        # Hash-consed states and memoized per-(state, label) successor
        # tuples: every decision procedure above this layer re-asks the
        # same questions, so both caches are shared automaton-wide.
        self._state_intern: Dict[Tuple[Atom, FrozenSet[int], MappingItems], CQState] = {}
        self._successor_cache: Dict[Tuple[CQState, Label], Tuple[Tuple[CQState, ...], ...]] = {}
        # Per-label compiled data ((predicate, arity)-indexed EDB atoms
        # and child argument sets) and per-beta live-variable sets; the
        # enumerator reuses label objects, so both amortize globally.
        self._label_cache: Dict[Label, Tuple[Dict, Tuple[FrozenSet[Term], ...]]] = {}
        self._live_cache: Dict[FrozenSet[int], FrozenSet[Variable]] = {}
        self._atom_keys: Tuple[Tuple[str, int], ...] = tuple(
            (atom.predicate, atom.arity) for atom in self._atoms
        )

    def _label_info(self, label: Label) -> Tuple[Dict, Tuple[FrozenSet[Term], ...]]:
        info = self._label_cache.get(label)
        if info is None:
            edb_index: Dict[Tuple[str, int], List[Tuple[Term, ...]]] = {}
            for target in label.edb_atoms:
                edb_index.setdefault(
                    (target.predicate, target.arity), []
                ).append(target.args)
            child_arg_sets = tuple(
                frozenset(child.args) for child in label.idb_atoms
            )
            info = (edb_index, child_arg_sets)
            self._label_cache[label] = info
        return info

    def _make_state(self, atom: Atom, beta: FrozenSet[int],
                    mapping: MappingItems) -> CQState:
        """The canonical (hash-consed) state with these components."""
        key = (atom, beta, mapping)
        state = self._state_intern.get(key)
        if state is None:
            state = CQState(atom, beta, mapping)
            self._state_intern[key] = state
        return state

    # ------------------------------------------------------------------
    # Start states (one per proof-tree root atom).
    # ------------------------------------------------------------------

    def initial_state(self, root_atom: Atom) -> Optional[CQState]:
        """The start state ``(Q(s), theta, M_theta_s)`` for one root
        atom, or None when theta's head cannot map onto it (repeated
        head variables or head constants that the root atom does not
        realize)."""
        head = self.theta.head
        if head.arity != root_atom.arity:
            return None
        seed: Dict[Variable, Term] = {}
        for term, target in zip(head.args, root_atom.args):
            if is_variable(term):
                known = seed.get(term)
                if known is None:
                    seed[term] = target
                elif known != target:
                    return None
            elif term != target:
                return None
        beta = frozenset(range(len(self._atoms)))
        return self._make_state(root_atom, beta, self._restrict(seed, beta))

    def _live_vars(self, beta: FrozenSet[int]) -> FrozenSet[Variable]:
        """Variables still occurring in some unmapped atom (cached)."""
        live = self._live_cache.get(beta)
        if live is None:
            collected: Set[Variable] = set()
            for index in beta:
                collected.update(self._atom_vars[index])
            live = frozenset(collected)
            self._live_cache[beta] = live
        return live

    def _restrict(self, mapping: Dict[Variable, Term], beta: FrozenSet[int]) -> MappingItems:
        """Keep only images of variables still occurring in beta."""
        live = self._live_vars(beta)
        return frozenset((v, t) for v, t in mapping.items() if v in live)

    # ------------------------------------------------------------------
    # Transitions.
    # ------------------------------------------------------------------

    def _map_atom_options(self, index: int, edb_index: Dict,
                          mapping: Dict[Variable, Term]) -> Iterator[Dict[Variable, Term]]:
        """Ways to map theta-atom *index* into the EDB atoms of the
        label, each yielding the extended mapping."""
        atom_args = self._atoms[index].args
        for target_args in edb_index.get(self._atom_keys[index], ()):
            extended = dict(mapping)
            ok = True
            for term, image in zip(atom_args, target_args):
                if is_variable(term):
                    known = extended.get(term)
                    if known is None:
                        extended[term] = image
                    elif known != image:
                        ok = False
                        break
                elif term != image:
                    ok = False
                    break
            if ok:
                yield extended

    def _partitions(self, beta: Sequence[int], edb_index: Dict,
                    mapping: Dict[Variable, Term],
                    leaf: bool = False) -> Iterator[Tuple[FrozenSet[int], Dict[Variable, Term]]]:
        """Enumerate (remaining atoms, M1) after mapping a subset of
        beta into the label's EDB atoms (step 1 of the transition).

        With ``leaf`` the defer branch is pruned: a leaf label accepts
        only when beta maps away entirely, so partitions with deferred
        atoms would be discarded by the caller anyway.
        """
        beta = sorted(beta)

        def walk(position: int, current: Dict[Variable, Term],
                 deferred: List[int]) -> Iterator[Tuple[FrozenSet[int], Dict[Variable, Term]]]:
            if position == len(beta):
                yield frozenset(deferred), current
                return
            index = beta[position]
            # Option 1: defer the atom to the children.
            if not leaf:
                yield from walk(position + 1, current, deferred + [index])
            # Option 2: map it into this node's EDB atoms now.
            for extended in self._map_atom_options(index, edb_index, current):
                yield from walk(position + 1, extended, deferred)

        yield from walk(0, dict(mapping), [])

    def successors(self, state: CQState, label: Label) -> Iterator[Tuple[CQState, ...]]:
        """All transition tuples of child states on *label*.

        For a leaf label the only possible result is the empty tuple
        (acceptance); for an internal label each tuple has one state
        per IDB child atom.  Duplicates are suppressed.
        """
        if state.atom != label.atom:
            return
        edb_index, child_arg_sets = self._label_info(label)
        if label.is_leaf():
            for _rest, _mapping in self._partitions(
                state.beta, edb_index, state.mapping_dict(), leaf=True
            ):
                yield ()
                return
            return
        seen: Set[Tuple[CQState, ...]] = set()
        children = label.idb_atoms
        for rest, mapping1 in self._partitions(state.beta, edb_index,
                                               state.mapping_dict()):
            rest_list = sorted(rest)
            for assignment in product(range(len(children)), repeat=len(rest_list)):
                placement: Dict[int, int] = dict(zip(rest_list, assignment))
                guesses = self._required_guesses(
                    placement, mapping1, child_arg_sets
                )
                if guesses is None:
                    continue
                for guess_values in product(*[cands for _, cands in guesses]):
                    mapping_final = dict(mapping1)
                    mapping_final.update(
                        (variable, value)
                        for (variable, _), value in zip(guesses, guess_values)
                    )
                    tuple_ = self._child_states(children, placement, mapping_final)
                    if tuple_ not in seen:
                        seen.add(tuple_)
                        yield tuple_

    def _required_guesses(self, placement: Dict[int, int],
                          mapping1: Dict[Variable, Term],
                          child_arg_sets: List[FrozenSet[Term]]):
        """Check conditions 3/4 for an atom->child assignment.

        Returns a list of ``(variable, candidate images)`` for unmapped
        variables spanning several children (ordered deterministically),
        or None when the assignment is infeasible.
        """
        spans: Dict[Variable, Set[int]] = {}
        for index, child in placement.items():
            for variable in self._atom_vars[index]:
                spans.setdefault(variable, set()).add(child)
        guesses: List[Tuple[Variable, Tuple[Term, ...]]] = []
        for variable in sorted(spans, key=lambda v: v.name):
            children_of = spans[variable]
            image = mapping1.get(variable)
            if image is not None:
                # Condition 4: the committed image must flow through
                # every child atom the variable is sent into.
                if any(image not in child_arg_sets[j] for j in children_of):
                    return None
            elif len(children_of) > 1:
                # Condition 3: an unmapped variable split across
                # children must be given an image lying in all of them.
                candidates: Set[Term] = set.intersection(
                    *[set(child_arg_sets[j]) for j in children_of]
                )
                if not candidates:
                    return None
                guesses.append(
                    (variable, tuple(sorted(candidates, key=repr)))
                )
        return guesses

    def _child_states(self, children: Tuple[Atom, ...],
                      placement: Dict[int, int],
                      mapping_final: Dict[Variable, Term]) -> Tuple[CQState, ...]:
        per_child: List[Set[int]] = [set() for _ in children]
        for index, child in placement.items():
            per_child[child].add(index)
        states: List[CQState] = []
        for child_atom, beta in zip(children, per_child):
            beta_frozen = frozenset(beta)
            states.append(
                self._make_state(
                    child_atom, beta_frozen,
                    self._restrict(mapping_final, beta_frozen),
                )
            )
        return tuple(states)

    def successors_cached(self, state: CQState, label: Label) -> Tuple[Tuple[CQState, ...], ...]:
        """Memoized, materialized ``successors``.

        The transition relation of ``A^theta`` depends only on
        ``(state, label)``; enumerating it walks the exponential
        partition/guess space, so every caller above this layer (the
        union automaton, the linear word pathway, the bitset profile
        fixpoint) should go through this cache.
        """
        key = (state, label)
        cached = self._successor_cache.get(key)
        if cached is None:
            cached = tuple(self.successors(state, label))
            self._successor_cache[key] = cached
        return cached

    def accepts_leaf(self, state: CQState, label: Label) -> bool:
        """Leaf acceptance: beta maps away entirely into the label."""
        if not label.is_leaf():
            return False
        return bool(self.successors_cached(state, label))


def shared_cq_automaton(program: Program, goal: str,
                        theta: ConjunctiveQuery) -> CQAutomaton:
    """The ambient cache scope's query automaton per
    (program, goal, theta).

    Expansion unions grow monotonically with the probed depth, so the
    boundedness search and repeated containment calls keep re-creating
    automata for the same disjuncts; sharing them also shares their
    hash-consed states and successor caches.  Scoped to the ambient
    session (:mod:`repro.context`): concurrent sessions build their
    own instances, the default session shares process-wide.
    """
    return current_scope().memo(
        "core.cq_automaton", (program, goal, theta),
        lambda: CQAutomaton(program, goal, theta), limit=512,
    )
