"""Deciding ``Pi contained-in union of theta_i`` (Theorems 5.11/5.12).

By Theorem 5.11, containment holds iff

    T(A^ptrees(Q, Pi))  subseteq  union_i T(A^theta_i(Q, Pi)).

Both automata are exponential in the input, so this module never
materializes them.  The tree-automaton containment is decided by a
bottom-up *profile* fixpoint:

* first the union automaton ``B = disjoint-union A^theta_i`` is closed
  forward (top-down) from its start states, yielding the finite set of
  live B-states and a per-state transition table;
* then profiles ``(goal atom, U)`` are derived bottom-up, where U is
  the exact set of live B-states accepting the witness proof tree
  rooted at that goal atom.  A profile whose goal atom is a start state
  of A^ptrees and whose U misses every start state of B certifies
  non-containment, and its witness proof tree is returned.

Antichain pruning keeps only minimal U per goal atom: the profile
successor map is monotone in U and the failure condition is downward
closed, so pruning preserves completeness (ablation: ``use_antichain``).

The fixpoint runs on the bitset kernel by default: live B-states are
interned to dense ids after the forward closure, every U is an int
bitmask, the per-``(goal atom, label)`` successor structure is
compiled to id tuples once, and profile images are memoized per child
profile combination.  The frozenset implementation is kept as the
reference path behind :class:`~repro.automata.kernel.KernelConfig`;
both paths sweep the same transitions in the same order and return
identical verdicts.

This procedure realizes the doubly exponential upper bound of
Theorem 5.12; the matching lower bound (Section 5.3) shows the blowup
is unavoidable in general.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..automata.kernel import Interner, KernelConfig, resolve_kernel, thaw_witness
from ..budget import check_deadline
from ..cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..datalog.atoms import Atom
from ..datalog.program import Program
from ..trees.expansion import ExpansionTree
from .cq_automaton import CQAutomaton, CQState, shared_cq_automaton
from .instances import Label
from .ptree_automaton import PTreeAutomaton, shared_ptree_automaton

BState = Tuple[int, CQState]  # (disjunct index, CQ-automaton state)


@dataclass
class ContainmentResult:
    """Outcome of a containment decision.

    ``contained`` is the verdict; when False, ``witness`` is a proof
    tree in ptrees(Q, Pi) admitting no strong containment mapping from
    any disjunct (Theorem 5.8's certificate).  ``stats`` carries search
    metrics for the benchmarks.
    """

    contained: bool
    witness: Optional[ExpansionTree] = None
    stats: Dict[str, int] = field(default_factory=dict)

    def __bool__(self):
        return self.contained


class _UnionAutomaton:
    """The disjoint union of the per-disjunct query automata, closed
    forward from its start states and cached per (state, label)."""

    def __init__(self, program: Program, goal: str,
                 union: UnionOfConjunctiveQueries):
        self.automata = [shared_cq_automaton(program, goal, theta) for theta in union]
        self._successors: Dict[Tuple[BState, Label], Tuple[Tuple[BState, ...], ...]] = {}
        self._by_atom: Dict[Atom, List[BState]] = {}
        self._known: Set[BState] = set()

    def initial_states(self, root_atom: Atom) -> Tuple[BState, ...]:
        states = []
        for index, automaton in enumerate(self.automata):
            state = automaton.initial_state(root_atom)
            if state is not None:
                states.append((index, state))
        return tuple(states)

    def register(self, state: BState) -> None:
        if state not in self._known:
            self._known.add(state)
            self._by_atom.setdefault(state[1].atom, []).append(state)

    def states_for_atom(self, atom: Atom) -> List[BState]:
        return self._by_atom.get(atom, [])

    def successors(self, state: BState, label: Label) -> Tuple[Tuple[BState, ...], ...]:
        key = (state, label)
        cached = self._successors.get(key)
        if cached is not None:
            return cached
        index, cq_state = state
        tuples = tuple(
            tuple((index, child) for child in children)
            for children in self.automata[index].successors_cached(cq_state, label)
        )
        self._successors[key] = tuples
        for children in tuples:
            for child in children:
                self.register(child)
        return tuples

    def close(self, ptrees: PTreeAutomaton) -> None:
        """Forward (top-down) closure of the live B-state space over
        every label reachable in the proof-tree automaton."""
        frontier: List[BState] = []
        for atom in ptrees.initial_atoms():
            for state in self.initial_states(atom):
                if state not in self._known:
                    self.register(state)
                    frontier.append(state)
        processed: Set[BState] = set()
        while frontier:
            check_deadline()
            state = frontier.pop()
            if state in processed:
                continue
            processed.add(state)
            for label in ptrees.enumerator.labels_for(state[1].atom):
                for children in self.successors(state, label):
                    for child in children:
                        if child not in processed:
                            frontier.append(child)

    def live_count(self) -> int:
        return len(self._known)


class _ProfileChains:
    """Per-goal-atom antichains of (U, witness) profiles (reference
    path; U is a frozenset of B-states)."""

    def __init__(self, use_antichain: bool):
        self._chains: Dict[Atom, List[Tuple[FrozenSet[BState], ExpansionTree, int]]] = {}
        self._use_antichain = use_antichain

    def entries(self, atom: Atom):
        return self._chains.get(atom, [])

    def insert(self, atom: Atom, subset: FrozenSet[BState],
               witness: ExpansionTree, generation: int) -> bool:
        chain = self._chains.setdefault(atom, [])
        if self._use_antichain:
            if any(known <= subset for known, _, _ in chain):
                return False
            chain[:] = [entry for entry in chain if not subset <= entry[0]]
        else:
            if any(known == subset for known, _, _ in chain):
                return False
        chain.append((subset, witness, generation))
        return True

    def total(self) -> int:
        return sum(len(chain) for chain in self._chains.values())


def datalog_contained_in_ucq(program: Program, goal: str,
                             union: UnionOfConjunctiveQueries,
                             use_antichain: bool = True,
                             kernel: Optional[KernelConfig] = None) -> ContainmentResult:
    """Decide ``Q_Pi(D) subseteq union(D)`` for all D (Theorem 5.12).

    Complete and sound for arbitrary (recursive) programs; runs in time
    doubly exponential in the input in the worst case.  ``kernel``
    selects the bitset kernel (default) or the frozenset reference.
    """
    config = resolve_kernel(kernel)
    ptrees = shared_ptree_automaton(program, goal)
    bunion = _UnionAutomaton(program, goal, union)
    bunion.close(ptrees)
    if config.bitset:
        return _profile_search_bitset(ptrees, bunion, goal, use_antichain,
                                      config.memoize)
    return _profile_search_reference(ptrees, bunion, goal, use_antichain)


def _base_stats(ptrees: PTreeAutomaton, bunion: _UnionAutomaton,
                goal_transitions: Sequence) -> Dict[str, int]:
    return {
        "live_b_states": bunion.live_count(),
        "ptree_states": len(ptrees.reachable_goal_atoms()),
        "ptree_transitions": len(goal_transitions),
        "rounds": 0,
        "profiles": 0,
    }


def _thaw_expansion(node: Tuple) -> ExpansionTree:
    """Build the ExpansionTree of a lazy ``(label, children)`` witness."""
    return thaw_witness(
        node, lambda label, children: ExpansionTree(label.atom, label.rule, children)
    )


def _profile_search_bitset(ptrees: PTreeAutomaton, bunion: _UnionAutomaton,
                           goal: str, use_antichain: bool,
                           memoize: bool) -> ContainmentResult:
    goal_transitions = ptrees.transitions_list()
    stats = _base_stats(ptrees, bunion, goal_transitions)

    interner = Interner()

    # Per-(goal atom, label) successor structure compiled to dense ids:
    # [(B-state bit, (child-id tuple, ...))], plus the profile-image
    # memo keyed by the child profile masks.
    succ_index: Dict[Tuple[Atom, Label], Tuple[List[Tuple[int, Tuple[Tuple[int, ...], ...]]], Dict]] = {}

    def edges_for(atom: Atom, label: Label):
        key = (atom, label)
        cached = succ_index.get(key)
        if cached is None:
            edges: List[Tuple[int, Tuple[Tuple[int, ...], ...]]] = []
            for q in bunion.states_for_atom(atom):
                tuples = bunion.successors(q, label)
                edges.append((
                    1 << interner.intern(q),
                    tuple(
                        tuple(interner.intern(child) for child in children)
                        for children in tuples
                    ),
                ))
            cached = (edges, {})
            succ_index[key] = cached
        return cached

    def accepting_mask(atom: Atom, label: Label,
                       child_masks: Tuple[int, ...]) -> int:
        edges, memo = edges_for(atom, label)
        if memoize:
            cached = memo.get(child_masks)
            if cached is not None:
                return cached
        mask = 0
        for bit, id_tuples in edges:
            if mask & bit:
                continue
            for childs in id_tuples:
                for cid, u in zip(childs, child_masks):
                    if not (u >> cid) & 1:
                        break
                else:
                    mask |= bit
                    break
        if memoize:
            memo[child_masks] = mask
        return mask

    initial_masks: Dict[Atom, int] = {}

    def is_counterexample(atom: Atom, mask: int) -> bool:
        if atom.predicate != goal:
            return False
        initial = initial_masks.get(atom)
        if initial is None:
            initial = 0
            for q in bunion.initial_states(atom):
                initial |= 1 << interner.intern(q)
            initial_masks[atom] = initial
        return not (mask & initial)

    # Per-goal-atom chains of (U mask, lazy witness, generation).
    chains: Dict[Atom, List[Tuple[int, Tuple, int]]] = {}

    def insert(atom: Atom, mask: int, witness: Tuple, generation: int) -> bool:
        chain = chains.get(atom)
        if chain is None:
            chains[atom] = [(mask, witness, generation)]
            return True
        if use_antichain:
            for known, _, _ in chain:
                if known & mask == known:
                    return False
            chain[:] = [entry for entry in chain if mask & entry[0] != mask]
        else:
            for known, _, _ in chain:
                if known == mask:
                    return False
        chain.append((mask, witness, generation))
        return True

    generation = 0
    while True:
        check_deadline()
        generation += 1
        stats["rounds"] = generation
        changed = False
        for atom, label, children in goal_transitions:
            if children:
                options = [chains.get(child, ()) for child in children]
                if any(not opts for opts in options):
                    continue
                combos = _fresh_combos(options, generation)
            else:
                combos = [()] if generation == 1 else []
            for combo in combos:
                child_masks = tuple(entry[0] for entry in combo)
                witness = (label, tuple(entry[1] for entry in combo))
                mask = accepting_mask(atom, label, child_masks)
                if is_counterexample(atom, mask):
                    stats["profiles"] = sum(len(c) for c in chains.values())
                    return ContainmentResult(False, _thaw_expansion(witness), stats)
                if insert(atom, mask, witness, generation):
                    changed = True
        if not changed:
            break
    stats["profiles"] = sum(len(c) for c in chains.values())
    return ContainmentResult(True, None, stats)


def _profile_search_reference(ptrees: PTreeAutomaton, bunion: _UnionAutomaton,
                              goal: str, use_antichain: bool) -> ContainmentResult:
    chains = _ProfileChains(use_antichain)
    goal_transitions = ptrees.transitions_list()
    stats = _base_stats(ptrees, bunion, goal_transitions)

    def accepting_b_states(atom: Atom, label: Label,
                           child_subsets: Tuple[FrozenSet[BState], ...]) -> FrozenSet[BState]:
        result: Set[BState] = set()
        for q in bunion.states_for_atom(atom):
            for children in bunion.successors(q, label):
                if len(children) != len(child_subsets):
                    continue
                if all(child in subset for child, subset in zip(children, child_subsets)):
                    result.add(q)
                    break
        return frozenset(result)

    def is_counterexample(atom: Atom, subset: FrozenSet[BState]) -> bool:
        if atom.predicate != goal:
            return False
        return not any(q in subset for q in bunion.initial_states(atom))

    generation = 0
    while True:
        check_deadline()
        generation += 1
        stats["rounds"] = generation
        changed = False
        for atom, label, children in goal_transitions:
            if children:
                options = [chains.entries(child) for child in children]
                if any(not opts for opts in options):
                    continue
                combos = _fresh_combos(options, generation)
            else:
                combos = [()] if generation == 1 else []
            for combo in combos:
                child_subsets = tuple(entry[0] for entry in combo)
                witness = ExpansionTree(
                    label.atom, label.rule, tuple(entry[1] for entry in combo)
                )
                subset = accepting_b_states(atom, label, child_subsets)
                if is_counterexample(atom, subset):
                    stats["profiles"] = chains.total()
                    return ContainmentResult(False, witness, stats)
                if chains.insert(atom, subset, witness, generation):
                    changed = True
        if not changed:
            break
    stats["profiles"] = chains.total()
    return ContainmentResult(True, None, stats)


def _fresh_combos(options: List[List[Tuple]], generation: int) -> Iterator[Tuple]:
    """Combinations of child profiles containing at least one profile
    from the previous generation (semi-naive round evaluation)."""
    previous = generation - 1
    for pivot in range(len(options)):
        before = [
            [entry for entry in opts if entry[2] < previous]
            for opts in options[:pivot]
        ]
        at = [entry for entry in options[pivot] if entry[2] == previous]
        after = [list(opts) for opts in options[pivot + 1 :]]
        pools = before + [at] + after
        if any(not pool for pool in pools):
            continue
        combo: List[Tuple] = []

        def walk(position: int):
            if position == len(pools):
                yield tuple(combo)
                return
            for entry in pools[position]:
                combo.append(entry)
                yield from walk(position + 1)
                combo.pop()

        yield from walk(0)


def datalog_contained_in_cq(program: Program, goal: str,
                            theta: ConjunctiveQuery,
                            use_antichain: bool = True,
                            kernel: Optional[KernelConfig] = None) -> ContainmentResult:
    """Containment in a single conjunctive query (Corollary 5.7)."""
    union = UnionOfConjunctiveQueries([theta], theta.arity)
    return datalog_contained_in_ucq(program, goal, union,
                                    use_antichain=use_antichain, kernel=kernel)
