"""A semi-decision procedure for boundedness.

The paper distinguishes its problem (equivalence to a *given*
nonrecursive program -- decidable, Theorem 6.5) from boundedness
(equivalence to *some* nonrecursive program -- undecidable [GMSV93]).
The decidable machinery still yields a useful semi-decision: Pi is
bounded with depth k iff Pi is equivalent to the union of its
expansions of height at most k, and that union is always contained in
Pi, so only the forward containment (Theorem 5.12) needs deciding.
Iterating k = 1, 2, ... certifies boundedness whenever it holds; the
procedure cannot certify unboundedness (no algorithm can), so it stops
at ``max_depth`` with verdict "unknown" -- unless the structural
shortcut below applies.

As a cheap sound check, :func:`decide_boundedness` first tries the
counterexample route: if for some k the truncation test fails with a
witness, the witness rules out depth-k boundedness and the search
continues deeper.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from time import perf_counter
from typing import Dict, Optional

from ..automata.kernel import KernelConfig
from ..cq.canonical import canonical_database
from ..cq.query import UnionOfConjunctiveQueries
from ..datalog.engine import Engine, evaluate
from ..datalog.errors import ValidationError
from ..datalog.program import Program
from ..datalog.unfold import expansion_union, expansions
from .containment import decide_containment_in_ucq


@dataclass
class BoundednessResult:
    """Outcome of the boundedness search.

    ``bounded`` is True / False / None (None = unknown: unbounded or
    bound exceeds ``max_depth``).  On success ``depth`` is the
    certified bound and ``witness_union`` the equivalent union of
    conjunctive queries (a nonrecursive rewriting of the program).
    """

    bounded: Optional[bool]
    depth: Optional[int] = None
    witness_union: Optional[UnionOfConjunctiveQueries] = None

    def __bool__(self):
        return bool(self.bounded)


def bounded_at_depth(program: Program, goal: str, depth: int,
                     method: str = "auto",
                     kernel: Optional[KernelConfig] = None) -> bool:
    """Is Pi equivalent to its expansions of height <= depth?

    Only the forward containment is checked; the union of expansions is
    contained in Pi by construction (Proposition 2.6).
    """
    union = expansion_union(program, goal, depth)
    if not union.disjuncts:
        # No expansion exists at all: the goal relation is empty, which
        # is trivially bounded.
        return True
    return decide_containment_in_ucq(program, goal, union, method=method,
                                     kernel=kernel).contained


_PROBE_LIMIT = 64        # cap on probed expansions per depth


def _engine_refutes_depth(program: Program, goal: str, depth: int,
                          union: UnionOfConjunctiveQueries,
                          engine: Optional[Engine]) -> bool:
    """The counterexample route, decided by the evaluation engine.

    An expansion of height beyond *depth* is itself contained in Pi
    (Proposition 2.6), so if its canonical database does not make the
    depth-*depth* union derive the frozen head, that expansion
    witnesses ``Pi not subseteq union`` and depth-*depth* boundedness
    is refuted without running the automata containment.  Sound only
    for safe programs (the caller guards).  The expansion stream is
    lazy, so probing stays cheap even for branching programs.
    """
    try:
        candidate = Program([theta.as_rule() for theta in union])
        probe = expansions(program, goal, depth + 1, exact_height=True)
        for theta in islice(probe, _PROBE_LIMIT):
            database, head_row = canonical_database(theta)
            result = evaluate(candidate, database, engine=engine)
            if head_row not in result.facts(goal):
                return True
    except ValidationError:
        # A probe that cannot be frozen proves nothing; fall through to
        # the automata containment.
        return False
    return False


def search_boundedness(program: Program, goal: str, max_depth: int = 4,
                       method: str = "auto",
                       engine: Optional[Engine] = None,
                       kernel: Optional[KernelConfig] = None,
                       timings: Optional[Dict[str, float]] = None,
                       stats: Optional[Dict[str, int]] = None) -> BoundednessResult:
    """The boundedness-search implementation (explicit configuration).

    When *timings* is a dict it accumulates ``probe_s`` (engine
    counterexample probes) and ``containment_s`` (automata
    containments); *stats* likewise collects ``depths_probed``,
    ``engine_refuted`` and ``containments_run``.
    """
    program.require_goal(goal)
    all_safe = all(rule.is_safe for rule in program.rules)
    # One-off candidate programs would churn the session's plan cache;
    # give the probes their own engine unless one was supplied.
    probe_engine = engine or Engine()
    probe_s = containment_s = 0.0
    depths_probed = engine_refuted = containments_run = 0

    def _finish(result: BoundednessResult) -> BoundednessResult:
        if timings is not None:
            timings["probe_s"] = round(probe_s, 6)
            timings["containment_s"] = round(containment_s, 6)
        if stats is not None:
            stats["depths_probed"] = depths_probed
            stats["engine_refuted"] = engine_refuted
            stats["containments_run"] = containments_run
        return result

    for depth in range(1, max_depth + 1):
        union = expansion_union(program, goal, depth)
        if not union.disjuncts:
            continue
        depths_probed += 1
        if all_safe:
            started = perf_counter()
            refuted = _engine_refutes_depth(program, goal, depth, union,
                                            probe_engine)
            probe_s += perf_counter() - started
            if refuted:
                engine_refuted += 1
                continue
        started = perf_counter()
        containments_run += 1
        contained = decide_containment_in_ucq(program, goal, union,
                                              method=method,
                                              kernel=kernel).contained
        containment_s += perf_counter() - started
        if contained:
            return _finish(BoundednessResult(bounded=True, depth=depth,
                                             witness_union=union))
    return _finish(BoundednessResult(bounded=None))


def decide_boundedness(program: Program, goal: str, max_depth: int = 4,
                       method: str = "auto",
                       engine: Optional[Engine] = None,
                       kernel: Optional[KernelConfig] = None) -> BoundednessResult:
    """Search for a boundedness certificate up to ``max_depth``.

    Returns ``bounded=True`` with the certified depth and the
    equivalent union when found; otherwise ``bounded=None`` (unknown --
    boundedness is undecidable in general [GMSV93], so absence of a
    certificate proves nothing).  Nonrecursive programs are bounded by
    their dependence-graph depth and always certified.

    For safe programs, each depth first runs the cheap counterexample
    route through the evaluation engine (*engine*, defaulting to the
    session's compiled one): deeper expansions whose canonical
    databases escape the candidate union refute the depth without
    touching the automata machinery.

    Delegates to the ambient :class:`repro.session.Session`
    (:meth:`~repro.session.Session.bounded`).
    """
    from ..session import current_session

    return current_session().bounded(program, goal, max_depth=max_depth,
                                     method=method, engine=engine,
                                     kernel=kernel).raw
