"""A semi-decision procedure for boundedness.

The paper distinguishes its problem (equivalence to a *given*
nonrecursive program -- decidable, Theorem 6.5) from boundedness
(equivalence to *some* nonrecursive program -- undecidable [GMSV93]).
The decidable machinery still yields a useful semi-decision: Pi is
bounded with depth k iff Pi is equivalent to the union of its
expansions of height at most k, and that union is always contained in
Pi, so only the forward containment (Theorem 5.12) needs deciding.
Iterating k = 1, 2, ... certifies boundedness whenever it holds; the
procedure cannot certify unboundedness (no algorithm can), so it stops
at ``max_depth`` with verdict "unknown" -- unless the structural
shortcut below applies.

As a cheap sound check, :func:`decide_boundedness` first tries the
counterexample route: if for some k the truncation test fails with a
witness, the witness rules out depth-k boundedness and the search
continues deeper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cq.query import UnionOfConjunctiveQueries
from ..datalog.program import Program
from ..datalog.unfold import expansion_union
from .containment import contained_in_ucq


@dataclass
class BoundednessResult:
    """Outcome of the boundedness search.

    ``bounded`` is True / False / None (None = unknown: unbounded or
    bound exceeds ``max_depth``).  On success ``depth`` is the
    certified bound and ``witness_union`` the equivalent union of
    conjunctive queries (a nonrecursive rewriting of the program).
    """

    bounded: Optional[bool]
    depth: Optional[int] = None
    witness_union: Optional[UnionOfConjunctiveQueries] = None

    def __bool__(self):
        return bool(self.bounded)


def bounded_at_depth(program: Program, goal: str, depth: int,
                     method: str = "auto") -> bool:
    """Is Pi equivalent to its expansions of height <= depth?

    Only the forward containment is checked; the union of expansions is
    contained in Pi by construction (Proposition 2.6).
    """
    union = expansion_union(program, goal, depth)
    if not union.disjuncts:
        # No expansion exists at all: the goal relation is empty, which
        # is trivially bounded.
        return True
    return contained_in_ucq(program, goal, union, method=method).contained


def decide_boundedness(program: Program, goal: str, max_depth: int = 4,
                       method: str = "auto") -> BoundednessResult:
    """Search for a boundedness certificate up to ``max_depth``.

    Returns ``bounded=True`` with the certified depth and the
    equivalent union when found; otherwise ``bounded=None`` (unknown --
    boundedness is undecidable in general [GMSV93], so absence of a
    certificate proves nothing).  Nonrecursive programs are bounded by
    their dependence-graph depth and always certified.
    """
    program.require_goal(goal)
    for depth in range(1, max_depth + 1):
        union = expansion_union(program, goal, depth)
        if not union.disjuncts:
            continue
        if contained_in_ucq(program, goal, union, method=method).contained:
            return BoundednessResult(bounded=True, depth=depth, witness_union=union)
    return BoundednessResult(bounded=None)
