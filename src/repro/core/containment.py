"""Public containment API (Theorems 5.12, 6.4 and the classical
reverse direction).

The four containment shapes appearing in the paper:

=====================================  ==============================
direction                              procedure
=====================================  ==============================
recursive Pi  in  CQ / UCQ             proof-tree automata
                                       (Theorem 5.12; 2EXPTIME)
recursive Pi  in  nonrecursive Pi'     unfold Pi' to a UCQ, then the
                                       above (Theorem 6.4; 3EXPTIME)
CQ / UCQ  in  recursive Pi             canonical database + bottom-up
                                       evaluation [CK86, Sa88b]
nonrecursive Pi'  in  recursive Pi     unfold Pi', then the above
=====================================  ==============================

Two layers live here.  The ``decide_*`` functions are the
implementations: they take explicit ``kernel=``/``engine=``
configuration and are what :class:`repro.session.Session` calls.  The
historical free functions (:func:`contained_in_ucq`,
:func:`cq_contained_in_datalog`, ...) are thin shims that delegate to
the ambient session -- same signatures, same return types, now
session-configured and thread-safe.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..automata.kernel import KernelConfig
from ..cq.canonical import canonical_database
from ..cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..datalog.database import Database
from ..datalog.engine import Engine, evaluate
from ..datalog.errors import ValidationError
from ..datalog.program import Program
from ..datalog.unfold import unfold_nonrecursive
from ..trees.proof import proof_tree_to_expansion_tree
from .tree_containment import ContainmentResult, datalog_contained_in_ucq
from .word_path import datalog_contained_in_ucq_linear, is_chain_program


def _session():
    from ..session import current_session

    return current_session()


# ----------------------------------------------------------------------
# Implementations (explicit configuration; called by the Session).
# ----------------------------------------------------------------------

def decide_containment_in_ucq(program: Program, goal: str,
                              union: UnionOfConjunctiveQueries,
                              method: str = "auto",
                              use_antichain: bool = True,
                              kernel: Optional[KernelConfig] = None) -> ContainmentResult:
    """Decide ``Q_Pi subseteq union`` (Theorem 5.12) -- the method
    dispatcher: ``"tree"`` forces the tree-automaton pathway,
    ``"word"`` the word-automaton pathway (chain-form programs only),
    ``"auto"`` picks the word pathway when available."""
    program.require_goal(goal)
    if method not in ("auto", "tree", "word"):
        raise ValidationError(f"unknown containment method {method!r}")
    if method == "word" or (method == "auto" and is_chain_program(program)):
        return datalog_contained_in_ucq_linear(
            program, goal, union, use_antichain=use_antichain, kernel=kernel
        )
    return datalog_contained_in_ucq(program, goal, union,
                                    use_antichain=use_antichain, kernel=kernel)


def decide_cq_in_datalog(theta: ConjunctiveQuery, program: Program,
                         goal: str,
                         engine: Optional[Engine] = None) -> bool:
    """Decide ``theta subseteq Q_Pi`` by the canonical-database test
    [CK86, Sa88b]: freeze theta's variables into constants, evaluate Pi
    bottom-up on the frozen body, and check that the frozen head is
    derived.

    Requires a safe theta (an unsafe query cannot be contained in a
    Datalog program under active-domain semantics unless its frozen
    witness is derived for every head instantiation, which the frozen
    test cannot certify); raises :class:`ValidationError` otherwise.
    """
    program.require_goal(goal)
    if not theta.is_safe:
        raise ValidationError(
            f"canonical-database test requires a safe query, got {theta}"
        )
    database, head_row = canonical_database(theta)
    result = evaluate(program, database, engine=engine)
    return head_row in result.facts(goal)


def decide_ucq_in_datalog(union: UnionOfConjunctiveQueries,
                          program: Program, goal: str,
                          engine: Optional[Engine] = None) -> bool:
    """Decide ``union subseteq Q_Pi`` disjunct-wise (Theorem 2.3)."""
    return all(decide_cq_in_datalog(theta, program, goal, engine=engine)
               for theta in union)


def decide_nonrecursive_in_datalog(nonrecursive: Program,
                                   nonrecursive_goal: str,
                                   program: Program, goal: str,
                                   engine: Optional[Engine] = None) -> bool:
    """Decide ``Q'_Pi' subseteq Q_Pi`` for nonrecursive Pi'."""
    union = unfold_nonrecursive(nonrecursive, nonrecursive_goal)
    return decide_ucq_in_datalog(union, program, goal, engine=engine)


# ----------------------------------------------------------------------
# The historical free functions: shims onto the ambient session.
# ----------------------------------------------------------------------

def contained_in_ucq(program: Program, goal: str,
                     union: UnionOfConjunctiveQueries,
                     method: str = "auto",
                     use_antichain: bool = True,
                     kernel: Optional[KernelConfig] = None) -> ContainmentResult:
    """Decide ``Q_Pi subseteq union`` (Theorem 5.12).

    Delegates to the ambient :class:`repro.session.Session`;
    ``kernel=None`` means the session's kernel.  ``method``: ``"tree"``
    forces the tree-automaton pathway, ``"word"`` the word-automaton
    pathway (chain-form programs only), ``"auto"`` picks the word
    pathway when available.
    """
    return _session().contains(program, goal, union, method=method,
                               use_antichain=use_antichain,
                               kernel=kernel).raw


def contained_in_cq(program: Program, goal: str, theta: ConjunctiveQuery,
                    method: str = "auto",
                    use_antichain: bool = True,
                    kernel: Optional[KernelConfig] = None) -> ContainmentResult:
    """Decide ``Q_Pi subseteq theta`` (Corollary 5.7)."""
    return _session().contains_cq(program, goal, theta, method=method,
                                  use_antichain=use_antichain,
                                  kernel=kernel).raw


def contained_in_nonrecursive(program: Program, goal: str,
                              nonrecursive: Program,
                              nonrecursive_goal: Optional[str] = None,
                              method: str = "auto",
                              kernel: Optional[KernelConfig] = None) -> ContainmentResult:
    """Decide ``Q_Pi subseteq Q'_Pi'`` for nonrecursive Pi'
    (Theorem 6.4): rewrite Pi' as a union of conjunctive queries (the
    potentially exponential step whose necessity Section 6 proves) and
    decide containment in the union."""
    return _session().contains_nonrecursive(
        program, goal, nonrecursive, nonrecursive_goal,
        method=method, kernel=kernel).raw


def cq_contained_in_datalog(theta: ConjunctiveQuery, program: Program,
                            goal: str,
                            engine: Optional[Engine] = None) -> bool:
    """Decide ``theta subseteq Q_Pi`` by the canonical-database test
    [CK86, Sa88b] (see :func:`decide_cq_in_datalog`); ``engine``
    overrides the ambient session's engine."""
    return _session().cq_contained(theta, program, goal, engine=engine).raw


def ucq_contained_in_datalog(union: UnionOfConjunctiveQueries,
                             program: Program, goal: str,
                             engine: Optional[Engine] = None) -> bool:
    """Decide ``union subseteq Q_Pi`` disjunct-wise (Theorem 2.3)."""
    return _session().ucq_contained(union, program, goal, engine=engine).raw


def nonrecursive_contained_in_datalog(nonrecursive: Program,
                                      nonrecursive_goal: str,
                                      program: Program, goal: str,
                                      engine: Optional[Engine] = None) -> bool:
    """Decide ``Q'_Pi' subseteq Q_Pi`` for nonrecursive Pi'."""
    return _session().nonrecursive_contained(
        nonrecursive, nonrecursive_goal, program, goal, engine=engine).raw


# ----------------------------------------------------------------------
# Counterexample extraction.
# ----------------------------------------------------------------------

def counterexample_database(result: ContainmentResult,
                            program: Program) -> Tuple[Database, Tuple]:
    """Turn a non-containment witness into a concrete database.

    The witness proof tree is renamed into an expansion tree
    (Proposition 5.5's renaming), its conjunctive query is frozen into
    a canonical database D, and the frozen head row is returned:
    running Pi on D derives the row, while the union does not produce
    it -- a machine-checkable refutation.  Accepts a containment or
    equivalence :class:`~repro.session.Decision` /
    :class:`~repro.core.equivalence.EquivalenceResult` too (the failed
    forward direction is the refuted containment).
    """
    unwrapped = getattr(result, "raw", result)
    if unwrapped is None:
        # A payload-stripped Decision (the shape the batch runner ships
        # across process boundaries): the witness is gone.
        raise ValidationError(
            "decision carries no witness payload (stripped for "
            "transport); re-run the containment in-process to extract "
            "a counterexample"
        )
    result = unwrapped
    if hasattr(result, "forward_witness"):  # an equivalence outcome
        result = ContainmentResult(contained=result.forward_holds,
                                   witness=result.forward_witness)
    if not hasattr(result, "contained"):  # e.g. a reverse-direction bool
        raise ValidationError(
            f"no proof-tree witness in {type(result).__name__!r} -- only "
            "forward (automata) containment outcomes carry one"
        )
    if result.contained or result.witness is None:
        raise ValidationError("containment holds; no counterexample exists")
    expansion = proof_tree_to_expansion_tree(result.witness)
    query = expansion.to_query(program)
    return canonical_database(query)
