"""Public containment API (Theorems 5.12, 6.4 and the classical
reverse direction).

The four containment shapes appearing in the paper:

=====================================  ==============================
direction                              procedure
=====================================  ==============================
recursive Pi  in  CQ / UCQ             proof-tree automata
                                       (Theorem 5.12; 2EXPTIME)
recursive Pi  in  nonrecursive Pi'     unfold Pi' to a UCQ, then the
                                       above (Theorem 6.4; 3EXPTIME)
CQ / UCQ  in  recursive Pi             canonical database + bottom-up
                                       evaluation [CK86, Sa88b]
nonrecursive Pi'  in  recursive Pi     unfold Pi', then the above
=====================================  ==============================
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..automata.kernel import KernelConfig
from ..cq.canonical import canonical_database
from ..cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..datalog.database import Database
from ..datalog.engine import Engine, evaluate
from ..datalog.errors import ValidationError
from ..datalog.program import Program
from ..datalog.unfold import unfold_nonrecursive
from ..trees.expansion import ExpansionTree
from ..trees.proof import proof_tree_to_expansion_tree
from .tree_containment import ContainmentResult, datalog_contained_in_ucq
from .word_path import datalog_contained_in_ucq_linear, is_chain_program


def contained_in_ucq(program: Program, goal: str,
                     union: UnionOfConjunctiveQueries,
                     method: str = "auto",
                     use_antichain: bool = True,
                     kernel: Optional[KernelConfig] = None) -> ContainmentResult:
    """Decide ``Q_Pi subseteq union`` (Theorem 5.12).

    ``method``: ``"tree"`` forces the tree-automaton pathway, ``"word"``
    the word-automaton pathway (chain-form programs only), ``"auto"``
    picks the word pathway when available.  ``kernel`` selects the
    automaton kernel backend (bitset by default) for either pathway.
    """
    program.require_goal(goal)
    if method not in ("auto", "tree", "word"):
        raise ValidationError(f"unknown containment method {method!r}")
    if method == "word" or (method == "auto" and is_chain_program(program)):
        return datalog_contained_in_ucq_linear(
            program, goal, union, use_antichain=use_antichain, kernel=kernel
        )
    return datalog_contained_in_ucq(program, goal, union,
                                    use_antichain=use_antichain, kernel=kernel)


def contained_in_cq(program: Program, goal: str, theta: ConjunctiveQuery,
                    method: str = "auto",
                    use_antichain: bool = True,
                    kernel: Optional[KernelConfig] = None) -> ContainmentResult:
    """Decide ``Q_Pi subseteq theta`` (Corollary 5.7)."""
    union = UnionOfConjunctiveQueries([theta], theta.arity)
    return contained_in_ucq(program, goal, union, method=method,
                            use_antichain=use_antichain, kernel=kernel)


def contained_in_nonrecursive(program: Program, goal: str,
                              nonrecursive: Program,
                              nonrecursive_goal: Optional[str] = None,
                              method: str = "auto",
                              kernel: Optional[KernelConfig] = None) -> ContainmentResult:
    """Decide ``Q_Pi subseteq Q'_Pi'`` for nonrecursive Pi'
    (Theorem 6.4): rewrite Pi' as a union of conjunctive queries (the
    potentially exponential step whose necessity Section 6 proves) and
    decide containment in the union."""
    union = unfold_nonrecursive(nonrecursive, nonrecursive_goal or goal)
    return contained_in_ucq(program, goal, union, method=method, kernel=kernel)


# ----------------------------------------------------------------------
# The classical reverse direction.
# ----------------------------------------------------------------------

def cq_contained_in_datalog(theta: ConjunctiveQuery, program: Program,
                            goal: str,
                            engine: Optional[Engine] = None) -> bool:
    """Decide ``theta subseteq Q_Pi`` by the canonical-database test
    [CK86, Sa88b]: freeze theta's variables into constants, evaluate Pi
    bottom-up on the frozen body, and check that the frozen head is
    derived.  ``engine`` overrides the default compiled engine.

    Requires a safe theta (an unsafe query cannot be contained in a
    Datalog program under active-domain semantics unless its frozen
    witness is derived for every head instantiation, which the frozen
    test cannot certify); raises :class:`ValidationError` otherwise.
    """
    program.require_goal(goal)
    if not theta.is_safe:
        raise ValidationError(
            f"canonical-database test requires a safe query, got {theta}"
        )
    database, head_row = canonical_database(theta)
    result = evaluate(program, database, engine=engine)
    return head_row in result.facts(goal)


def ucq_contained_in_datalog(union: UnionOfConjunctiveQueries,
                             program: Program, goal: str,
                             engine: Optional[Engine] = None) -> bool:
    """Decide ``union subseteq Q_Pi`` disjunct-wise (Theorem 2.3)."""
    return all(cq_contained_in_datalog(theta, program, goal, engine=engine)
               for theta in union)


def nonrecursive_contained_in_datalog(nonrecursive: Program,
                                      nonrecursive_goal: str,
                                      program: Program, goal: str,
                                      engine: Optional[Engine] = None) -> bool:
    """Decide ``Q'_Pi' subseteq Q_Pi`` for nonrecursive Pi'."""
    union = unfold_nonrecursive(nonrecursive, nonrecursive_goal)
    return ucq_contained_in_datalog(union, program, goal, engine=engine)


# ----------------------------------------------------------------------
# Counterexample extraction.
# ----------------------------------------------------------------------

def counterexample_database(result: ContainmentResult,
                            program: Program) -> Tuple[Database, Tuple]:
    """Turn a non-containment witness into a concrete database.

    The witness proof tree is renamed into an expansion tree
    (Proposition 5.5's renaming), its conjunctive query is frozen into
    a canonical database D, and the frozen head row is returned:
    running Pi on D derives the row, while the union does not produce
    it -- a machine-checkable refutation.
    """
    if result.contained or result.witness is None:
        raise ValidationError("containment holds; no counterexample exists")
    expansion = proof_tree_to_expansion_tree(result.witness)
    query = expansion.to_query(program)
    return canonical_database(query)
