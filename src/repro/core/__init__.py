"""The paper's contribution (Sections 5 and 6): containment of
recursive Datalog programs in unions of conjunctive queries, and
equivalence to nonrecursive programs, via proof-tree automata."""

from .boundedness import (
    BoundednessResult,
    bounded_at_depth,
    decide_boundedness,
    search_boundedness,
)
from .containment import (
    contained_in_cq,
    contained_in_nonrecursive,
    contained_in_ucq,
    counterexample_database,
    cq_contained_in_datalog,
    decide_containment_in_ucq,
    decide_cq_in_datalog,
    decide_nonrecursive_in_datalog,
    decide_ucq_in_datalog,
    nonrecursive_contained_in_datalog,
    ucq_contained_in_datalog,
)
from .cq_automaton import CQAutomaton, CQState
from .equivalence import (
    EquivalenceResult,
    decide_equivalence,
    decide_equivalence_to_ucq,
    equivalent_to_ucq,
    is_equivalent_to_nonrecursive,
)
from .materialize import (
    materialize_cq_automaton,
    materialize_fixpoint,
    theorem_5_11_via_substrate,
)
from .instances import (
    InstanceEnumerator,
    Label,
    clear_shared_caches,
    register_core_caches,
    warm_shared_caches,
)
from .ptree_automaton import (
    PTreeAutomaton,
    labeled_tree_to_proof_tree,
    proof_tree_to_labeled_tree,
)
from .tree_containment import (
    ContainmentResult,
    datalog_contained_in_cq,
    datalog_contained_in_ucq,
)
from .word_path import (
    datalog_contained_in_ucq_linear,
    is_chain_program,
    to_chain_form,
)

# Make the shared core caches visible to the kernel's cache-lifecycle
# registry as soon as the core layer exists.
register_core_caches()

__all__ = [
    "BoundednessResult",
    "CQAutomaton",
    "CQState",
    "ContainmentResult",
    "EquivalenceResult",
    "InstanceEnumerator",
    "Label",
    "PTreeAutomaton",
    "bounded_at_depth",
    "clear_shared_caches",
    "contained_in_cq",
    "contained_in_nonrecursive",
    "contained_in_ucq",
    "counterexample_database",
    "cq_contained_in_datalog",
    "datalog_contained_in_cq",
    "datalog_contained_in_ucq",
    "datalog_contained_in_ucq_linear",
    "decide_boundedness",
    "decide_containment_in_ucq",
    "decide_cq_in_datalog",
    "decide_equivalence",
    "decide_equivalence_to_ucq",
    "decide_nonrecursive_in_datalog",
    "decide_ucq_in_datalog",
    "equivalent_to_ucq",
    "is_chain_program",
    "is_equivalent_to_nonrecursive",
    "labeled_tree_to_proof_tree",
    "materialize_cq_automaton",
    "materialize_fixpoint",
    "nonrecursive_contained_in_datalog",
    "proof_tree_to_labeled_tree",
    "register_core_caches",
    "search_boundedness",
    "theorem_5_11_via_substrate",
    "to_chain_form",
    "ucq_contained_in_datalog",
    "warm_shared_caches",
]
