"""Materialize the Proposition 5.10 automaton as an explicit
:class:`~repro.automata.tree.TreeAutomaton`.

The containment procedure never needs this (it works with the lazy
automata), but materialization enables the literal Theorem 5.11 check

    T(A^ptrees)  subseteq  union_i T(A^theta_i)

through the *generic* tree-automata substrate -- an end-to-end
cross-validation of the specialized fixpoint, exercised by the tests
and the ablation benchmarks on small inputs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..automata.tree import TreeAutomaton
from ..budget import check_deadline
from ..cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..datalog.database import Database
from ..datalog.engine import Engine, evaluate
from ..datalog.program import Program
from .cq_automaton import CQAutomaton, CQState
from .instances import Label
from .ptree_automaton import PTreeAutomaton


def materialize_fixpoint(program: Program, database: Database,
                         max_stages: Optional[int] = None,
                         engine: Optional[Engine] = None,
                         include_edb: bool = True) -> Database:
    """Materialize ``Pi(D)`` as a database via the evaluation engine.

    Runs the bottom-up fixpoint -- through the default engine's
    columnar data plane (:mod:`repro.datalog.columns`) unless an
    *engine* override says otherwise -- and returns the derived IDB
    facts, merged onto a copy of *database* unless
    ``include_edb=False``.  This is the engine-backed counterpart of
    the automata materializations below: the same *materialize* verb,
    applied to the model instead of the proof-tree language.
    """
    result = evaluate(program, database, max_stages=max_stages, engine=engine)
    return result.as_database(database if include_edb else None)


def materialize_cq_automaton(program: Program, goal: str,
                             theta: ConjunctiveQuery) -> TreeAutomaton:
    """The explicit ``A^theta(Q, Pi)`` restricted to reachable states.

    States are the reachable :class:`CQState` triples; the alphabet is
    the shared label alphabet of Proposition 5.9.  Exponential -- use on
    small inputs only.
    """
    ptrees = PTreeAutomaton(program, goal)
    automaton = CQAutomaton(program, goal, theta)

    initial: List[CQState] = []
    for atom in ptrees.initial_atoms():
        state = automaton.initial_state(atom)
        if state is not None:
            initial.append(state)

    states: Set[CQState] = set(initial)
    transitions: List[Tuple[CQState, Label, Tuple[CQState, ...]]] = []
    frontier: List[CQState] = list(initial)
    processed: Set[CQState] = set()
    alphabet: Set[Label] = set()
    while frontier:
        check_deadline()
        state = frontier.pop()
        if state in processed:
            continue
        processed.add(state)
        for label in ptrees.enumerator.labels_for(state.atom):
            for children in automaton.successors_cached(state, label):
                alphabet.add(label)
                transitions.append((state, label, children))
                for child in children:
                    if child not in states:
                        states.add(child)
                        frontier.append(child)
    return TreeAutomaton.build(
        alphabet=alphabet,
        states=states,
        initial=initial,
        transitions=transitions,
    )


def theorem_5_11_via_substrate(program: Program, goal: str,
                               union: UnionOfConjunctiveQueries) -> bool:
    """Decide Theorem 5.11's containment literally through the generic
    tree-automata layer: materialize both sides, take the union of the
    query automata, and call the substrate containment."""
    from ..automata.tree import contained_in

    left = PTreeAutomaton(program, goal).materialize()
    rights = [
        materialize_cq_automaton(program, goal, theta) for theta in union
    ]
    if not rights:
        return left.is_empty()
    combined = rights[0]
    for automaton in rights[1:]:
        combined = combined.union(automaton)
    return contained_in(left, combined)
