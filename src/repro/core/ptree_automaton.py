"""The proof-tree automaton ``A^ptrees(Q, Pi)`` of Proposition 5.9.

Its tree language is exactly ``ptrees(Q, Pi)``: states are IDB atoms
over the term space, the start states are the goal atoms ``Q(s)``, the
alphabet is the set of node labels ``(alpha, rho)``, and
``delta(R(t), (R(t), rho))`` contains the tuple of IDB atoms of rho's
body (the empty tuple when rho's body is all-EDB, which is the
normalized form of the paper's ``accept`` state).

Both a materialized :class:`~repro.automata.tree.TreeAutomaton` (for
cross-checks against the generic substrate) and a lazy view used by the
containment fixpoint are provided.  The automaton's size is exponential
in the size of Pi, as stated by the proposition; ``size_estimate``
reports it without materializing.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..automata.tree import LabeledTree, TreeAutomaton
from ..budget import check_deadline
from ..context import current_scope
from ..datalog.atoms import Atom
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..trees.expansion import ExpansionTree
from ..trees.proof import root_atoms, term_space
from .instances import InstanceEnumerator, Label, shared_enumerator


def proof_tree_to_labeled_tree(tree: ExpansionTree, program: Program) -> LabeledTree:
    """Encode a proof tree as a Sigma-labeled tree over node labels."""
    idb = program.idb_predicates
    label = Label(
        atom=tree.atom,
        rule=tree.rule,
        idb_atoms=tree.rule.idb_body_atoms(idb),
        edb_atoms=tree.rule.edb_body_atoms(idb),
    )
    return LabeledTree(label, tuple(
        proof_tree_to_labeled_tree(child, program) for child in tree.children
    ))


def labeled_tree_to_proof_tree(tree: LabeledTree) -> ExpansionTree:
    """Decode a Sigma-labeled tree back into an expansion tree."""
    label = tree.label
    return ExpansionTree(
        label.atom,
        label.rule,
        tuple(labeled_tree_to_proof_tree(child) for child in tree.children),
    )


class PTreeAutomaton:
    """Lazy view of ``A^ptrees(Q, Pi)`` used by the containment search.

    ``transitions()`` enumerates, bottom-up-style, every transition
    ``goal --(label)--> (child goals)``: one per rule instance.  The
    states never need materializing; a goal atom is a state.
    """

    def __init__(self, program: Program, goal: str):
        program.require_goal(goal)
        self.program = program
        self.goal = goal
        self.enumerator = shared_enumerator(program)
        self._reachable_goals: Tuple[Atom, ...] = ()
        self._transitions: Optional[Tuple[Tuple[Atom, Label, Tuple[Atom, ...]], ...]] = None

    def initial_atoms(self) -> Iterator[Atom]:
        """The start states: all goal atoms over the term space."""
        yield from root_atoms(self.program, self.goal)

    def reachable_goal_atoms(self) -> Tuple[Atom, ...]:
        """All IDB atoms reachable top-down from some start state.

        This is the live state space of the automaton; the containment
        fixpoint iterates over transitions out of exactly these atoms.
        """
        if self._reachable_goals:
            return self._reachable_goals
        seen: Set[Atom] = set()
        frontier: List[Atom] = []
        for atom in self.initial_atoms():
            if atom not in seen:
                seen.add(atom)
                frontier.append(atom)
        while frontier:
            check_deadline()
            atom = frontier.pop()
            for label in self.enumerator.labels_for(atom):
                for child in label.idb_atoms:
                    if child not in seen:
                        seen.add(child)
                        frontier.append(child)
        self._reachable_goals = tuple(sorted(seen, key=str))
        return self._reachable_goals

    def transitions_list(self) -> Tuple[Tuple[Atom, Label, Tuple[Atom, ...]], ...]:
        """Every transition of the live automaton, materialized once
        and cached (the containment fixpoints sweep this repeatedly)."""
        if self._transitions is None:
            self._transitions = tuple(
                (atom, label, label.idb_atoms)
                for atom in self.reachable_goal_atoms()
                for label in self.enumerator.labels_for(atom)
            )
        return self._transitions

    def transitions(self) -> Iterator[Tuple[Atom, Label, Tuple[Atom, ...]]]:
        """Every transition of the live automaton."""
        yield from self.transitions_list()

    def size_estimate(self) -> Dict[str, int]:
        """(states, alphabet symbols, transitions) of the live automaton."""
        states = len(self.reachable_goal_atoms())
        symbols = sum(
            len(self.enumerator.labels_for(atom)) for atom in self.reachable_goal_atoms()
        )
        return {"states": states, "symbols": symbols, "transitions": symbols}

    def materialize(self) -> TreeAutomaton:
        """The explicit :class:`TreeAutomaton` of Proposition 5.9.

        Exponential in the program size; used for differential tests
        against the generic automata substrate on small programs.
        """
        alphabet: Set[Label] = set()
        states: Set[Atom] = set(self.reachable_goal_atoms())
        transitions: List[Tuple[Atom, Label, Tuple[Atom, ...]]] = []
        for atom, label, children in self.transitions():
            alphabet.add(label)
            transitions.append((atom, label, children))
        return TreeAutomaton.build(
            alphabet=alphabet,
            states=states,
            initial=set(self.initial_atoms()) & states,
            transitions=transitions,
        )

    def accepts_proof_tree(self, tree: ExpansionTree) -> bool:
        """Membership test: is *tree* in ptrees(Q, Pi)?"""
        if tree.atom.predicate != self.goal:
            return False
        allowed = set(term_space(self.program))

        def check(node: ExpansionTree) -> bool:
            for term in node.rule.variables():
                if term not in allowed:
                    return False
            for label in self.enumerator.labels_for(node.atom):
                if label.rule == node.rule:
                    children_atoms = tuple(child.atom for child in node.children)
                    if label.idb_atoms == children_atoms:
                        return all(check(child) for child in node.children)
            return False

        return check(tree)


def shared_ptree_automaton(program: Program, goal: str) -> PTreeAutomaton:
    """The ambient cache scope's proof-tree automaton per
    (program, goal).

    The automaton is immutable apart from monotone caches (reachable
    goal atoms, materialized transitions), so the containment and
    boundedness entry points share instances across calls instead of
    re-deriving the live state space per invocation.  Scoped to the
    ambient session (:mod:`repro.context`): concurrent sessions build
    their own instances, the default session shares process-wide.
    """
    return current_scope().memo(
        "core.ptree_automaton", (program, goal),
        lambda: PTreeAutomaton(program, goal), limit=64,
    )
