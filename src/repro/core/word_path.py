"""The word-automaton pathway for linear programs (Theorem 5.12,
EXPSPACE case).

When every rule of Pi has at most one IDB atom in its body ("chain
form"), every proof tree is a path: the sequence of node labels from
the root to the unique leaf is a word, and ``ptrees(Q, Pi)`` is a
regular *word* language.  Containment in a union of conjunctive
queries then reduces to word-automaton containment, decidable in
polynomial space in the automata (Proposition 4.3) -- exponential
space in the input overall.

A linear program in the paper's sense (at most one *recursive*
subgoal) may still have several IDB body atoms; :func:`to_chain_form`
removes non-recursive IDB subgoals by inlining their (finitely many)
expansions, after which the word pathway applies.  The inlining can
blow up the program; the tree pathway never needs it.

The search is the forward antichain of Proposition 4.3: pairs
``(goal atom, V)`` where V is the set of union-automaton states
reachable on the path so far; a path ending in an all-EDB label with
no accepting V-member is a counterexample.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..automata.kernel import Interner, KernelConfig, resolve_kernel
from ..budget import check_deadline
from ..cq.query import UnionOfConjunctiveQueries
from ..datalog.analysis import is_linear, recursive_body_atoms, recursive_predicates
from ..datalog.atoms import Atom
from ..datalog.errors import NotLinearError
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import FreshVariableFactory
from ..datalog.unfold import unfold_nonrecursive
from ..datalog.unify import apply_to_atom, apply_to_atoms, unify_tuples
from ..trees.expansion import ExpansionTree
from .cq_automaton import CQAutomaton, CQState, shared_cq_automaton
from .instances import Label
from .ptree_automaton import PTreeAutomaton, shared_ptree_automaton
from .tree_containment import BState, ContainmentResult


def is_chain_program(program: Program) -> bool:
    """True when every rule body has at most one IDB atom."""
    return all(len(program.idb_atoms_of(rule)) <= 1 for rule in program.rules)


def to_chain_form(program: Program, goal: str) -> Program:
    """Inline non-recursive IDB subgoals of a *linear* program so that
    every rule has at most one IDB body atom.

    Raises :class:`NotLinearError` when the program is not linear (then
    no chain form exists).  May enlarge the program exponentially.
    """
    if not is_linear(program):
        raise NotLinearError("only linear programs admit a chain form")
    recursive = recursive_predicates(program)
    factory = FreshVariableFactory(prefix="C")
    rules: List[Rule] = []
    for rule in program.rules:
        recursive_positions = set(recursive_body_atoms(program, rule))
        # Partial bodies: (substitution, atoms) where non-recursive IDB
        # atoms have been replaced by their unfoldings.
        states: List[Tuple[dict, Tuple[Atom, ...]]] = [({}, ())]
        for position, atom in enumerate(rule.body):
            if atom.predicate not in program.idb_predicates or position in recursive_positions:
                states = [(subst, atoms + (atom,)) for subst, atoms in states]
                continue
            expansions = unfold_nonrecursive(
                _slice_without_goal(program, atom.predicate), atom.predicate
            )
            next_states: List[Tuple[dict, Tuple[Atom, ...]]] = []
            for subst, atoms in states:
                call = apply_to_atom(atom, subst)
                for expansion in expansions:
                    mapping = {
                        v: factory.fresh()
                        for v in sorted(expansion.variables, key=lambda v: v.name)
                    }
                    renamed = expansion.substitute(mapping)
                    unified = unify_tuples(renamed.head.args, call.args, subst)
                    if unified is None:
                        continue
                    next_states.append((unified, atoms + renamed.body))
            states = next_states
        for subst, atoms in states:
            rules.append(
                Rule(apply_to_atom(rule.head, subst), apply_to_atoms(atoms, subst))
            )
    chained = Program(rules)
    # Rules for now-unreachable non-recursive IDB predicates are kept
    # only if the goal still depends on them.
    from ..datalog.analysis import slice_for_goal

    return slice_for_goal(chained, goal)


def _slice_without_goal(program: Program, predicate: str) -> Program:
    from ..datalog.analysis import slice_for_goal

    return slice_for_goal(program, predicate)


def datalog_contained_in_ucq_linear(program: Program, goal: str,
                                    union: UnionOfConjunctiveQueries,
                                    use_antichain: bool = True,
                                    kernel: Optional[KernelConfig] = None) -> ContainmentResult:
    """Containment for chain-form programs via word automata.

    Raises :class:`NotLinearError` when some rule has more than one IDB
    body atom (use :func:`to_chain_form` first, or the tree pathway).
    ``kernel`` selects the bitset kernel (default) or the frozenset
    reference path.
    """
    if not is_chain_program(program):
        raise NotLinearError(
            "word pathway requires chain form (at most one IDB atom per body); "
            "call to_chain_form() or use the tree pathway"
        )
    config = resolve_kernel(kernel)
    ptrees = shared_ptree_automaton(program, goal)
    automata = [shared_cq_automaton(program, goal, theta) for theta in union]
    if config.bitset:
        return _linear_search_bitset(ptrees, automata, use_antichain,
                                     config.memoize)
    return _linear_search_reference(ptrees, automata, use_antichain)


def _linear_search_bitset(ptrees: PTreeAutomaton,
                          automata: List[CQAutomaton],
                          use_antichain: bool,
                          memoize: bool) -> ContainmentResult:
    """The forward antichain on the bitset kernel: B-states are
    interned to dense ids as discovered, V subsets are int masks, and
    per-(B-state, label) successor masks / leaf verdicts are memoized
    (the search revisits the same states under many different V's)."""
    interner = Interner()

    def initial_v(root: Atom) -> int:
        mask = 0
        for index, automaton in enumerate(automata):
            state = automaton.initial_state(root)
            if state is not None:
                mask |= 1 << interner.intern((index, state))
        return mask

    succ_masks: Dict[Tuple[int, Label], int] = {}
    leaf_accepts: Dict[Tuple[int, Label], bool] = {}

    chains: Dict[Atom, List[int]] = {}
    stats = {"pairs": 0, "ptree_states": 0}

    def insert(atom: Atom, mask: int) -> bool:
        chain = chains.get(atom)
        if chain is None:
            chains[atom] = [mask]
            return True
        if use_antichain:
            for known in chain:
                if known & mask == known:
                    return False
            chain[:] = [known for known in chain if mask & known != mask]
        elif mask in chain:
            return False
        chain.append(mask)
        return True

    frontier: List[Tuple[Atom, int, Tuple[Label, ...]]] = []
    for root in ptrees.initial_atoms():
        mask = initial_v(root)
        if insert(root, mask):
            frontier.append((root, mask, ()))

    while frontier:
        check_deadline()
        atom, mask, path = frontier.pop()
        stats["pairs"] += 1
        for label in ptrees.enumerator.labels_for(atom):
            if label.is_leaf():
                accepted = False
                remaining = mask
                while remaining:
                    low = remaining & -remaining
                    remaining ^= low
                    bid = low.bit_length() - 1
                    key = (bid, label)
                    verdict = leaf_accepts.get(key) if memoize else None
                    if verdict is None:
                        index, state = interner.object_of(bid)
                        verdict = automata[index].accepts_leaf(state, label)
                        if memoize:
                            leaf_accepts[key] = verdict
                    if verdict:
                        accepted = True
                        break
                if not accepted:
                    witness = _path_to_tree(path + (label,))
                    return ContainmentResult(False, witness, stats)
                continue
            if len(label.idb_atoms) != 1:
                raise NotLinearError(f"non-chain label {label} encountered")
            child = label.idb_atoms[0]
            next_mask = 0
            remaining = mask
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                bid = low.bit_length() - 1
                key = (bid, label)
                succ = succ_masks.get(key) if memoize else None
                if succ is None:
                    index, state = interner.object_of(bid)
                    succ = 0
                    for children in automata[index].successors_cached(state, label):
                        succ |= 1 << interner.intern((index, children[0]))
                    if memoize:
                        succ_masks[key] = succ
                next_mask |= succ
            if insert(child, next_mask):
                frontier.append((child, next_mask, path + (label,)))
    return ContainmentResult(True, None, stats)


def _linear_search_reference(ptrees: PTreeAutomaton,
                             automata: List[CQAutomaton],
                             use_antichain: bool) -> ContainmentResult:

    def initial_v(root: Atom) -> FrozenSet[BState]:
        states: Set[BState] = set()
        for index, automaton in enumerate(automata):
            state = automaton.initial_state(root)
            if state is not None:
                states.add((index, state))
        return frozenset(states)

    # Forward antichain search over (goal atom, V) pairs.
    chains: Dict[Atom, List[FrozenSet[BState]]] = {}
    stats = {"pairs": 0, "ptree_states": 0}

    def dominated(atom: Atom, subset: FrozenSet[BState]) -> bool:
        return any(known <= subset for known in chains.get(atom, ()))

    def insert(atom: Atom, subset: FrozenSet[BState]) -> bool:
        if use_antichain:
            if dominated(atom, subset):
                return False
            chain = chains.setdefault(atom, [])
            chain[:] = [known for known in chain if not subset <= known]
            chain.append(subset)
            return True
        chain = chains.setdefault(atom, [])
        if subset in chain:
            return False
        chain.append(subset)
        return True

    frontier: List[Tuple[Atom, FrozenSet[BState], Tuple[Label, ...]]] = []
    for root in ptrees.initial_atoms():
        subset = initial_v(root)
        if insert(root, subset):
            frontier.append((root, subset, ()))

    while frontier:
        check_deadline()
        atom, subset, path = frontier.pop()
        stats["pairs"] += 1
        for label in ptrees.enumerator.labels_for(atom):
            if label.is_leaf():
                accepted = any(
                    automata[index].accepts_leaf(state, label)
                    for index, state in subset
                )
                if not accepted:
                    witness = _path_to_tree(path + (label,))
                    return ContainmentResult(False, witness, stats)
                continue
            if len(label.idb_atoms) != 1:
                raise NotLinearError(f"non-chain label {label} encountered")
            child = label.idb_atoms[0]
            next_subset: Set[BState] = set()
            for index, state in subset:
                for children in automata[index].successors(state, label):
                    next_subset.add((index, children[0]))
            frozen = frozenset(next_subset)
            if insert(child, frozen):
                frontier.append((child, frozen, path + (label,)))
    return ContainmentResult(True, None, stats)


def _path_to_tree(path: Tuple[Label, ...]) -> ExpansionTree:
    """Rebuild the (path-shaped) proof tree from its label word."""
    node: Optional[ExpansionTree] = None
    for label in reversed(path):
        children = (node,) if node is not None and not label.is_leaf() else ()
        node = ExpansionTree(label.atom, label.rule, children)
    assert node is not None
    return node
