"""Equivalence of recursive and nonrecursive programs (Theorem 6.5).

``Pi == Pi'`` (with Pi recursive, Pi' nonrecursive, both over the same
EDB vocabulary) is decided by two containments:

* ``Pi' subseteq Pi``: unfold Pi' into a union of conjunctive queries
  and run the canonical-database test per disjunct (the classical,
  easier direction);
* ``Pi subseteq Pi'``: the paper's contribution -- containment of a
  recursive program in a union of conjunctive queries via proof-tree
  automata (Theorem 5.12), triply exponential overall because of the
  unfolding blowup (Theorem 6.5 shows this is optimal).

The ``decide_*`` functions are the implementations (explicit
configuration, optional per-phase ``timings`` capture) called by
:class:`repro.session.Session`; the historical free functions delegate
to the ambient session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Optional

from ..automata.kernel import KernelConfig
from ..cq.query import UnionOfConjunctiveQueries
from ..datalog.analysis import is_recursive
from ..datalog.engine import Engine
from ..datalog.errors import NotNonrecursiveError, ValidationError
from ..datalog.program import Program
from ..datalog.unfold import unfold_nonrecursive
from ..trees.expansion import ExpansionTree
from .containment import decide_containment_in_ucq, decide_ucq_in_datalog


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence decision.

    When the programs differ, exactly one direction fails:
    ``forward_holds`` reports ``Pi subseteq Pi'`` (with
    ``forward_witness`` a proof tree of Pi not covered by Pi' when it
    fails) and ``backward_holds`` reports ``Pi' subseteq Pi``.
    """

    equivalent: bool
    forward_holds: bool
    backward_holds: bool
    forward_witness: Optional[ExpansionTree] = None
    stats: Dict[str, int] = field(default_factory=dict)

    def __bool__(self):
        return self.equivalent


def _stamp(timings: Optional[Dict[str, float]], key: str,
           started: float) -> None:
    if timings is not None:
        timings[key] = round(perf_counter() - started, 6)


def decide_equivalence(program: Program, nonrecursive: Program, goal: str,
                       nonrecursive_goal: Optional[str] = None,
                       method: str = "auto",
                       engine: Optional[Engine] = None,
                       kernel: Optional[KernelConfig] = None,
                       timings: Optional[Dict[str, float]] = None) -> EquivalenceResult:
    """The Theorem 6.5 implementation (explicit configuration).

    When *timings* is a dict, the three phases are stamped into it:
    ``unfold_s`` (Pi' to a UCQ), ``backward_s`` (canonical-database
    tests) and ``forward_s`` (the proof-tree-automata containment).
    """
    nonrecursive_goal = nonrecursive_goal or goal
    if is_recursive(nonrecursive):
        raise NotNonrecursiveError(
            "second program must be nonrecursive (general Datalog "
            "equivalence is undecidable [Shm87])"
        )
    program.require_goal(goal)
    nonrecursive.require_goal(nonrecursive_goal)
    if program.arity[goal] != nonrecursive.arity[nonrecursive_goal]:
        raise ValidationError("goal predicates have different arities")

    started = perf_counter()
    union = unfold_nonrecursive(nonrecursive, nonrecursive_goal)
    _stamp(timings, "unfold_s", started)
    started = perf_counter()
    backward = decide_ucq_in_datalog(union, program, goal, engine=engine)
    _stamp(timings, "backward_s", started)
    started = perf_counter()
    forward = decide_containment_in_ucq(program, goal, union,
                                        method=method, kernel=kernel)
    _stamp(timings, "forward_s", started)
    stats = dict(forward.stats)
    stats["union_disjuncts"] = len(union)
    stats["union_size"] = union.size()
    return EquivalenceResult(
        equivalent=forward.contained and backward,
        forward_holds=forward.contained,
        backward_holds=backward,
        forward_witness=forward.witness,
        stats=stats,
    )


def decide_equivalence_to_ucq(program: Program, goal: str,
                              union: UnionOfConjunctiveQueries,
                              method: str = "auto",
                              engine: Optional[Engine] = None,
                              kernel: Optional[KernelConfig] = None,
                              timings: Optional[Dict[str, float]] = None) -> EquivalenceResult:
    """The Theorem 5.12 form of the problem (explicit configuration)."""
    program.require_goal(goal)
    started = perf_counter()
    backward = decide_ucq_in_datalog(union, program, goal, engine=engine)
    _stamp(timings, "backward_s", started)
    started = perf_counter()
    forward = decide_containment_in_ucq(program, goal, union,
                                        method=method, kernel=kernel)
    _stamp(timings, "forward_s", started)
    return EquivalenceResult(
        equivalent=forward.contained and backward,
        forward_holds=forward.contained,
        backward_holds=backward,
        forward_witness=forward.witness,
        stats=dict(forward.stats),
    )


def is_equivalent_to_nonrecursive(program: Program, nonrecursive: Program,
                                  goal: str,
                                  nonrecursive_goal: Optional[str] = None,
                                  method: str = "auto",
                                  engine: Optional[Engine] = None,
                                  kernel: Optional[KernelConfig] = None) -> EquivalenceResult:
    """Decide ``Pi == Pi'`` for a (possibly recursive) Pi and a
    nonrecursive Pi' (Theorem 6.5).

    ``goal`` is Pi's goal predicate; ``nonrecursive_goal`` defaults to
    the same name.  Raises :class:`NotNonrecursiveError` when Pi' is
    recursive (use two containment calls directly for that undecidable
    case at your own peril -- the paper proves general Datalog
    equivalence undecidable [Shm87]).  Delegates to the ambient
    :class:`repro.session.Session`; ``engine``/``kernel`` override the
    session's configuration for this call.
    """
    from ..session import current_session

    return current_session().equivalent_to_nonrecursive(
        program, nonrecursive, goal, nonrecursive_goal,
        method=method, engine=engine, kernel=kernel).raw


def equivalent_to_ucq(program: Program, goal: str,
                      union: UnionOfConjunctiveQueries,
                      method: str = "auto",
                      engine: Optional[Engine] = None,
                      kernel: Optional[KernelConfig] = None) -> EquivalenceResult:
    """Decide ``Pi == union`` directly against a union of conjunctive
    queries (the Theorem 5.12 form of the problem).  Delegates to the
    ambient :class:`repro.session.Session`."""
    from ..session import current_session

    return current_session().equivalent_to_ucq(
        program, goal, union, method=method, engine=engine,
        kernel=kernel).raw
