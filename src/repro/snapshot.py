"""Persistent warm state: on-disk snapshots of a session's caches.

Everything a long-running :class:`~repro.session.Session` accumulates
before it reaches steady state -- compiled
:class:`~repro.datalog.plan.JoinPlan` objects, interned columnar
:class:`~repro.datalog.columns.EdbImage` relations, and the shared
automaton caches (:func:`~repro.core.cq_automaton.shared_cq_automaton`
and friends) -- is deterministic given the session configuration and
the inputs, so a respawned worker rebuilding it from scratch is pure
waste.  This module serializes that warm state to a versioned on-disk
snapshot and restores it into a fresh session, turning worker respawn
from a full cold start into a single ``pickle.loads``.

Lifecycle rules (each asserted by ``tests/test_snapshot.py``):

* **Keyed by config fingerprint.**  A snapshot file is named after the
  producing session's :attr:`~repro.session.Session.fingerprint`; a
  session only ever loads its own fingerprint's file, and the payload
  repeats the fingerprint (plus a format number) so a renamed or stale
  file is rejected, never trusted.
* **Invalid = silent cold start.**  A missing file, a fingerprint or
  format mismatch, or a truncated/corrupt pickle all degrade to a cold
  start; corruption additionally emits a :class:`SnapshotWarning`
  (something on disk is broken and worth a log line) while mismatch is
  silent (a different configuration's snapshot is a normal sight).
* **Atomic writes.**  Snapshots are written to a temp file in the
  target directory and published with :func:`os.replace`, so two
  processes snapshotting the same key race to last-writer-wins and a
  reader never observes a torn file.
* **EDB images travel by scenario name.**  The image cache itself is
  keyed by database *identity* (see :mod:`repro.datalog.columns`),
  which cannot survive a process boundary.  Registry scenarios build
  deterministic payloads by contract ("two builds are
  interchangeable"), so their images are snapshotted under the
  scenario name and re-adopted -- after a relation-shape validation --
  when the scenario is next run (:func:`repro.datalog.columns.adopt_image`).

The snapshot directory is configured per process: explicitly via the
``--snapshot-dir`` flags (``repro serve``, ``repro.runner``) or the
``REPRO_SNAPSHOT_DIR`` environment variable; both end up in the
environment, so spawned pool workers inherit the setting for free.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

__all__ = [
    "ENV_VAR",
    "SNAPSHOT_FORMAT",
    "SnapshotWarning",
    "configured_dir",
    "load_snapshot",
    "restore_session",
    "save_snapshot",
    "set_snapshot_dir",
    "snapshot_path",
]

#: Bumped whenever the payload layout changes; a mismatched format is
#: a cold start, never a best-effort parse.
SNAPSHOT_FORMAT = 1

ENV_VAR = "REPRO_SNAPSHOT_DIR"

#: Scope tables that must never be snapshotted: the EDB image table is
#: keyed by ``id(database)`` and holds weakrefs -- meaningless in
#: another process.  Images travel under scenario names instead.
_SKIP_TABLES = frozenset({"datalog.edb_images"})


class SnapshotWarning(UserWarning):
    """A snapshot file exists but cannot be used (truncated, corrupt,
    unreadable).  The session proceeds with a cold start."""


def configured_dir() -> Optional[str]:
    """The process's snapshot directory (``REPRO_SNAPSHOT_DIR``), or
    ``None`` when persistence is off."""
    return os.environ.get(ENV_VAR) or None


def set_snapshot_dir(directory: Optional[str]) -> None:
    """Configure (or clear, with ``None``) the process snapshot
    directory.  Stored in the environment so pool workers -- spawned
    by either executor kind -- inherit it."""
    if directory is None:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = str(directory)


def snapshot_path(directory, fingerprint: str) -> Path:
    """Where the snapshot of configuration *fingerprint* lives inside
    *directory*."""
    return Path(directory) / f"warm-{fingerprint}.snap"


# ----------------------------------------------------------------------
# Capture.
# ----------------------------------------------------------------------

def _picklable_entries(table: Dict) -> Dict:
    """The subset of *table* that survives a pickle **round-trip**.
    Cache entries are best-effort by design: an unpicklable automaton
    (or key) is simply rebuilt on the other side, it must never abort
    the snapshot.  Loads are checked too -- a class can serialize fine
    yet explode on deserialize (e.g. frozen dataclasses with
    ``__slots__`` and no explicit ``__setstate__``), and that must
    surface as a skipped entry here, not a corrupt-looking snapshot at
    restore time."""
    entries = {}
    for key, value in table.items():
        try:
            pickle.loads(
                pickle.dumps((key, value),
                             protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            continue
        entries[key] = value
    return entries


def capture(session, scenarios: Iterable[str] = ()) -> Dict[str, Any]:
    """The snapshot payload of *session*: compiled plans, picklable
    scope tables, and the scenario-keyed EDB images the session has
    accumulated (plus images built on the spot for any extra
    *scenarios* named)."""
    tables = {}
    for name, (entries, limit) in session.caches.export_tables().items():
        if name in _SKIP_TABLES or not entries:
            continue
        entries = _picklable_entries(entries)
        if entries:
            tables[name] = (entries, limit)
    images = dict(session._snapshot_images)
    for name in scenarios:
        if name not in images:
            image = _build_scenario_image(session, name)
            if image is not None:
                images[name] = image
    return {
        "format": SNAPSHOT_FORMAT,
        "fingerprint": session.fingerprint,
        "plans": session.engine.export_plans(),
        "tables": tables,
        "images": images,
    }


def _build_scenario_image(session, name: str):
    """The columnar image of scenario *name*'s payload database
    (``None`` for scenarios without one)."""
    from .datalog.columns import edb_image
    from .workloads.scenarios import get_scenario

    payload = get_scenario(name).build()
    database = payload.get("database")
    if database is None:
        return None
    with session.activated():
        return edb_image(database)


def save_snapshot(session, directory=None,
                  scenarios: Iterable[str] = ()) -> Optional[Path]:
    """Atomically write *session*'s warm state under its fingerprint.

    *directory* defaults to the configured process directory; with
    neither set this is a no-op returning ``None``.  Concurrent savers
    of the same key are safe: each writes a private temp file and the
    final :func:`os.replace` is atomic, so readers see one complete
    snapshot (the last writer's) and never a torn mix.
    """
    directory = directory or configured_dir()
    if directory is None:
        return None
    payload = capture(session, scenarios)
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    os.makedirs(directory, exist_ok=True)
    path = snapshot_path(directory, session.fingerprint)
    fd, tmp = tempfile.mkstemp(dir=str(directory), prefix=".snap-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


# ----------------------------------------------------------------------
# Restore.
# ----------------------------------------------------------------------

def load_snapshot(directory, fingerprint: str) -> Optional[Dict[str, Any]]:
    """The validated snapshot payload for *fingerprint*, or ``None``
    for every flavour of unusable: missing file (silent), corrupt or
    truncated pickle (:class:`SnapshotWarning`), format or fingerprint
    mismatch (silent -- it is some other configuration's state)."""
    path = snapshot_path(directory, fingerprint)
    try:
        blob = path.read_bytes()
    except OSError:
        return None
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        warnings.warn(
            f"ignoring corrupt snapshot {path}: "
            f"{type(exc).__name__}: {exc}", SnapshotWarning,
            stacklevel=2)
        return None
    if not isinstance(payload, dict):
        warnings.warn(f"ignoring malformed snapshot {path}: "
                      f"payload is {type(payload).__name__}",
                      SnapshotWarning, stacklevel=2)
        return None
    if payload.get("format") != SNAPSHOT_FORMAT:
        return None
    if payload.get("fingerprint") != fingerprint:
        return None
    return payload


def restore_session(session, directory=None) -> bool:
    """Install the on-disk warm state matching *session*'s fingerprint
    (compiled plans, scope tables, scenario images) and report whether
    anything was restored.  Unusable snapshots -- missing, corrupt,
    mismatched -- leave the session untouched (cold start)."""
    directory = directory or configured_dir()
    if directory is None:
        return False
    payload = load_snapshot(directory, session.fingerprint)
    if payload is None:
        return False
    session.engine.adopt_plans(payload.get("plans") or {})
    session.caches.adopt_tables(payload.get("tables") or {})
    session._snapshot_images.update(payload.get("images") or {})
    return True
