"""Machine-readable benchmark trajectories (``BENCH_*.json``).

Shared by ``python -m repro.runner`` and the standalone
``benchmarks/run_bench.py``: run metadata (commit, interpreter,
machine) and append-only JSON trajectory files, so performance and
verdict records accumulate across commits in one place.  The schema is
documented in ``docs/BENCHMARKS.md``.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Dict, List

#: Decision-stack records (containment / equivalence / boundedness).
AUTOMATA_TRAJECTORY = "BENCH_automata.json"
#: Evaluation-engine records (evaluation / magic / compiled plans).
PLANS_TRAJECTORY = "BENCH_plans.json"


def find_repo_root(start: Path = None) -> Path:
    """The directory trajectories default to: the enclosing checkout.

    Walks up from *start* (default: this file) looking for a repo
    marker (``.git`` or ``ROADMAP.md``).  When the package is
    installed outside a checkout (site-packages), no marker exists --
    fall back to the current working directory rather than writing
    into the interpreter's lib tree.
    """
    here = (start or Path(__file__)).resolve()
    for candidate in [here] + list(here.parents):
        if (candidate / ".git").exists() or (candidate / "ROADMAP.md").exists():
            return candidate
    return Path.cwd()


def run_metadata(repo_root: Path) -> Dict:
    """Commit / interpreter / machine stamp for one trajectory record."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=repo_root,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        commit = "unknown"
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "commit": commit,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def append_trajectory(path: Path, record: Dict) -> None:
    """Append *record* to the JSON list at *path* (created, or reset,
    when missing or unparsable)."""
    trajectory: List = []
    if path.exists():
        try:
            trajectory = json.loads(path.read_text())
        except json.JSONDecodeError:
            trajectory = []
    trajectory.append(record)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
