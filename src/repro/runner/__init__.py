"""Parallel batch runner for the scenario registry.

``python -m repro.runner`` shards the scenario matrix (scenario x
engine x kernel) across worker processes with a warm/cold cache
lifecycle; :mod:`repro.runner.batch` is the library API and
:mod:`repro.runner.trajectory` the ``BENCH_*.json`` writer.  See
``docs/BENCHMARKS.md``.
"""

from .batch import (
    CACHE_MODES,
    ENGINE_CONFIGS,
    KERNEL_CONFIGS,
    Job,
    build_jobs,
    execute_job,
    run_batch,
    run_decision,
    select_scenarios,
    verdicts,
)
from .trajectory import (
    AUTOMATA_TRAJECTORY,
    PLANS_TRAJECTORY,
    append_trajectory,
    find_repo_root,
    run_metadata,
)

__all__ = [
    "AUTOMATA_TRAJECTORY",
    "CACHE_MODES",
    "ENGINE_CONFIGS",
    "Job",
    "KERNEL_CONFIGS",
    "PLANS_TRAJECTORY",
    "append_trajectory",
    "build_jobs",
    "execute_job",
    "find_repo_root",
    "run_batch",
    "run_decision",
    "run_metadata",
    "select_scenarios",
    "verdicts",
]
