"""The batch decision service: scenario matrices, sharded.

This module turns the scenario registry
(:mod:`repro.workloads.scenarios`) into a **job matrix** -- scenario x
:class:`~repro.datalog.engine.EngineConfig` x
:class:`~repro.automata.kernel.KernelConfig` -- and executes it either
serially or sharded across a :class:`concurrent.futures.ProcessPoolExecutor`.

Design points (each load-bearing for correctness or fairness):

* **Deterministic job ordering.**  Jobs are sorted by ``(scenario,
  engine, kernel)`` and results are returned in job order regardless
  of which worker finished first, so a parallel run is comparable to a
  serial run entry-by-entry (``verdicts`` below, and the differential
  test in ``tests/test_runner.py``).
* **Jobs travel by name.**  A job is four strings; workers rebuild
  payloads from the registry, so nothing heavyweight crosses the
  process boundary and every worker constructs bit-identical inputs.
* **Scenario-affine sharding.**  Jobs are grouped by scenario and the
  groups are dealt round-robin across workers, so all cells of one
  scenario (both kernels, both engines) land in the same process and
  share its ``shared_*`` caches -- the same reuse a serial run gets.
  Sharding whole groups (rather than ``pool.map`` over single jobs)
  is what makes N workers genuinely divide the work: the expensive
  per-program derivations happen once per scenario *somewhere*, not
  once per worker.
* **Cache lifecycle.**  In ``warm`` mode each worker pre-warms its
  shard's per-program caches via the ``shared_*`` factories
  (:func:`repro.core.warm_shared_caches`) before timing its jobs, so
  per-job seconds reflect the steady state of a long-running service.
  In ``cold`` mode every job first runs
  :func:`repro.core.clear_shared_caches` (the registered-cache hook
  that also drops compiled plans) and uses a fresh engine, measuring
  cold-start behaviour fairly -- previously the benchmark configs
  leaked warm caches across modes.
* **Self-checking.**  Every job's verdict is compared against the
  scenario's constructed ground truth; a batch with any ``ok=False``
  entry exits nonzero from the CLI.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..automata.kernel import KernelConfig
from ..core.instances import clear_shared_caches, warm_shared_caches
from ..datalog.engine import Engine, EngineConfig
from ..datalog.unfold import expansion_union, unfold_nonrecursive
from ..workloads.scenarios import (
    DECISION_KINDS,
    get_scenario,
    run_scenario,
    scenario_names,
)

#: Named engine configurations the matrix can range over.  "columnar"
#: is the shipped default (batch join kernels over column stores);
#: "compiled" pins the row-at-a-time PlanStore reference; "interpretive"
#: is the original per-tuple evaluator.
ENGINE_CONFIGS: Dict[str, EngineConfig] = {
    "columnar": EngineConfig(compiled=True, backend="columnar"),
    "compiled": EngineConfig(compiled=True, backend="rows"),
    "interpretive": EngineConfig(compiled=False),
}

#: Named kernel configurations the matrix can range over.
KERNEL_CONFIGS: Dict[str, KernelConfig] = {
    "bitset": KernelConfig(backend="bitset"),
    "frozenset": KernelConfig(backend="frozenset"),
}

CACHE_MODES = ("warm", "cold")


@dataclass(frozen=True, order=True)
class Job:
    """One cell of the scenario matrix (all fields are strings, so a
    job pickles trivially and sorts deterministically)."""

    scenario: str
    engine: str
    kernel: str
    cache: str = "warm"


def build_jobs(scenarios: Sequence[str],
               engines: Sequence[str] = ("compiled",),
               kernels: Sequence[str] = ("bitset", "frozenset"),
               cache: str = "warm") -> List[Job]:
    """The deterministic job matrix for *scenarios*.

    Decision scenarios (containment / equivalence / boundedness) range
    over *kernels* -- the automaton backend is what their verdicts
    exercise -- and run on the first engine (the engine only powers
    probes and backward containments).  Evaluation and magic scenarios
    range over *engines* and ignore the kernel.  ``cache`` is stamped
    on every job; mixing modes inside one batch is deliberately not
    offered (it would reintroduce the unfair sharing this layer
    exists to prevent).

    Scenarios tagged ``scale`` (10^5-fact EDBs) drop the interpretive
    engine from their matrix cells -- per-tuple evaluation takes
    minutes there, and ``--scenarios all`` must stay runnable.  Asking
    for *only* the interpretive engine is honored (an explicit
    request), and the scale tier can always be excluded by tag.
    """
    if cache not in CACHE_MODES:
        raise ValueError(f"unknown cache mode {cache!r}; expected {CACHE_MODES}")
    for label in engines:
        if label not in ENGINE_CONFIGS:
            raise ValueError(f"unknown engine {label!r}; "
                             f"known: {sorted(ENGINE_CONFIGS)}")
    for label in kernels:
        if label not in KERNEL_CONFIGS:
            raise ValueError(f"unknown kernel {label!r}; "
                             f"known: {sorted(KERNEL_CONFIGS)}")
    jobs: List[Job] = []
    for name in scenarios:
        scenario = get_scenario(name)
        if scenario.kind in DECISION_KINDS:
            jobs.extend(Job(name, engines[0], kernel, cache)
                        for kernel in kernels)
        else:
            scenario_engines = engines
            if "scale" in scenario.tags:
                compiled = [e for e in engines if e != "interpretive"]
                scenario_engines = compiled or engines
            jobs.extend(Job(name, engine, kernels[0], cache)
                        for engine in scenario_engines)
    return sorted(jobs)


# ----------------------------------------------------------------------
# Worker-side execution.
# ----------------------------------------------------------------------

# Per-process engine instances: reused across warm jobs so compiled
# plans amortize, discarded per job in cold mode.
_ENGINES: Dict[str, Engine] = {}


def _engine_for(label: str, cache: str) -> Engine:
    if cache == "cold":
        return Engine(ENGINE_CONFIGS[label])
    engine = _ENGINES.get(label)
    if engine is None:
        engine = _ENGINES[label] = Engine(ENGINE_CONFIGS[label])
    return engine


def execute_job(job: Job) -> Dict:
    """Run one job in the current process and return its record.

    The record is JSON-serializable: scenario metadata, the matrix
    cell, the verdict, the ground-truth check, and the wall-clock
    seconds for the decision call (payload construction excluded from
    neither -- scenario builds are part of the served work).
    """
    scenario = get_scenario(job.scenario)
    if job.cache == "cold":
        clear_shared_caches()
        _ENGINES.clear()
    engine = _engine_for(job.engine, job.cache)
    kernel = KERNEL_CONFIGS[job.kernel]
    start = time.perf_counter()
    result = run_scenario(scenario, engine=engine, kernel=kernel)
    seconds = time.perf_counter() - start
    return {
        "scenario": job.scenario,
        "kind": scenario.kind,
        "engine": job.engine,
        "kernel": job.kernel,
        "cache": job.cache,
        "verdict": result["verdict"],
        "ok": result["ok"],
        "seconds": round(seconds, 6),
        "stats": result["stats"],
        "pid": os.getpid(),
    }


def _warm_scenario(name: str) -> None:
    """Pre-build the process-wide caches one scenario's jobs will hit,
    via the ``shared_*`` factories (decision kinds only -- evaluation
    scenarios warm through the per-engine plan cache on first run).

    The union whose per-disjunct query automata get warmed is the one
    the decision procedure actually constructs: containment payloads
    carry it, equivalence unfolds its nonrecursive program, and the
    boundedness search probes the expansion unions of every depth up
    to its ``max_depth``.  Without this, the first kernel's recorded
    seconds would absorb one-time kernel-neutral automaton
    construction that later kernels reuse for free.
    """
    scenario = get_scenario(name)
    if scenario.kind not in DECISION_KINDS:
        return
    payload = scenario.build()
    program, goal = payload["program"], payload["goal"]
    unions = []
    if scenario.kind == "containment":
        unions.append(payload["union"])
    elif scenario.kind == "equivalence":
        unions.append(unfold_nonrecursive(
            payload["nonrecursive"],
            payload.get("nonrecursive_goal") or goal))
    elif scenario.kind == "boundedness":
        unions.extend(
            expansion_union(program, goal, depth)
            for depth in range(1, payload.get("max_depth", 3) + 1))
    warm_shared_caches(program, goal)
    for union in unions:
        warm_shared_caches(program, goal, union)


def run_shard(jobs: Sequence[Job]) -> List[Dict]:
    """Execute a shard of jobs in the current process, in order.

    In warm mode each scenario's shared caches are pre-built once
    (before its first job) so the recorded per-job seconds are
    steady-state; cold jobs clear the caches themselves in
    :func:`execute_job`.
    """
    records: List[Dict] = []
    warmed: set = set()
    for job in jobs:
        if job.cache == "warm" and job.scenario not in warmed:
            _warm_scenario(job.scenario)
            warmed.add(job.scenario)
        records.append(execute_job(job))
    return records


def shard_jobs(jobs: Sequence[Job], workers: int) -> List[List[Job]]:
    """Deal jobs to *workers* shards, keeping each scenario's group of
    jobs whole (cache affinity).

    Groups are assigned heaviest-first (longest-processing-time
    greedy, using the scenarios' static ``weight`` hints times the
    group size) to the currently lightest shard; ties break on sorted
    scenario name and lowest shard index, so the assignment is fully
    deterministic.  Empty shards are dropped.
    """
    groups: Dict[str, List[Job]] = {}
    for job in jobs:
        groups.setdefault(job.scenario, []).append(job)
    order = sorted(
        groups,
        key=lambda name: (-get_scenario(name).weight * len(groups[name]), name),
    )
    shards: List[List[Job]] = [[] for _ in range(max(1, workers))]
    loads = [0.0] * len(shards)
    for name in order:
        lightest = min(range(len(shards)), key=lambda i: (loads[i], i))
        shards[lightest].extend(groups[name])
        loads[lightest] += get_scenario(name).weight * len(groups[name])
    return [shard for shard in shards if shard]


def run_batch(jobs: Sequence[Job], workers: int = 1) -> List[Dict]:
    """Execute *jobs*, serially (``workers <= 1``) or sharded across a
    process pool, returning records **in job order** either way."""
    jobs = list(jobs)
    if workers <= 1:
        records = run_shard(jobs)
    else:
        shards = shard_jobs(jobs, workers)
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            records = [record
                       for shard_records in pool.map(run_shard, shards)
                       for record in shard_records]
    by_key = {(r["scenario"], r["engine"], r["kernel"], r["cache"]): r
              for r in records}
    return [by_key[(j.scenario, j.engine, j.kernel, j.cache)] for j in jobs]


def verdicts(records: Sequence[Dict]) -> List[Tuple[str, str, str, str]]:
    """The comparable core of a batch: ``(scenario, engine, kernel,
    repr(verdict))`` per record, in order.  Two runs of the same matrix
    -- serial vs parallel, N vs M workers -- must produce equal lists
    (asserted by ``tests/test_runner.py`` and the CLI's
    ``--verify-serial``)."""
    return [(r["scenario"], r["engine"], r["kernel"], repr(r["verdict"]))
            for r in records]


def select_scenarios(spec: str) -> List[str]:
    """Resolve a CLI scenario spec to sorted registry names.

    ``all`` -- every scenario; ``kind:<kind>`` / ``tag:<tag>`` --
    filtered; otherwise a comma-separated list of names (each
    validated)."""
    if spec == "all":
        return scenario_names()
    if spec.startswith("kind:"):
        names = scenario_names(kind=spec[len("kind:"):])
    elif spec.startswith("tag:"):
        names = scenario_names(tag=spec[len("tag:"):])
    else:
        names = sorted(spec.split(","))
        for name in names:
            get_scenario(name)
    if not names:
        raise ValueError(f"scenario spec {spec!r} selected nothing")
    return names
