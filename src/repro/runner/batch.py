"""The batch decision service: scenario matrices, sharded.

This module turns the scenario registry
(:mod:`repro.workloads.scenarios`) into a **job matrix** -- scenario x
:class:`~repro.datalog.engine.EngineConfig` x
:class:`~repro.automata.kernel.KernelConfig` -- and executes it either
serially or sharded across a :class:`concurrent.futures.ProcessPoolExecutor`.

Design points (each load-bearing for correctness or fairness):

* **Deterministic job ordering.**  Jobs are sorted by ``(scenario,
  engine, kernel)`` and results are returned in job order regardless
  of which worker finished first, so a parallel run is comparable to a
  serial run entry-by-entry (``verdicts`` below, and the differential
  test in ``tests/test_runner.py``).
* **Jobs travel by name.**  A job is four strings; workers rebuild
  payloads from the registry, so nothing heavyweight crosses the
  process boundary and every worker constructs bit-identical inputs.
* **Scenario-affine sharding.**  Jobs are grouped by scenario and the
  groups are dealt round-robin across workers, so all cells of one
  scenario (both kernels, both engines) land in the same process and
  share its ``shared_*`` caches -- the same reuse a serial run gets.
  Sharding whole groups (rather than ``pool.map`` over single jobs)
  is what makes N workers genuinely divide the work: the expensive
  per-program derivations happen once per scenario *somewhere*, not
  once per worker.
* **Cache lifecycle.**  Jobs run inside per-worker
  :class:`~repro.session.Session` objects (one per engine label), so
  every cache a job touches -- automaton factories, EDB images,
  compiled plans -- belongs to a session scope.  In ``warm`` mode the
  session pre-warms each scenario's caches
  (:meth:`~repro.session.Session.warm`) before timing its jobs, so
  per-job seconds reflect the steady state of a long-running service.
  In ``cold`` mode every job gets a *fresh* session (and the worker's
  warm sessions are discarded), measuring cold-start behaviour fairly
  without having to mutate any process-global state.
* **Decisions cross the process boundary.**  Workers return
  :class:`~repro.session.Decision` objects (payloads stripped), not
  ad-hoc tuples; the CLI serializes them via ``Decision.record()``.
* **Self-checking.**  Every job's verdict is compared against the
  scenario's constructed ground truth; a batch with any ``ok=False``
  entry exits nonzero from the CLI.
* **Resilience.**  The parallel path runs under the
  :mod:`repro.resilience` supervisor: a worker crash no longer aborts
  the batch -- the pool is respawned and the dead shard's jobs retry
  in isolation, with bounded attempts and quarantine records
  (``Decision.error`` set, exit code 2 from the CLI) for jobs that
  never succeed.  A :class:`~repro.resilience.ResilienceConfig` adds
  per-job deadlines, the degradation ladder (failed jobs retry one
  rung down: columnar -> compiled -> interpretive, bitset ->
  frozenset), and deterministic chaos injection for the fault tests.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from ..automata.kernel import KernelConfig
from ..budget import disarm_alarm, time_budget
from ..datalog.engine import EngineConfig
from ..resilience import (
    ResilienceConfig,
    classify_failure,
    ladder_rungs,
    rung_label,
    run_supervised,
)
from ..resilience import chaos as _chaos
from ..resilience.supervisor import beat as _beat
from ..session import Decision, Session
from ..snapshot import configured_dir, restore_session, save_snapshot
from ..workloads.scenarios import (
    DECISION_KINDS,
    get_scenario,
    scenario_names,
)

#: Named engine configurations the matrix can range over.  "columnar"
#: is the shipped default (batch join kernels over column stores);
#: "compiled" pins the row-at-a-time PlanStore reference; "interpretive"
#: is the original per-tuple evaluator.
ENGINE_CONFIGS: Dict[str, EngineConfig] = {
    "columnar": EngineConfig(compiled=True, backend="columnar"),
    "compiled": EngineConfig(compiled=True, backend="rows"),
    "interpretive": EngineConfig(compiled=False),
}

#: Named kernel configurations the matrix can range over.
KERNEL_CONFIGS: Dict[str, KernelConfig] = {
    "bitset": KernelConfig(backend="bitset"),
    "frozenset": KernelConfig(backend="frozenset"),
}

CACHE_MODES = ("warm", "cold")


@dataclass(frozen=True, order=True)
class Job:
    """One cell of the scenario matrix (all fields are strings, so a
    job pickles trivially and sorts deterministically)."""

    scenario: str
    engine: str
    kernel: str
    cache: str = "warm"


def build_jobs(scenarios: Sequence[str],
               engines: Sequence[str] = ("compiled",),
               kernels: Sequence[str] = ("bitset", "frozenset"),
               cache: str = "warm") -> List[Job]:
    """The deterministic job matrix for *scenarios*.

    Decision scenarios (containment / equivalence / boundedness) range
    over *kernels* -- the automaton backend is what their verdicts
    exercise -- and run on the first engine (the engine only powers
    probes and backward containments).  Evaluation and magic scenarios
    range over *engines* and ignore the kernel.  ``cache`` is stamped
    on every job; mixing modes inside one batch is deliberately not
    offered (it would reintroduce the unfair sharing this layer
    exists to prevent).

    Scenarios tagged ``scale`` (10^5-fact EDBs) or ``stress`` (the
    lower-bound evaluation blow-ups) drop the interpretive engine from
    their matrix cells -- per-tuple evaluation takes minutes there,
    and ``--scenarios all`` must stay runnable.  Asking for *only* the
    interpretive engine is honored (an explicit request), and both
    tiers can always be excluded by tag.
    """
    if cache not in CACHE_MODES:
        raise ValueError(f"unknown cache mode {cache!r}; expected {CACHE_MODES}")
    for label in engines:
        if label not in ENGINE_CONFIGS:
            raise ValueError(f"unknown engine {label!r}; "
                             f"known: {sorted(ENGINE_CONFIGS)}")
    for label in kernels:
        if label not in KERNEL_CONFIGS:
            raise ValueError(f"unknown kernel {label!r}; "
                             f"known: {sorted(KERNEL_CONFIGS)}")
    jobs: List[Job] = []
    for name in scenarios:
        scenario = get_scenario(name)
        if scenario.kind in DECISION_KINDS:
            jobs.extend(Job(name, engines[0], kernel, cache)
                        for kernel in kernels)
        else:
            scenario_engines = engines
            if {"scale", "stress"} & set(scenario.tags):
                compiled = [e for e in engines if e != "interpretive"]
                scenario_engines = compiled or engines
            jobs.extend(Job(name, engine, kernels[0], cache)
                        for engine in scenario_engines)
    return sorted(jobs)


# ----------------------------------------------------------------------
# Worker-side execution.
# ----------------------------------------------------------------------

# Per-process warm sessions, one per engine label: reused across warm
# jobs so compiled plans and automaton caches amortize, discarded (and
# replaced by fresh private sessions) in cold mode.  Decision jobs all
# run on the matrix's first engine, so the kernel-neutral automaton
# caches are shared across that scenario's kernel cells exactly as a
# serial run would share them.
_SESSIONS: Dict[str, Session] = {}


def worker_session(label: str, cache: str = "warm",
                   sessions: Optional[Dict[str, Session]] = None,
                   name: str = "runner",
                   kernel: Optional[str] = None) -> Session:
    """The per-worker :class:`~repro.session.Session` for an engine
    label: reused across warm jobs (compiled plans and automaton
    caches amortize), fresh and private in cold mode.

    *sessions* overrides the store the warm sessions live in (default:
    this module's per-process dict) -- the decision service passes a
    per-thread store so its thread-executor workers stay isolated
    while sharing this lifecycle.  *kernel* pins the session's kernel
    config (and joins the store key), so decisions report the exact
    (engine, kernel) fingerprint; ``None`` keeps the batch runner's
    behaviour of one session per engine with per-call kernels.
    """
    key = label if kernel is None else f"{label}/{kernel}"
    kernel_config = None if kernel is None else KERNEL_CONFIGS[kernel]
    if cache == "cold":
        return Session(engine=ENGINE_CONFIGS[label], kernel=kernel_config,
                       cache="private", name=f"{name}-cold-{key}")
    store = _SESSIONS if sessions is None else sessions
    session = store.get(key)
    if session is None:
        session = store[key] = Session(
            engine=ENGINE_CONFIGS[label], kernel=kernel_config,
            cache="private", name=f"{name}-{key}")
        # A freshly spawned (or respawned) worker skips cold start
        # when a warm-state snapshot for this config is on disk
        # (no-op unless REPRO_SNAPSHOT_DIR / --snapshot-dir is set).
        restore_session(session)
    return session


def _session_for(label: str, cache: str) -> Session:
    return worker_session(label, cache)


def _run_cell(job: Job, engine_label: str, kernel_label: str,
              deadline: Optional[float] = None) -> Decision:
    """Run *job*'s scenario on an explicit (engine, kernel) -- the
    job's own configuration normally, a ladder rung on degraded
    retries.  ``meta`` always carries the *requested* cell (the batch
    reassembles results by it); :attr:`~repro.session.Decision.degraded_to`
    records the answering rung when they differ."""
    scenario = get_scenario(job.scenario)
    if job.cache == "cold":
        _SESSIONS.clear()
    session = _session_for(engine_label, job.cache)
    kernel = KERNEL_CONFIGS[kernel_label]
    start = time.perf_counter()
    decision = session.run_scenario(scenario, kernel=kernel,
                                    deadline=deadline)
    seconds = time.perf_counter() - start
    decision.meta.update({
        "scenario": job.scenario,
        "kind": scenario.kind,
        "engine": job.engine,
        "kernel": job.kernel,
        "cache": job.cache,
        "seconds": round(seconds, 6),
        "pid": os.getpid(),
    })
    return decision.without_payload()


def run_decision(job: Job) -> Decision:
    """Run one job in the current process and return its
    :class:`~repro.session.Decision`.

    The decision's ``meta`` carries the matrix cell and the wall-clock
    seconds for the whole scenario run (payload construction included
    -- scenario builds are part of the served work); its payload
    (``certificate``/``raw``) is stripped so decisions pickle cheaply
    across the process pool.
    """
    return _run_cell(job, job.engine, job.kernel)


def quarantine_decision(job: Job, *, attempts: int, category: str,
                        message: str) -> Decision:
    """The ``Decision``-shaped error record of a job abandoned after
    exhausting its retries: ``verdict={"error": category}``,
    ``ok=None`` (no ground-truth claim), :attr:`Decision.error` set.
    The batch stays whole -- one poisoned cell yields one quarantine
    record, not an aborted run."""
    kind = get_scenario(job.scenario).kind
    return Decision(
        kind=kind,
        verdict={"error": category},
        ok=None,
        stats={"failure": message},
        error=category,
        attempts=attempts,
        meta={
            "scenario": job.scenario,
            "kind": kind,
            "engine": job.engine,
            "kernel": job.kernel,
            "cache": job.cache,
            "seconds": 0.0,
            "pid": os.getpid(),
        },
    )


def run_job_resilient(job: Job, resilience: ResilienceConfig,
                      attempt: int = 1) -> Decision:
    """Run one job under the resilience policy: chaos injection, the
    per-job deadline, and the degradation ladder.

    Tries start at *attempt* (>1 when the supervisor resubmits a job
    whose worker died) and walk the ladder one rung per failure --
    staying on the last rung once the ladder is exhausted -- until a
    try succeeds or ``max_attempts`` total tries are spent, at which
    point the job is quarantined in place.  Worker death is the one
    failure this function cannot absorb: a ``crash`` fault inside a
    real pool worker exits the process and becomes the supervisor's
    problem (in a serial run it raises and is retried here like any
    other failure).
    """
    schedule = (resilience.chaos if resilience.chaos is not None
                else _chaos.from_env())
    decision_kind = get_scenario(job.scenario).kind in DECISION_KINDS
    if resilience.ladder:
        rungs = ladder_rungs(job.engine, job.kernel, decision_kind)
    else:
        rungs = [(job.engine, job.kernel)]
    requested = rung_label(job.engine, job.kernel)
    failures: List[str] = []
    last_category = "error"
    rung_index = 0
    while attempt <= resilience.max_attempts:
        engine_label, kernel_label = rungs[min(rung_index,
                                               len(rungs) - 1)]
        _beat()
        nth = _chaos.next_job_index()
        try:
            # The outer budget covers chaos injection too: a planted
            # hang is interruptible by the same deadline as the cell
            # it delays.
            with time_budget(resilience.deadline_s):
                _chaos.inject(job.scenario, nth, attempt,
                              schedule=schedule)
                decision = _run_cell(job, engine_label, kernel_label,
                                     deadline=resilience.deadline_s)
        except Exception as exc:
            failures.append(f"attempt {attempt} "
                            f"[{engine_label}/{kernel_label}] "
                            f"{classify_failure(exc)}: {exc}")
            last_category = classify_failure(exc)
            attempt += 1
            rung_index += 1
            continue
        finally:
            _beat()
        decision.attempts = attempt
        answered = rung_label(engine_label, kernel_label)
        if answered != requested:
            decision.degraded_to = answered
        if failures:
            decision.stats.setdefault("retried_after", list(failures))
        return decision
    return quarantine_decision(
        job, attempts=attempt - 1, category=last_category,
        message="; ".join(failures),
    )


def execute_job(job: Job) -> Dict:
    """Run one job and return its JSON-serializable trajectory record
    (the :meth:`~repro.session.Decision.record` of
    :func:`run_decision` -- kept for callers that want plain dicts)."""
    return run_decision(job).record()


def run_shard(jobs: Sequence[Job],
              resilience: Optional[ResilienceConfig] = None) -> List[Decision]:
    """Execute a shard of jobs in the current process, in order.

    In warm mode each scenario's session caches are pre-built once
    (before its first job, via :meth:`~repro.session.Session.warm`) so
    the recorded per-job seconds are steady-state -- without this, the
    first kernel's seconds would absorb one-time kernel-neutral
    automaton construction that later kernels reuse for free.  Cold
    jobs get fresh sessions in :func:`run_decision` instead.

    With a *resilience* config, jobs run through
    :func:`run_job_resilient` (chaos injection, deadline, degradation
    ladder, in-place quarantine); without one, failures propagate as
    they always did.
    """
    decisions: List[Decision] = []
    warmed: set = set()
    for job in jobs:
        if job.cache == "warm" and job.scenario not in warmed:
            _session_for(job.engine, job.cache).warm(scenario=job.scenario)
            warmed.add(job.scenario)
        if resilience is None:
            decisions.append(run_decision(job))
        else:
            decisions.append(run_job_resilient(job, resilience))
    if configured_dir():
        # Persist this worker's warm sessions for the next run (or a
        # respawned successor).  Concurrent shards racing on one key
        # are safe: writes are atomic, last writer wins.
        for session in _SESSIONS.values():
            save_snapshot(session)
    return decisions


def _run_isolated(job: Job, attempt: int,
                  resilience: ResilienceConfig) -> Decision:
    """Supervisor retry entry point: one job, alone, in whatever
    worker picks it up (warm its scenario first so the cache mode's
    semantics survive the respawn)."""
    if job.cache == "warm":
        _session_for(job.engine, job.cache).warm(scenario=job.scenario)
    return run_job_resilient(job, resilience, attempt=attempt)


def _worker_init() -> None:
    """Pool-worker initializer (runs on every spawn *and* respawn):
    a respawned worker must not inherit a dying incarnation's armed
    itimer -- a stale alarm would kill its first retried job at an
    arbitrary point -- and must know it is a worker so ``crash``
    faults really exit."""
    disarm_alarm()
    _chaos.mark_worker()


def shard_jobs(jobs: Sequence[Job], workers: int) -> List[List[Job]]:
    """Deal jobs to *workers* shards, keeping each scenario's group of
    jobs whole (cache affinity).

    Groups are assigned heaviest-first (longest-processing-time
    greedy, using the scenarios' static ``weight`` hints times the
    group size) to the currently lightest shard; ties break on sorted
    scenario name and lowest shard index, so the assignment is fully
    deterministic.  Empty shards are dropped.
    """
    groups: Dict[str, List[Job]] = {}
    for job in jobs:
        groups.setdefault(job.scenario, []).append(job)
    order = sorted(
        groups,
        key=lambda name: (-get_scenario(name).weight * len(groups[name]), name),
    )
    shards: List[List[Job]] = [[] for _ in range(max(1, workers))]
    loads = [0.0] * len(shards)
    for name in order:
        lightest = min(range(len(shards)), key=lambda i: (loads[i], i))
        shards[lightest].extend(groups[name])
        loads[lightest] += get_scenario(name).weight * len(groups[name])
    return [shard for shard in shards if shard]


def run_batch(jobs: Sequence[Job], workers: int = 1,
              resilience: Optional[ResilienceConfig] = None) -> List[Decision]:
    """Execute *jobs*, serially (``workers <= 1``) or sharded across a
    supervised process pool, returning
    :class:`~repro.session.Decision` objects **in job order** either
    way.  Decisions are dict-compatible, so consumers index
    ``record["verdict"]`` etc. unchanged; call ``.record()`` for a
    plain JSON dict.

    The parallel path is always supervised (worker crashes respawn the
    pool and retry the dead shard's jobs instead of aborting the
    batch); *resilience* tunes the policy -- deadline, retry budget,
    ladder, chaos schedule -- and additionally arms the serial path's
    per-job recovery.  Jobs that exhaust their retries come back as
    quarantine records (``Decision.error`` set), never as a missing
    row.
    """
    jobs = list(jobs)
    if workers <= 1:
        records = run_shard(jobs, resilience)
    else:
        config = resilience or ResilienceConfig()
        shards = shard_jobs(jobs, workers)
        outcome = run_supervised(
            shards,
            partial(run_shard, resilience=config),
            partial(_run_isolated, resilience=config),
            max_workers=len(shards),
            policy=config.policy(),
            initializer=_worker_init,
            stall_timeout_s=config.stall_timeout_s,
            job_key=lambda job: f"{job.scenario}/{job.engine}/"
                                f"{job.kernel}/{job.cache}",
        )
        records = list(outcome.results)
        records.extend(
            quarantine_decision(q.job, attempts=q.attempts,
                                category=q.category, message=q.message)
            for q in outcome.quarantined
        )
    by_key = {(r["scenario"], r["engine"], r["kernel"], r["cache"]): r
              for r in records}
    return [by_key[(j.scenario, j.engine, j.kernel, j.cache)] for j in jobs]


def verdicts(records: Sequence[Dict]) -> List[Tuple[str, str, str, str]]:
    """The comparable core of a batch: ``(scenario, engine, kernel,
    repr(verdict))`` per record, in order.  Two runs of the same matrix
    -- serial vs parallel, N vs M workers -- must produce equal lists
    (asserted by ``tests/test_runner.py`` and the CLI's
    ``--verify-serial``)."""
    return [(r["scenario"], r["engine"], r["kernel"], repr(r["verdict"]))
            for r in records]


def select_scenarios(spec: str) -> List[str]:
    """Resolve a CLI scenario spec to sorted registry names.

    ``all`` -- every scenario; ``kind:<kind>`` / ``tag:<tag>`` --
    filtered; otherwise a comma-separated list of names (each
    validated)."""
    if spec == "all":
        return scenario_names()
    if spec.startswith("kind:"):
        names = scenario_names(kind=spec[len("kind:"):])
    elif spec.startswith("tag:"):
        names = scenario_names(tag=spec[len("tag:"):])
    else:
        names = sorted(spec.split(","))
        for name in names:
            get_scenario(name)
    if not names:
        raise ValueError(f"scenario spec {spec!r} selected nothing")
    return names
