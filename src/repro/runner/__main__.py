"""``python -m repro.runner`` -- the scenario-matrix CLI.

(Also reachable as ``python -m repro scenarios``, the unified CLI's
subcommand; this module remains the implementation and a stable
alias.)

Runs the scenario registry across engine/kernel configurations,
serially or sharded over worker processes, checks every verdict
against constructed ground truth, and appends trajectory records to
``BENCH_automata.json`` (decision scenarios) and ``BENCH_plans.json``
(evaluation / magic scenarios).

Examples::

    python -m repro.runner --list
    python -m repro.runner --scenarios tag:bench --workers 4
    python -m repro.runner --scenarios kind:boundedness --kernels bitset
    python -m repro.runner --scenarios tag:bench --cache cold --no-write
    python -m repro.runner --scenarios tag:bench --workers 4 --verify-serial
    python -m repro.runner --scenarios tag:scale --engines columnar,compiled
    python -m repro.runner --scenarios tag:bench --deadline 30 \
        --chaos "crash:scenario=eval_tc_grid_10x10,attempt=1"

Exit status: 0 when every job answered and matched ground truth
(degraded rungs included); 1 when any verdict missed its ground truth
(or, under ``--verify-serial``, the parallel run disagreed with the
serial one); 2 when verdicts all held but one or more jobs were
quarantined after exhausting their retries.  See
``docs/BENCHMARKS.md`` and ``docs/RESILIENCE.md`` for the full
reference.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

from ..resilience import ERROR_CATEGORIES, ResilienceConfig, parse_schedule
from ..resilience.chaos import CHAOS_ENV
from .batch import (
    ENGINE_CONFIGS,
    KERNEL_CONFIGS,
    build_jobs,
    run_batch,
    select_scenarios,
    verdicts,
)
from .trajectory import (
    AUTOMATA_TRAJECTORY,
    PLANS_TRAJECTORY,
    append_trajectory,
    find_repo_root,
    run_metadata,
)
from ..workloads.scenarios import DECISION_KINDS, get_scenario

REPO_ROOT = find_repo_root()


def _parse_args(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Batch scenario runner: decision + evaluation matrix "
                    "across engine and kernel configurations.",
    )
    parser.add_argument("--scenarios", default="all",
                        help="'all', 'kind:<kind>', 'tag:<tag>', or a "
                             "comma-separated list of names (default: all)")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width; 1 = serial (default)")
    parser.add_argument("--engines", default="both",
                        help="comma list from {%s}, or 'both'/'all' for "
                             "every config (default: all)"
                             % ", ".join(sorted(ENGINE_CONFIGS)))
    parser.add_argument("--kernels", default="both",
                        help="comma list from {%s}, or 'both'/'all' "
                             "(default: both)" % ", ".join(sorted(KERNEL_CONFIGS)))
    parser.add_argument("--cache", choices=("warm", "cold"), default="warm",
                        help="cache lifecycle: warm (pre-built shared "
                             "caches) or cold (cleared before every job)")
    parser.add_argument("--verify-serial", action="store_true",
                        help="also run the matrix serially and fail on "
                             "any verdict difference")
    parser.add_argument("--list", action="store_true",
                        help="list the selected scenarios and exit")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for BENCH_*.json (default: repo "
                             "root)")
    parser.add_argument("--no-write", action="store_true",
                        help="skip the trajectory write (CI smoke)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-job wall-clock deadline in seconds "
                             "(enforced on and off the main thread)")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="total tries per job before quarantine "
                             "(default: 3)")
    parser.add_argument("--no-ladder", action="store_true",
                        help="retry failed jobs on their own rung "
                             "instead of degrading down the ladder")
    parser.add_argument("--chaos", default=None, metavar="SPEC",
                        help="fault-injection schedule, e.g. "
                             "'crash:scenario=X,attempt=1;hang:nth=2,"
                             "seconds=5' (also read from $%s)" % CHAOS_ENV)
    parser.add_argument("--quarantine-out", type=Path, default=None,
                        help="write quarantined job records to this "
                             "JSON file (CI artifact)")
    parser.add_argument("--snapshot-dir", type=Path, default=None,
                        metavar="DIR",
                        help="persist/restore warm session state "
                             "(compiled plans, EDB images, automaton "
                             "caches) under this directory, keyed by "
                             "config fingerprint (also read from "
                             "$REPRO_SNAPSHOT_DIR)")
    return parser.parse_args(argv)


def _resilience_config(args) -> ResilienceConfig | None:
    """The resilience policy implied by the CLI flags (None = legacy
    serial behavior; the parallel path is always supervised)."""
    wants = (args.deadline is not None or args.chaos is not None
             or args.no_ladder or args.max_attempts != 3
             or os.environ.get(CHAOS_ENV))
    if not wants:
        return None
    return ResilienceConfig(
        deadline_s=args.deadline,
        max_attempts=args.max_attempts,
        ladder=not args.no_ladder,
        chaos=parse_schedule(args.chaos) if args.chaos else None,
    )


def _labels(spec: str, table: Dict) -> List[str]:
    return sorted(table) if spec in ("both", "all") else spec.split(",")


def _print_error_summary(records: List[Dict]) -> None:
    """The per-error-category summary table (only printed when some
    job failed a try: quarantines, retries, or degradations)."""
    by_category: Dict[str, int] = {}
    retried = sum(1 for r in records if r["attempts"] > 1)
    degraded = sum(1 for r in records if r.get("degraded_to"))
    for record in records:
        error = record.get("error")
        if error is not None:
            by_category[error] = by_category.get(error, 0) + 1
    if not by_category and not retried and not degraded:
        return
    print("error summary:")
    print(f"  {'category':12s} {'quarantined':>11s}")
    for category in ERROR_CATEGORIES:
        if category in by_category:
            print(f"  {category:12s} {by_category[category]:>11d}")
    print(f"  jobs retried: {retried}, answered degraded: {degraded}, "
          f"quarantined: {sum(by_category.values())}")


def main(argv=None) -> int:
    args = _parse_args(argv)
    if args.snapshot_dir is not None:
        from ..snapshot import set_snapshot_dir
        set_snapshot_dir(str(args.snapshot_dir))
    names = select_scenarios(args.scenarios)
    if args.list:
        for name in names:
            scenario = get_scenario(name)
            print(f"{name:32s} {scenario.kind:12s} {scenario.description}")
        return 0

    engines = _labels(args.engines, ENGINE_CONFIGS)
    kernels = _labels(args.kernels, KERNEL_CONFIGS)
    jobs = build_jobs(names, engines=engines, kernels=kernels,
                      cache=args.cache)
    print(f"repro.runner: {len(names)} scenarios -> {len(jobs)} jobs "
          f"(engines {engines}, kernels {kernels}, cache {args.cache}, "
          f"workers {args.workers})")
    cores = os.cpu_count() or 1
    if args.workers > cores:
        print(f"note: {args.workers} workers on {cores} CPU core(s) -- "
              f"workers will time-slice; wall-clock speedup needs "
              f"workers <= cores")

    resilience = _resilience_config(args)
    start = time.perf_counter()
    decisions = run_batch(jobs, workers=args.workers,
                          resilience=resilience)
    wall = time.perf_counter() - start
    records = [decision.record() for decision in decisions]

    # ok=False is a verdict that missed ground truth; quarantined jobs
    # carry error!=None with ok=None (no verdict to check).
    failures = [r for r in records if r["ok"] is False]
    quarantined = [r for r in records if r.get("error") is not None]
    for record in records:
        if record.get("error") is not None:
            flag = "QUAR"
        else:
            flag = "ok " if record["ok"] else "FAIL"
        extra = ""
        if record["attempts"] > 1:
            extra += f"  attempts={record['attempts']}"
        if record.get("degraded_to"):
            extra += f"  degraded_to={record['degraded_to']}"
        print(f"  {flag} {record['scenario']:32s} "
              f"{record['engine']:12s} {record['kernel']:10s} "
              f"{record['seconds']*1000:9.1f}ms  {record['verdict']}"
              f"{extra}")
    print(f"total wall-clock {wall:.2f}s "
          f"(sum of job times {sum(r['seconds'] for r in records):.2f}s)")
    _print_error_summary(records)

    if args.quarantine_out is not None:
        args.quarantine_out.parent.mkdir(parents=True, exist_ok=True)
        args.quarantine_out.write_text(
            json.dumps(quarantined, indent=2, sort_keys=True) + "\n")
        print(f"wrote {len(quarantined)} quarantine record(s) to "
              f"{args.quarantine_out}")

    if args.verify_serial:
        serial_start = time.perf_counter()
        serial_records = run_batch(jobs, workers=1, resilience=resilience)
        serial_wall = time.perf_counter() - serial_start
        if verdicts(serial_records) != verdicts(decisions):
            print("FAIL: parallel verdicts differ from serial execution")
            return 1
        print(f"verified against serial run ({serial_wall:.2f}s wall; "
              f"parallel was {wall:.2f}s)")

    if not args.no_write:
        out_dir = args.out or REPO_ROOT
        out_dir.mkdir(parents=True, exist_ok=True)
        meta = run_metadata(REPO_ROOT)
        runner_meta = {"workers": args.workers, "cache": args.cache,
                       "engines": engines, "kernels": kernels,
                       "wall_s": round(wall, 3), "source": "repro.runner"}
        decision = [r for r in records if r["kind"] in DECISION_KINDS]
        evaluation = [r for r in records if r["kind"] not in DECISION_KINDS]
        if decision:
            append_trajectory(out_dir / AUTOMATA_TRAJECTORY,
                              {**meta, "runner": runner_meta,
                               "entries": decision})
        if evaluation:
            append_trajectory(out_dir / PLANS_TRAJECTORY,
                              {**meta, "runner": runner_meta,
                               "entries": evaluation})
        print(f"wrote trajectories under {out_dir}")

    if failures:
        print(f"FAIL: {len(failures)} job(s) missed ground truth")
        return 1
    if quarantined:
        print(f"QUARANTINED: {len(quarantined)} job(s) abandoned after "
              f"retries (verdicts that answered all held)")
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
