"""``python -m repro.runner`` -- the scenario-matrix CLI.

(Also reachable as ``python -m repro scenarios``, the unified CLI's
subcommand; this module remains the implementation and a stable
alias.)

Runs the scenario registry across engine/kernel configurations,
serially or sharded over worker processes, checks every verdict
against constructed ground truth, and appends trajectory records to
``BENCH_automata.json`` (decision scenarios) and ``BENCH_plans.json``
(evaluation / magic scenarios).

Examples::

    python -m repro.runner --list
    python -m repro.runner --scenarios tag:bench --workers 4
    python -m repro.runner --scenarios kind:boundedness --kernels bitset
    python -m repro.runner --scenarios tag:bench --cache cold --no-write
    python -m repro.runner --scenarios tag:bench --workers 4 --verify-serial
    python -m repro.runner --scenarios tag:scale --engines columnar,compiled

Exit status is nonzero when any verdict misses its ground truth or
(under ``--verify-serial``) the parallel run disagrees with the serial
one.  See ``docs/BENCHMARKS.md`` for the full reference.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

from .batch import (
    ENGINE_CONFIGS,
    KERNEL_CONFIGS,
    build_jobs,
    run_batch,
    select_scenarios,
    verdicts,
)
from .trajectory import (
    AUTOMATA_TRAJECTORY,
    PLANS_TRAJECTORY,
    append_trajectory,
    find_repo_root,
    run_metadata,
)
from ..workloads.scenarios import DECISION_KINDS, get_scenario

REPO_ROOT = find_repo_root()


def _parse_args(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Batch scenario runner: decision + evaluation matrix "
                    "across engine and kernel configurations.",
    )
    parser.add_argument("--scenarios", default="all",
                        help="'all', 'kind:<kind>', 'tag:<tag>', or a "
                             "comma-separated list of names (default: all)")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width; 1 = serial (default)")
    parser.add_argument("--engines", default="both",
                        help="comma list from {%s}, or 'both'/'all' for "
                             "every config (default: all)"
                             % ", ".join(sorted(ENGINE_CONFIGS)))
    parser.add_argument("--kernels", default="both",
                        help="comma list from {%s}, or 'both'/'all' "
                             "(default: both)" % ", ".join(sorted(KERNEL_CONFIGS)))
    parser.add_argument("--cache", choices=("warm", "cold"), default="warm",
                        help="cache lifecycle: warm (pre-built shared "
                             "caches) or cold (cleared before every job)")
    parser.add_argument("--verify-serial", action="store_true",
                        help="also run the matrix serially and fail on "
                             "any verdict difference")
    parser.add_argument("--list", action="store_true",
                        help="list the selected scenarios and exit")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for BENCH_*.json (default: repo "
                             "root)")
    parser.add_argument("--no-write", action="store_true",
                        help="skip the trajectory write (CI smoke)")
    return parser.parse_args(argv)


def _labels(spec: str, table: Dict) -> List[str]:
    return sorted(table) if spec in ("both", "all") else spec.split(",")


def main(argv=None) -> int:
    args = _parse_args(argv)
    names = select_scenarios(args.scenarios)
    if args.list:
        for name in names:
            scenario = get_scenario(name)
            print(f"{name:32s} {scenario.kind:12s} {scenario.description}")
        return 0

    engines = _labels(args.engines, ENGINE_CONFIGS)
    kernels = _labels(args.kernels, KERNEL_CONFIGS)
    jobs = build_jobs(names, engines=engines, kernels=kernels,
                      cache=args.cache)
    print(f"repro.runner: {len(names)} scenarios -> {len(jobs)} jobs "
          f"(engines {engines}, kernels {kernels}, cache {args.cache}, "
          f"workers {args.workers})")
    cores = os.cpu_count() or 1
    if args.workers > cores:
        print(f"note: {args.workers} workers on {cores} CPU core(s) -- "
              f"workers will time-slice; wall-clock speedup needs "
              f"workers <= cores")

    start = time.perf_counter()
    decisions = run_batch(jobs, workers=args.workers)
    wall = time.perf_counter() - start
    records = [decision.record() for decision in decisions]

    failures = [r for r in records if not r["ok"]]
    for record in records:
        flag = "ok " if record["ok"] else "FAIL"
        print(f"  {flag} {record['scenario']:32s} "
              f"{record['engine']:12s} {record['kernel']:10s} "
              f"{record['seconds']*1000:9.1f}ms  {record['verdict']}")
    print(f"total wall-clock {wall:.2f}s "
          f"(sum of job times {sum(r['seconds'] for r in records):.2f}s)")

    if args.verify_serial:
        serial_start = time.perf_counter()
        serial_records = run_batch(jobs, workers=1)
        serial_wall = time.perf_counter() - serial_start
        if verdicts(serial_records) != verdicts(decisions):
            print("FAIL: parallel verdicts differ from serial execution")
            return 2
        print(f"verified against serial run ({serial_wall:.2f}s wall; "
              f"parallel was {wall:.2f}s)")

    if not args.no_write:
        out_dir = args.out or REPO_ROOT
        out_dir.mkdir(parents=True, exist_ok=True)
        meta = run_metadata(REPO_ROOT)
        runner_meta = {"workers": args.workers, "cache": args.cache,
                       "engines": engines, "kernels": kernels,
                       "wall_s": round(wall, 3), "source": "repro.runner"}
        decision = [r for r in records if r["kind"] in DECISION_KINDS]
        evaluation = [r for r in records if r["kind"] not in DECISION_KINDS]
        if decision:
            append_trajectory(out_dir / AUTOMATA_TRAJECTORY,
                              {**meta, "runner": runner_meta,
                               "entries": decision})
        if evaluation:
            append_trajectory(out_dir / PLANS_TRAJECTORY,
                              {**meta, "runner": runner_meta,
                               "entries": evaluation})
        print(f"wrote trajectories under {out_dir}")

    if failures:
        print(f"FAIL: {len(failures)} job(s) missed ground truth")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
