"""Datalog substrate: language, parser, databases, evaluation, analysis.

This subpackage implements everything the paper assumes about Datalog
itself (Section 2.1): the rule language, bottom-up evaluation, the
dependence graph with its recursion/linearity classification, and the
rewriting of nonrecursive programs into unions of conjunctive queries.
"""

from .atoms import Atom, make_atom
from .database import Database
from .engine import (
    Engine,
    EngineConfig,
    EvaluationResult,
    clear_default_plan_cache,
    default_engine,
    evaluate,
    naive_evaluate,
    query,
    seminaive_evaluate,
)
from .plan import JoinPlan, PlanCache, PlanStore, compile_program
from .columns import (
    ColumnStore,
    clear_edb_images,
    columnar_naive,
    columnar_seminaive,
    edb_image,
)
from .errors import (
    ArityError,
    EvaluationError,
    NotLinearError,
    NotNonrecursiveError,
    ParseError,
    ReproError,
    UnsafeProgramError,
    ValidationError,
)
from .parser import parse_atom, parse_program, parse_rule
from .printer import program_to_source, rule_to_source
from .program import Program
from .rules import Rule
from .terms import Constant, FreshVariableFactory, Term, Variable
from .analysis import (
    dependence_graph,
    is_linear,
    is_nonrecursive,
    is_recursive,
    recursive_predicates,
    slice_for_goal,
    strongly_connected_components,
    topological_order,
)
from .magic import MagicRewriting, derived_fact_count, magic_query, magic_rewrite
from .unfold import count_expansions, expansion_union, expansions, unfold_nonrecursive
from .uniform import (
    rule_uniformly_subsumed,
    uniformly_contained_in,
    uniformly_equivalent,
)

__all__ = [
    "ArityError",
    "Atom",
    "ColumnStore",
    "Constant",
    "Database",
    "Engine",
    "EngineConfig",
    "EvaluationError",
    "EvaluationResult",
    "FreshVariableFactory",
    "JoinPlan",
    "MagicRewriting",
    "NotLinearError",
    "NotNonrecursiveError",
    "ParseError",
    "PlanCache",
    "PlanStore",
    "Program",
    "ReproError",
    "Rule",
    "Term",
    "UnsafeProgramError",
    "ValidationError",
    "Variable",
    "clear_default_plan_cache",
    "clear_edb_images",
    "columnar_naive",
    "columnar_seminaive",
    "compile_program",
    "count_expansions",
    "default_engine",
    "dependence_graph",
    "derived_fact_count",
    "edb_image",
    "evaluate",
    "expansion_union",
    "expansions",
    "is_linear",
    "is_nonrecursive",
    "is_recursive",
    "magic_query",
    "magic_rewrite",
    "make_atom",
    "naive_evaluate",
    "parse_atom",
    "parse_program",
    "parse_rule",
    "program_to_source",
    "query",
    "recursive_predicates",
    "rule_to_source",
    "rule_uniformly_subsumed",
    "seminaive_evaluate",
    "slice_for_goal",
    "strongly_connected_components",
    "topological_order",
    "unfold_nonrecursive",
    "uniformly_contained_in",
    "uniformly_equivalent",
]
