"""Unfolding Datalog programs into (unions of) conjunctive queries.

Two operations from the paper:

* :func:`unfold_nonrecursive` rewrites a nonrecursive program as a
  finite union of conjunctive queries (Section 2.1).  The union may be
  exponentially larger than the program -- that blowup is the subject of
  Section 6 (Examples 6.1 and 6.6) and is measured by the succinctness
  benchmarks.
* :func:`expansions` enumerates the conjunctive queries corresponding
  to unfolding expansion trees (Definition 2.4) of a *recursive*
  program up to a height bound.  The infinite sequence of expansions
  underlies ``Q_Pi(D) = union of expansions (D)`` (Proposition 2.6) and
  the boundedness semi-decision procedure.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from .analysis import is_recursive, slice_for_goal, topological_order
from .atoms import Atom
from .errors import NotNonrecursiveError
from .program import Program
from .terms import FreshVariableFactory, Variable
from .unify import Substitution, apply_to_atom, apply_to_atoms, unify_tuples


def _goal_head(program: Program, goal: str) -> Atom:
    arity = program.arity[goal]
    return Atom(goal, tuple(Variable(f"X{i}") for i in range(arity)))


def _rename_query(query: ConjunctiveQuery, factory: FreshVariableFactory) -> ConjunctiveQuery:
    """Rename every variable of *query* with globally fresh ones.

    Using one factory for the whole unfolding guarantees no accidental
    capture between successive template instantiations, including
    variables that survive only inside the substitution."""
    mapping = {v: factory.fresh() for v in sorted(query.variables, key=lambda v: v.name)}
    return query.substitute(mapping)


def unfold_nonrecursive(program: Program, goal: str,
                        dedupe: bool = True) -> UnionOfConjunctiveQueries:
    """Rewrite a nonrecursive program as a union of conjunctive queries.

    The result has head ``goal(X0, ..., Xk-1)`` with distinct
    distinguished variables.  Raises :class:`NotNonrecursiveError` on
    recursive input.  With ``dedupe`` (default) syntactic duplicates
    (up to the heuristic canonical renaming) are removed.
    """
    program.require_goal(goal)
    sliced = slice_for_goal(program, goal)
    if is_recursive(sliced):
        raise NotNonrecursiveError("cannot unfold a recursive program into a finite union")

    factory = FreshVariableFactory(prefix="U")
    idb = sliced.idb_predicates
    # templates[p] holds CQs with head p(...) whose bodies are EDB-only.
    templates: Dict[str, List[ConjunctiveQuery]] = {}

    for predicate in topological_order(sliced):
        expansions_for: List[ConjunctiveQuery] = []
        for rule in sliced.rules_for(predicate):
            fresh_rule = rule.rename_apart(factory)
            # Partial states: (substitution, collected EDB atoms).
            states: List[Tuple[Substitution, Tuple[Atom, ...]]] = [({}, ())]
            for atom in fresh_rule.body:
                if atom.predicate not in idb:
                    states = [(subst, collected + (atom,)) for subst, collected in states]
                    continue
                next_states: List[Tuple[Substitution, Tuple[Atom, ...]]] = []
                for subst, collected in states:
                    call = apply_to_atom(atom, subst)
                    for template in templates.get(atom.predicate, ()):
                        renamed = _rename_query(template, factory)
                        unified = unify_tuples(renamed.head.args, call.args, subst)
                        if unified is None:
                            continue
                        next_states.append((unified, collected + renamed.body))
                states = next_states
                if not states:
                    break
            for subst, collected in states:
                head = apply_to_atom(fresh_rule.head, subst)
                body = apply_to_atoms(collected, subst)
                expansions_for.append(ConjunctiveQuery(head, body))
        templates[predicate] = expansions_for

    head = _goal_head(program, goal)
    factory.avoid(v.name for v in head.variable_set())
    disjuncts: List[ConjunctiveQuery] = []
    for template in templates.get(goal, ()):
        renamed = _rename_query(template, factory)
        unified = unify_tuples(renamed.head.args, head.args, {})
        if unified is None:
            continue
        disjuncts.append(
            ConjunctiveQuery(apply_to_atom(head, unified), apply_to_atoms(renamed.body, unified))
        )
    union = UnionOfConjunctiveQueries(disjuncts, arity=head.arity)
    return union.deduplicated() if dedupe else union


def expansions(program: Program, goal: str, max_height: int,
               exact_height: bool = False) -> Iterator[ConjunctiveQuery]:
    """Enumerate expansions of *goal* of height at most *max_height*.

    Each yielded conjunctive query is the query of one unfolding
    expansion tree (Definition 2.4) whose height (rule applications
    along the longest branch) is at most -- or, with ``exact_height``,
    exactly -- *max_height*.  The head is ``goal(X0, ..., Xk-1)``.
    """
    program.require_goal(goal)
    idb = program.idb_predicates
    factory = FreshVariableFactory(prefix="E")
    head = _goal_head(program, goal)
    factory.avoid(v.name for v in head.variable_set())

    # A state is (pending IDB atoms with their remaining height budget,
    # collected EDB atoms, substitution, height actually used).
    def search(pending, collected, subst, used) -> Iterator:
        if not pending:
            if not exact_height or used == max_height:
                yield ConjunctiveQuery(
                    apply_to_atom(head, subst), apply_to_atoms(collected, subst)
                )
            return
        (atom, budget), rest = pending[0], pending[1:]
        if budget <= 0:
            return
        call = apply_to_atom(atom, subst)
        for rule in program.rules_for(atom.predicate):
            fresh_rule = rule.rename_apart(factory)
            unified = unify_tuples(fresh_rule.head.args, call.args, subst)
            if unified is None:
                continue
            new_pending = rest + tuple(
                (a, budget - 1) for a in fresh_rule.body if a.predicate in idb
            )
            new_collected = collected + tuple(
                a for a in fresh_rule.body if a.predicate not in idb
            )
            depth_here = max_height - budget + 1
            yield from search(new_pending, new_collected, unified, max(used, depth_here))

    yield from search(((Atom(goal, head.args), max_height),), (), {}, 0)


def expansion_union(program: Program, goal: str, max_height: int,
                    dedupe: bool = True) -> UnionOfConjunctiveQueries:
    """The union of all expansions of height at most *max_height*."""
    disjuncts = list(expansions(program, goal, max_height))
    union = UnionOfConjunctiveQueries(disjuncts, arity=program.arity[goal])
    return union.deduplicated() if dedupe else union


def count_expansions(program: Program, goal: str, max_height: int) -> int:
    """Number of unfolding expansion trees of height <= max_height."""
    return sum(1 for _ in expansions(program, goal, max_height))
