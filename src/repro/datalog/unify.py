"""First-order unification for the function-free language.

Since Datalog has no function symbols, unification never needs an
occurs check: a substitution binds variables to variables or constants
only.  Substitutions are kept in triangular form (bindings may chain)
and resolved on demand.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from .atoms import Atom
from .terms import Constant, Term, Variable, is_variable

Substitution = Dict[Variable, Term]


def resolve(term: Term, subst: Substitution) -> Term:
    """Follow variable bindings in *subst* until a fixed term is reached."""
    while is_variable(term) and term in subst:
        term = subst[term]
    return term


def unify_terms(left: Term, right: Term, subst: Substitution) -> Optional[Substitution]:
    """Unify two terms under *subst*; returns the extended substitution
    (a new dict) or None on clash."""
    left = resolve(left, subst)
    right = resolve(right, subst)
    if left == right:
        return subst
    if is_variable(left):
        extended = dict(subst)
        extended[left] = right
        return extended
    if is_variable(right):
        extended = dict(subst)
        extended[right] = left
        return extended
    return None  # two distinct constants


def unify_tuples(left: Sequence[Term], right: Sequence[Term],
                 subst: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify two equal-length term tuples; None on failure."""
    if len(left) != len(right):
        return None
    current: Substitution = dict(subst or {})
    for l, r in zip(left, right):
        result = unify_terms(l, r, current)
        if result is None:
            return None
        current = result
    return current


def unify_atoms(left: Atom, right: Atom,
                subst: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify two atoms (same predicate and arity required)."""
    if left.predicate != right.predicate:
        return None
    return unify_tuples(left.args, right.args, subst)


def apply_to_atom(atom: Atom, subst: Substitution) -> Atom:
    """Fully resolve every argument of *atom* under *subst*."""
    return Atom(atom.predicate, tuple(resolve(t, subst) for t in atom.args))


def apply_to_atoms(atoms: Iterable[Atom], subst: Substitution) -> Tuple[Atom, ...]:
    """Fully resolve a sequence of atoms under *subst*."""
    return tuple(apply_to_atom(atom, subst) for atom in atoms)
