"""Pretty-printing of Datalog programs.

The ``str()`` of every AST node is already valid Datalog source; this
module adds whole-program formatting helpers (stable ordering, optional
grouping by head predicate) used by the examples and by round-trip
tests (``parse(to_source(p)) == p``).
"""

from __future__ import annotations

from typing import Iterable

from .atoms import Atom
from .program import Program
from .rules import Rule


def atom_to_source(atom: Atom) -> str:
    """Valid source text for one atom."""
    return str(atom)


def rule_to_source(rule: Rule) -> str:
    """Valid source text for one rule (terminated by a period)."""
    return str(rule)


def program_to_source(program: Program, group_by_predicate: bool = False) -> str:
    """Valid source text for a whole program.

    With ``group_by_predicate`` the rules are emitted grouped by head
    predicate (stable within each group), separated by blank lines.
    """
    if not group_by_predicate:
        return "\n".join(rule_to_source(rule) for rule in program.rules)
    seen = []
    for rule in program.rules:
        if rule.head.predicate not in seen:
            seen.append(rule.head.predicate)
    blocks = []
    for predicate in seen:
        block = "\n".join(rule_to_source(r) for r in program.rules_for(predicate))
        blocks.append(block)
    return "\n\n".join(blocks)


def side_by_side(left: str, right: str, gap: int = 4, titles: Iterable[str] = ()) -> str:
    """Render two multi-line strings in two columns (used by examples to
    show a recursive program next to its nonrecursive rewriting)."""
    left_lines = left.splitlines() or [""]
    right_lines = right.splitlines() or [""]
    titles = list(titles)
    if titles:
        left_lines = [titles[0], "-" * len(titles[0])] + left_lines
        right_lines = [titles[1], "-" * len(titles[1])] + right_lines
    width = max(len(line) for line in left_lines)
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    return "\n".join(
        f"{l.ljust(width + gap)}{r}".rstrip() for l, r in zip(left_lines, right_lines)
    )
