"""Structural analysis of Datalog programs.

Implements the dependence graph of Section 2.1 (edge ``Q -> P`` when P
depends on Q, i.e. Q occurs in the body of a rule with head P),
recursion and linearity tests, strongly connected components (own
iterative Tarjan, no external graph library), topological ordering of
nonrecursive programs, and goal-directed program slicing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..budget import check_deadline
from .errors import NotNonrecursiveError
from .program import Program
from .rules import Rule


def dependence_graph(program: Program) -> Dict[str, FrozenSet[str]]:
    """Map each predicate P to the set of predicates it depends on.

    ``P depends on Q`` when Q occurs in the body of a rule whose head
    predicate is P.  (The paper draws the edge from Q to P; we store the
    adjacency in the "depends on" direction, which is the transpose.)
    """
    depends: Dict[str, Set[str]] = {p: set() for p in program.predicates}
    for rule in program.rules:
        # setdefault keeps this total even for predicates missing from
        # ``program.predicates`` (defensive: the graph must never
        # KeyError on body-only or head-only predicates).
        depends.setdefault(rule.head.predicate, set()).update(
            rule.body_predicates())
    return {p: frozenset(qs) for p, qs in depends.items()}


def strongly_connected_components(program: Program) -> List[FrozenSet[str]]:
    """SCCs of the dependence graph, in reverse topological order
    (callees before callers).  Iterative Tarjan."""
    graph = dependence_graph(program)
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[FrozenSet[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_index = work.pop()
            if edge_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            successors = sorted(graph.get(node, ()))
            advanced = False
            for i in range(edge_index, len(successors)):
                succ = successors[i]
                if succ not in index:
                    work.append((node, i + 1))
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(frozenset(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def recursive_predicates(program: Program) -> FrozenSet[str]:
    """Predicates that depend recursively on themselves.

    A predicate is recursive when it lies on a cycle of the dependence
    graph, including a self-loop.
    """
    graph = dependence_graph(program)
    result: Set[str] = set()
    for component in strongly_connected_components(program):
        if len(component) > 1:
            result.update(component)
        else:
            (predicate,) = component
            if predicate in graph.get(predicate, ()):
                result.add(predicate)
    return frozenset(result)


def is_recursive(program: Program) -> bool:
    """True when the dependence graph has a cycle (Section 2.1)."""
    return bool(recursive_predicates(program))


def is_nonrecursive(program: Program) -> bool:
    """True when the dependence graph is acyclic."""
    return not is_recursive(program)


def recursive_body_atoms(program: Program, rule: Rule) -> Tuple[int, ...]:
    """Indices of body atoms that are *recursive subgoals* of *rule*.

    A body atom is a recursive subgoal when its predicate is in the same
    strongly connected component as the head predicate (i.e. the two are
    mutually recursive), following the standard definition used for
    linearity [CK86, UV88].
    """
    component_of: Dict[str, FrozenSet[str]] = {}
    for component in strongly_connected_components(program):
        for predicate in component:
            component_of[predicate] = component
    recursive = recursive_predicates(program)
    head = rule.head.predicate
    head_component = component_of.get(head)
    if head_component is None or head not in recursive:
        # Foreign or nonrecursive head: no body atom can be a
        # recursive subgoal.  (Guarding here also avoids the
        # ``None is None`` trap when *both* predicates are absent
        # from the component map.)
        return ()
    indices = []
    for i, atom in enumerate(rule.body):
        if atom.predicate in head_component and atom.predicate in recursive:
            indices.append(i)
    return tuple(indices)


def is_linear(program: Program) -> bool:
    """True when every rule has at most one recursive subgoal.

    Nonrecursive programs are trivially linear.
    """
    return all(len(recursive_body_atoms(program, rule)) <= 1 for rule in program.rules)


def topological_order(program: Program) -> List[str]:
    """IDB predicates of a *nonrecursive* program, callees first.

    Raises :class:`NotNonrecursiveError` on recursive input.
    """
    if is_recursive(program):
        raise NotNonrecursiveError("program is recursive; no topological order exists")
    idb = program.idb_predicates
    order: List[str] = []
    for component in strongly_connected_components(program):
        # Acyclic graph: every component is a singleton, but iterate
        # rather than unpack so EDB-only components can never trip us.
        order.extend(p for p in sorted(component) if p in idb)
    return order


def reachable_predicates(program: Program, goal: str) -> FrozenSet[str]:
    """Predicates reachable from *goal* in the dependence graph."""
    graph = dependence_graph(program)
    seen: Set[str] = {goal}
    frontier = [goal]
    while frontier:
        check_deadline()
        node = frontier.pop()
        for succ in graph.get(node, ()):
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return frozenset(seen)


def slice_for_goal(program: Program, goal: str) -> Program:
    """The subprogram of rules relevant to *goal*.

    Keeps exactly the rules whose head predicate is reachable from the
    goal; the sliced program defines the same goal relation.
    """
    program.require_goal(goal)
    keep = reachable_predicates(program, goal)
    return Program(rule for rule in program.rules if rule.head.predicate in keep)


def max_idb_body_atoms(program: Program) -> int:
    """The maximum number of IDB atoms in any rule body (the rank bound
    for proof trees, Section 5.1)."""
    if not program.rules:
        return 0
    return max(len(program.idb_atoms_of(rule)) for rule in program.rules)
