"""Magic-sets rewriting for goal-directed bottom-up evaluation.

The paper motivates its study by query optimization ("the techniques to
optimize evaluation of queries are often based on the ability to
transform a query into an equivalent one" -- Section 1, citing [BR86]).
Magic sets is the canonical such transformation: given a goal predicate
and a binding pattern (which arguments of the query are bound to
constants), the program is rewritten so that bottom-up evaluation only
derives facts relevant to the goal.

The implementation covers the standard textbook construction for
positive Datalog with full sideways information passing in body order:

* every IDB predicate p used with adornment a gets a magic predicate
  ``magic_p_a`` holding the relevant bound-argument tuples;
* each rule for p is guarded by ``magic_p_a(bound args)``;
* for each IDB body atom, a magic rule propagates the bindings
  accumulated left-to-right.

``magic_rewrite`` returns the rewritten program plus the seed fact
predicate; ``magic_query`` runs the whole pipeline and must agree with
direct evaluation (tested), typically touching far fewer facts.  Both
evaluate through the default engine's columnar data plane
(:mod:`repro.datalog.columns`) -- magic seeds land in IDB relations,
which the column store keeps private per evaluation -- and accept an
``engine=`` override for A/B runs (``tests/test_columnar.py`` checks
all three backends agree on the rewritten programs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..budget import check_deadline
from .atoms import Atom
from .database import Database
from .engine import Engine, evaluate
from .errors import ValidationError
from .program import Program
from .rules import Rule
from .terms import Constant, Term, Variable, is_variable

Adornment = str  # e.g. "bf": first argument bound, second free


def _adorned_name(predicate: str, adornment: Adornment) -> str:
    return f"{predicate}__{adornment}"


def _magic_name(predicate: str, adornment: Adornment) -> str:
    return f"magic_{predicate}__{adornment}"


def _bound_args(atom: Atom, adornment: Adornment) -> Tuple[Term, ...]:
    return tuple(t for t, a in zip(atom.args, adornment) if a == "b")


def _atom_adornment(atom: Atom, bound: Set[Variable]) -> Adornment:
    return "".join(
        "b" if (not is_variable(t) or t in bound) else "f" for t in atom.args
    )


@dataclass
class MagicRewriting:
    """The output of :func:`magic_rewrite`."""

    program: Program
    goal: str                 # adorned goal predicate name
    seed_predicate: str       # magic predicate to seed with the query bindings
    seed_row: Tuple[Term, ...]


def magic_rewrite(program: Program, goal: str, adornment: Adornment,
                  bindings: Sequence = ()) -> MagicRewriting:
    """Rewrite *program* for querying ``goal`` with *adornment*.

    *bindings* supplies the constants for the bound positions (in
    order) and seeds the magic predicate.
    """
    program.require_goal(goal)
    if len(adornment) != program.arity[goal]:
        raise ValidationError("adornment length must match the goal arity")
    if any(c not in "bf" for c in adornment):
        raise ValidationError("adornment must consist of 'b' and 'f'")
    bound_count = sum(1 for c in adornment if c == "b")
    if len(bindings) != bound_count:
        raise ValidationError(
            f"adornment {adornment!r} needs {bound_count} binding(s)"
        )

    idb = program.idb_predicates
    rewritten: List[Rule] = []
    done: Set[Tuple[str, Adornment]] = set()
    pending: List[Tuple[str, Adornment]] = [(goal, adornment)]

    while pending:
        check_deadline()
        predicate, adorn = pending.pop()
        if (predicate, adorn) in done:
            continue
        done.add((predicate, adorn))
        magic_head_args_template = adorn
        for rule in program.rules_for(predicate):
            bound: Set[Variable] = {
                t for t, a in zip(rule.head.args, adorn)
                if a == "b" and is_variable(t)
            }
            guarded_body: List[Atom] = [
                Atom(_magic_name(predicate, adorn), _bound_args(rule.head, adorn))
            ]
            magic_rules: List[Rule] = []
            for atom in rule.body:
                if atom.predicate in idb:
                    sub_adorn = _atom_adornment(atom, bound)
                    # Magic rule: bindings available so far flow into
                    # the subgoal.
                    magic_rules.append(
                        Rule(
                            Atom(_magic_name(atom.predicate, sub_adorn),
                                 _bound_args(atom, sub_adorn)),
                            tuple(guarded_body),
                        )
                    )
                    pending.append((atom.predicate, sub_adorn))
                    guarded_body.append(
                        Atom(_adorned_name(atom.predicate, sub_adorn), atom.args)
                    )
                else:
                    guarded_body.append(atom)
                bound.update(atom.variable_set())
            rewritten.append(
                Rule(Atom(_adorned_name(predicate, adorn), rule.head.args),
                     tuple(guarded_body))
            )
            rewritten.extend(magic_rules)

    seed = _magic_name(goal, adornment)
    seed_row = tuple(
        b if isinstance(b, (Constant, Variable)) else Constant(b) for b in bindings
    )
    return MagicRewriting(
        program=Program(rewritten),
        goal=_adorned_name(goal, adornment),
        seed_predicate=seed,
        seed_row=seed_row,
    )


def magic_query(program: Program, database: Database, goal: str,
                adornment: Adornment, bindings: Sequence,
                engine: Optional[Engine] = None) -> FrozenSet[Tuple]:
    """Evaluate ``goal(bindings, ...)`` goal-directedly.

    Returns the full rows of the goal relation matching the bound
    arguments; must coincide with filtering the direct fixpoint
    (differentially tested), while deriving only goal-relevant facts.
    ``engine`` overrides the default compiled engine.
    """
    rewriting = magic_rewrite(program, goal, adornment, bindings)
    seeded = database.copy()
    seeded.add(rewriting.seed_predicate, rewriting.seed_row)
    result = evaluate(rewriting.program, seeded, engine=engine)
    # The adorned relation may contain rows for other magic'd bindings
    # reached during propagation; keep only the queried ones.
    wanted = iter(rewriting.seed_row)
    pattern = [next(wanted) if c == "b" else None for c in adornment]
    return frozenset(
        row
        for row in result.facts(rewriting.goal)
        if all(p is None or p == value for p, value in zip(pattern, row))
    )


def derived_fact_count(program: Program, database: Database, goal: str,
                       adornment: Adornment, bindings: Sequence,
                       engine: Optional[Engine] = None) -> Dict[str, int]:
    """Instrumentation for the ablation bench: total IDB facts derived
    by direct evaluation vs the magic rewriting."""
    direct = evaluate(program, database, engine=engine)
    direct_count = sum(len(rows) for rows in direct.idb.values())
    rewriting = magic_rewrite(program, goal, adornment, bindings)
    seeded = database.copy()
    seeded.add(rewriting.seed_predicate, rewriting.seed_row)
    magic = evaluate(rewriting.program, seeded, engine=engine)
    magic_count = sum(len(rows) for rows in magic.idb.values())
    return {"direct": direct_count, "magic": magic_count}
