"""A hand-written parser for textual Datalog.

Syntax
------

* A program is a sequence of rules, each terminated by ``.``
* ``head :- a1, ..., an.`` is a rule; ``head.`` or ``head :- .`` is a
  rule with an empty body.
* Identifiers starting with an uppercase letter or ``_`` are variables;
  identifiers starting with a lowercase letter are predicate symbols or
  constants depending on position.  Integers and quoted strings
  (``'abc'`` or ``"abc"``) are constants.
* ``%`` and ``#`` start comments that run to the end of the line.

Example::

    p(X, Y) :- e(X, Z), p(Z, Y).
    p(X, Y) :- e0(X, Y).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .atoms import Atom
from .errors import ParseError
from .program import Program
from .rules import Rule
from .terms import Constant, Variable

_SYMBOLS = (":-", "(", ")", ",", ".")


@dataclass(frozen=True)
class _Token:
    kind: str  # "ident", "int", "string", "symbol", "eof"
    text: str
    line: int
    column: int


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line, column = 1, 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            column += 1
            continue
        if ch in "%#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith(":-", i):
            tokens.append(_Token("symbol", ":-", line, column))
            i += 2
            column += 2
            continue
        if ch in "(),.":
            tokens.append(_Token("symbol", ch, line, column))
            i += 1
            column += 1
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            while j < n and source[j] != quote:
                if source[j] == "\n":
                    raise ParseError("unterminated string constant", line, column)
                j += 1
            if j >= n:
                raise ParseError("unterminated string constant", line, column)
            tokens.append(_Token("string", source[i + 1 : j], line, column))
            column += j + 1 - i
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            j = i + 1
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(_Token("int", source[i:j], line, column))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_'"):
                j += 1
            tokens.append(_Token("ident", source[i:j], line, column))
            column += j - i
            i = j
            continue
        raise ParseError(f"unexpected character {ch!r}", line, column)
    tokens.append(_Token("eof", "", line, column))
    return tokens


class _Parser:
    def __init__(self, source: str):
        self._tokens = _tokenize(source)
        self._pos = 0

    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._peek()
        if token.kind != "symbol" or token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.line, token.column)
        return self._advance()

    def _parse_term(self):
        token = self._advance()
        if token.kind == "int":
            return Constant(int(token.text))
        if token.kind == "string":
            return Constant(token.text)
        if token.kind == "ident":
            if token.text[0].isupper() or token.text[0] == "_":
                return Variable(token.text)
            return Constant(token.text)
        raise ParseError(f"expected a term, found {token.text!r}", token.line, token.column)

    def parse_atom(self) -> Atom:
        token = self._advance()
        if token.kind != "ident" or token.text[0].isupper() or token.text[0] == "_":
            raise ParseError(
                f"expected a predicate symbol, found {token.text!r}", token.line, token.column
            )
        predicate = token.text
        args: List = []
        if self._peek().kind == "symbol" and self._peek().text == "(":
            self._advance()
            if not (self._peek().kind == "symbol" and self._peek().text == ")"):
                args.append(self._parse_term())
                while self._peek().kind == "symbol" and self._peek().text == ",":
                    self._advance()
                    args.append(self._parse_term())
            self._expect(")")
        return Atom(predicate, tuple(args))

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        body: List[Atom] = []
        token = self._peek()
        if token.kind == "symbol" and token.text == ":-":
            self._advance()
            if not (self._peek().kind == "symbol" and self._peek().text == "."):
                body.append(self.parse_atom())
                while self._peek().kind == "symbol" and self._peek().text == ",":
                    self._advance()
                    body.append(self.parse_atom())
        self._expect(".")
        return Rule(head, tuple(body))

    def parse_program(self) -> Program:
        rules: List[Rule] = []
        while self._peek().kind != "eof":
            rules.append(self.parse_rule())
        return Program(rules)

    def at_eof(self) -> bool:
        return self._peek().kind == "eof"


def parse_program(source: str) -> Program:
    """Parse a full Datalog program from *source*."""
    return _Parser(source).parse_program()


def parse_rule(source: str) -> Rule:
    """Parse a single rule (must consume the whole input)."""
    parser = _Parser(source)
    rule = parser.parse_rule()
    if not parser.at_eof():
        token = parser._peek()
        raise ParseError("trailing input after rule", token.line, token.column)
    return rule


def parse_atom(source: str) -> Atom:
    """Parse a single atom (must consume the whole input)."""
    parser = _Parser(source)
    atom = parser.parse_atom()
    if not parser.at_eof():
        token = parser._peek()
        raise ParseError("trailing input after atom", token.line, token.column)
    return atom
