"""Databases: finite relational structures over constants.

A database maps predicate symbols to finite sets of tuples of
:class:`~repro.datalog.terms.Constant`.  This is the extensional input
``D`` on which programs and queries are evaluated throughout the paper.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Set, Tuple

from .atoms import Atom
from .errors import ArityError, ValidationError
from .terms import Constant

Fact = Tuple[str, Tuple[Constant, ...]]


class Database:
    """A mutable finite relational structure.

    Use :meth:`add` / :meth:`add_atom` to populate, or the classmethod
    constructors :meth:`from_facts` and :meth:`from_atoms`.
    """

    def __init__(self):
        self._relations: Dict[str, Set[Tuple[Constant, ...]]] = {}
        self._arity: Dict[str, int] = {}
        #: Cached frozen views per predicate (:meth:`relation` is called
        #: inside fixpoint loops; rebuilding a frozenset per call was
        #: O(n) per lookup).  Invalidated per-predicate on :meth:`add`.
        self._frozen: Dict[str, FrozenSet[Tuple[Constant, ...]]] = {}
        #: Mutation counter: bumped by every insert, so derived caches
        #: (the columnar EDB image) can detect staleness cheaply.
        self._version = 0

    @classmethod
    def from_facts(cls, facts: Iterable[Fact]) -> "Database":
        """Build a database from ``(predicate, tuple-of-constants)`` pairs."""
        db = cls()
        for predicate, row in facts:
            db.add(predicate, row)
        return db

    @classmethod
    def from_atoms(cls, atoms: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms."""
        db = cls()
        for atom in atoms:
            db.add_atom(atom)
        return db

    def add(self, predicate: str, row: Iterable) -> None:
        """Insert one tuple; bare Python values are wrapped as constants."""
        converted = tuple(v if isinstance(v, Constant) else Constant(v) for v in row)
        known = self._arity.setdefault(predicate, len(converted))
        if known != len(converted):
            raise ArityError(
                f"predicate {predicate!r} used with arities {known} and {len(converted)}"
            )
        self._relations.setdefault(predicate, set()).add(converted)
        self._frozen.pop(predicate, None)
        self._version += 1

    def add_atom(self, atom: Atom) -> None:
        """Insert a ground atom as a fact."""
        if not atom.is_ground():
            raise ValidationError(f"cannot store non-ground atom {atom}")
        self.add(atom.predicate, atom.args)

    def relation(self, predicate: str) -> FrozenSet[Tuple[Constant, ...]]:
        """The set of tuples for *predicate* (empty if absent).

        The frozen view is cached until the predicate is next mutated,
        so repeated lookups inside fixpoint loops are O(1)."""
        view = self._frozen.get(predicate)
        if view is None:
            view = frozenset(self._relations.get(predicate, ()))
            self._frozen[predicate] = view
        return view

    def relations(self) -> Iterator[Tuple[str, Set[Tuple[Constant, ...]]]]:
        """Iterate over ``(predicate, row set)`` pairs (bulk access for
        columnar imaging; the sets must not be mutated by callers)."""
        return iter(self._relations.items())

    def version(self) -> int:
        """The mutation counter (bumped on every insert); lets derived
        caches validate themselves without hashing the fact set."""
        return self._version

    def predicates(self) -> FrozenSet[str]:
        """All predicates that have at least one declared arity."""
        return frozenset(self._arity)

    def arity(self, predicate: str) -> int:
        """Arity of *predicate* (raises KeyError when unknown)."""
        return self._arity[predicate]

    def facts(self) -> Iterator[Fact]:
        """Iterate over all facts as ``(predicate, row)`` pairs."""
        for predicate, rows in self._relations.items():
            for row in rows:
                yield predicate, row

    def atoms(self) -> Iterator[Atom]:
        """Iterate over all facts as ground atoms."""
        for predicate, row in self.facts():
            yield Atom(predicate, row)

    def active_domain(self) -> FrozenSet[Constant]:
        """All constants occurring in some fact."""
        domain = set()
        for _, rows in self._relations.items():
            for row in rows:
                domain.update(row)
        return frozenset(domain)

    def contains(self, predicate: str, row: Iterable) -> bool:
        """Membership test, wrapping bare values as constants."""
        converted = tuple(v if isinstance(v, Constant) else Constant(v) for v in row)
        return converted in self._relations.get(predicate, set())

    def copy(self) -> "Database":
        """An independent copy (bulk set copies; rows are immutable
        tuples, so no per-row re-wrapping)."""
        db = Database()
        db._arity = dict(self._arity)
        db._relations = {p: set(rows) for p, rows in self._relations.items()}
        db._frozen = dict(self._frozen)  # frozen views are immutable
        return db

    def merge(self, other: "Database") -> "Database":
        """A new database holding the union of the two fact sets (bulk
        set unions per predicate; arity mismatches still raise)."""
        db = self.copy()
        for predicate, rows in other._relations.items():
            if not rows:
                continue
            arity = other._arity[predicate]
            known = db._arity.setdefault(predicate, arity)
            if known != arity:
                raise ArityError(
                    f"predicate {predicate!r} used with arities {known} and {arity}"
                )
            db._relations.setdefault(predicate, set()).update(rows)
            db._frozen.pop(predicate, None)
            db._version += 1
        return db

    def restrict(self, predicates: Iterable[str]) -> "Database":
        """A new database keeping only the given predicates (bulk set
        copies, skipping per-row re-wrapping)."""
        keep = set(predicates)
        db = Database()
        for predicate, rows in self._relations.items():
            if predicate in keep and rows:
                db._arity[predicate] = self._arity[predicate]
                db._relations[predicate] = set(rows)
        return db

    def __len__(self):
        return sum(len(rows) for rows in self._relations.values())

    def __eq__(self, other):
        if not isinstance(other, Database):
            return NotImplemented
        mine = {p: rows for p, rows in self._relations.items() if rows}
        theirs = {p: rows for p, rows in other._relations.items() if rows}
        return mine == theirs

    def __repr__(self):
        parts = ", ".join(f"{p}:{len(rows)}" for p, rows in sorted(self._relations.items()))
        return f"Database({parts})"
