"""Compiled join plans for bottom-up evaluation.

The interpretive evaluator (:mod:`repro.datalog.engine`) re-derives a
greedy join order and re-inspects every atom argument on each rule
application of each fixpoint round.  This module compiles each
:class:`~repro.datalog.rules.Rule` once into a reusable
:class:`JoinPlan`:

* the join order is fixed at compile time, one plan variant per
  delta-position (``delta_index=None`` for naive / stage-1 full
  application, ``delta_index=i`` for the semi-naive variant matching
  body atom *i* against the delta);
* every argument slot becomes one of three register ops -- constant
  check, bind-register, check-register -- so executing a step is a flat
  loop over precomputed tuples instead of repeated term inspection;
* the index position used to look up candidate rows (a constant
  argument or a variable bound by the join prefix) is selected at
  compile time;
* the head projection is a tuple of slot references (register index or
  constant), with unsafe head variables enumerated over the active
  domain exactly as in the interpretive path.

Plans are *symbolic*: they mention :class:`Constant` objects, not store
values.  :meth:`JoinPlan.resolve` binds a plan to a concrete
:class:`PlanStore` -- interning its constants and registering the
indexes it needs -- and yields an executable :class:`ResolvedPlan`.

:class:`PlanStore` is the compiled counterpart of the interpretive
``_Store``: constants are interned to small ints (so row hashing and
equality run at integer speed) and per-(predicate, column) hash indexes
are registered up front and maintained incrementally on insert instead
of being lazily rebuilt.

The stage/fixpoint bookkeeping of :func:`compiled_naive` and
:func:`compiled_seminaive` deliberately mirrors ``naive_evaluate`` and
``seminaive_evaluate`` so results (including ``stages`` and
``fixpoint``) are bit-identical across the two paths.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..budget import check_deadline
from .database import Database
from .program import Program
from .rules import Rule
from .terms import Constant, is_variable

# Register ops: (position, op, payload).
OP_CONST = 0   # row[position] must equal the (resolved) constant payload
OP_BIND = 1    # regs[payload] = row[position]
OP_CHECK = 2   # row[position] must equal regs[payload]

_EMPTY_SET: frozenset = frozenset()


class PlanStore:
    """Interned, incrementally-indexed relation store.

    ``interning=True`` maps every :class:`Constant` to a small int and
    stores rows as int tuples; ``indexing=True`` keeps one hash index
    per (predicate, column) requested via :meth:`require_index`,
    maintained eagerly by :meth:`add_all`.
    """

    __slots__ = ("interning", "indexing", "_rows", "_indexes", "_ids",
                 "_values", "_domain")

    def __init__(self, database: Database, interning: bool = True,
                 indexing: bool = True):
        self.interning = interning
        self.indexing = indexing
        self._rows: Dict[str, Set[tuple]] = {}
        self._indexes: Dict[Tuple[str, int], Dict[object, Set[tuple]]] = {}
        self._ids: Dict[Constant, int] = {}
        self._values: List[Constant] = []
        self._domain: Set[object] = set()
        for predicate, row in database.facts():
            if interning:
                row = tuple(self._intern(c) for c in row)
            self._rows.setdefault(predicate, set()).add(row)
            self._domain.update(row)

    def _intern(self, constant: Constant) -> int:
        ident = self._ids.get(constant)
        if ident is None:
            ident = len(self._values)
            self._ids[constant] = ident
            self._values.append(constant)
        return ident

    def resolve(self, constant: Constant):
        """The store value for *constant* (interned when enabled).

        Resolved constants join the active domain, matching the
        interpretive path's inclusion of program constants.
        """
        value = self._intern(constant) if self.interning else constant
        self._domain.add(value)
        return value

    def rows(self, predicate: str) -> Set[tuple]:
        return self._rows.get(predicate, _EMPTY_SET)

    def require_index(self, predicate: str, position: int) -> None:
        """Register (and build once) the index on *position*."""
        key = (predicate, position)
        if key in self._indexes:
            return
        index: Dict[object, Set[tuple]] = {}
        for row in self._rows.get(predicate, ()):
            index.setdefault(row[position], set()).add(row)
        self._indexes[key] = index

    def candidates(self, predicate: str, position: int, value) -> Set[tuple]:
        """Rows whose *position*-th column equals *value* (registered
        indexes only)."""
        return self._indexes[(predicate, position)].get(value, _EMPTY_SET)

    def add_all(self, predicate: str, rows: Iterable[tuple]) -> Set[tuple]:
        """Insert rows; maintain registered indexes; return the new ones."""
        existing = self._rows.setdefault(predicate, set())
        if isinstance(rows, (set, frozenset)):
            fresh = rows - existing
        else:
            fresh = {row for row in rows if row not in existing}
        if fresh:
            existing |= fresh
            for row in fresh:
                self._domain.update(row)
            for (pred, position), index in self._indexes.items():
                if pred != predicate:
                    continue
                for row in fresh:
                    index.setdefault(row[position], set()).add(row)
        return fresh

    def domain(self) -> List[object]:
        """The active domain as store values, deterministically ordered."""
        if self.interning:
            return sorted(self._domain)
        return sorted(self._domain, key=repr)

    def unintern_rows(self, predicate: str) -> FrozenSet[Tuple[Constant, ...]]:
        """The relation as tuples of constants (un-interning ids)."""
        rows = self._rows.get(predicate, _EMPTY_SET)
        if not self.interning:
            return frozenset(rows)
        values = self._values
        return frozenset(tuple(values[i] for i in row) for row in rows)


class ResolvedPlan:
    """A :class:`JoinPlan` bound to a store: ready to execute."""

    __slots__ = ("steps", "head_ops", "unsafe_regs", "nregs", "fused")

    def __init__(self, steps, head_ops, unsafe_regs, nregs):
        self.steps = steps            # ((predicate, use_delta, index_spec, ops), ...)
        self.head_ops = head_ops      # ((is_reg, payload), ...)
        self.unsafe_regs = unsafe_regs
        self.nregs = nregs
        # Lazily-compiled metadata for the fused columnar kernels
        # (liveness analysis, pushed-down filters); built on first use
        # by :func:`repro.datalog.columns.execute_batch_fused`.
        self.fused = None

    def __getstate__(self):
        # The fused metadata is a derived cache; recompiled on demand
        # after unpickling (snapshot restore).
        return (self.steps, self.head_ops, self.unsafe_regs, self.nregs)

    def __setstate__(self, state):
        self.steps, self.head_ops, self.unsafe_regs, self.nregs = state
        self.fused = None

    def execute(self, store: PlanStore, domain,
                delta_rows: Optional[Set[tuple]] = None) -> Set[tuple]:
        """All head rows derivable by one application of the plan."""
        check_deadline()
        out: Set[tuple] = set()
        regs: List[object] = [None] * self.nregs
        steps = self.steps
        nsteps = len(steps)
        head_ops = self.head_ops
        unsafe = self.unsafe_regs

        def emit():
            if unsafe:
                # Unsafe rule: unbound head registers range over the
                # active domain (empty domain derives nothing).
                for values in product(domain, repeat=len(unsafe)):
                    for r, v in zip(unsafe, values):
                        regs[r] = v
                    out.add(tuple(regs[p] if is_reg else p
                                  for is_reg, p in head_ops))
            else:
                out.add(tuple(regs[p] if is_reg else p
                              for is_reg, p in head_ops))

        def run(i: int):
            if i == nsteps:
                emit()
                return
            predicate, use_delta, index_spec, ops = steps[i]
            if use_delta:
                rows = delta_rows
            elif index_spec is not None:
                pos, is_reg, payload = index_spec
                rows = store.candidates(
                    predicate, pos, regs[payload] if is_reg else payload)
            else:
                rows = store.rows(predicate)
            nxt = i + 1
            for row in rows:
                ok = True
                for pos, op, payload in ops:
                    v = row[pos]
                    if op == OP_BIND:
                        regs[payload] = v
                    elif v != (payload if op == OP_CONST else regs[payload]):
                        ok = False
                        break
                if ok:
                    run(nxt)

        run(0)
        return out


class JoinPlan:
    """The compile-time join program for one rule and delta position.

    Symbolic: constants are :class:`Constant` objects and index needs
    are recorded, so the plan is reusable across stores; call
    :meth:`resolve` to bind it to one evaluation.
    """

    __slots__ = ("rule", "delta_index", "steps", "head_ops", "unsafe_regs",
                 "nregs")

    def __init__(self, rule: Rule, delta_index: Optional[int] = None):
        self.rule = rule
        self.delta_index = delta_index
        self._compile()

    def _compile(self) -> None:
        rule = self.rule
        delta_index = self.delta_index
        # Greedy join order (same heuristic and tie-break as the
        # interpretive path): prefer atoms sharing many bound variables
        # or carrying constants, penalize fresh variables.
        remaining = list(enumerate(rule.body))
        ordered: List[Tuple[int, object]] = []
        bound: set = set()
        while remaining:
            def score(entry):
                atom = entry[1]
                variables = atom.variable_set()
                return (len(variables & bound) + len(atom.constants()),
                        -len(variables - bound))

            best = max(remaining, key=score)
            remaining.remove(best)
            ordered.append(best)
            bound.update(best[1].variable_set())

        regmap: Dict[object, int] = {}

        def reg(var) -> int:
            r = regmap.get(var)
            if r is None:
                r = len(regmap)
                regmap[var] = r
            return r

        steps = []
        bound_so_far: set = set()
        for orig_index, atom in ordered:
            use_delta = delta_index is not None and orig_index == delta_index
            index_spec = None
            if not use_delta:
                # First indexable position: a constant argument or a
                # variable bound by the join prefix.
                for pos, arg in enumerate(atom.args):
                    if not is_variable(arg):
                        index_spec = (pos, False, arg)
                        break
                    if arg in bound_so_far:
                        index_spec = (pos, True, reg(arg))
                        break
            ops = []
            seen_here: set = set()
            for pos, arg in enumerate(atom.args):
                if not is_variable(arg):
                    ops.append((pos, OP_CONST, arg))
                elif arg in bound_so_far or arg in seen_here:
                    ops.append((pos, OP_CHECK, reg(arg)))
                else:
                    seen_here.add(arg)
                    ops.append((pos, OP_BIND, reg(arg)))
            steps.append((atom.predicate, use_delta, index_spec, tuple(ops)))
            bound_so_far.update(atom.variable_set())

        head_ops = []
        unsafe_regs: List[int] = []
        unsafe_seen: set = set()
        for arg in rule.head.args:
            if not is_variable(arg):
                head_ops.append((False, arg))
            else:
                r = reg(arg)
                head_ops.append((True, r))
                if arg not in bound_so_far and arg not in unsafe_seen:
                    unsafe_seen.add(arg)
                    unsafe_regs.append(r)

        self.steps = tuple(steps)
        self.head_ops = tuple(head_ops)
        self.unsafe_regs = tuple(unsafe_regs)
        self.nregs = len(regmap)

    def resolve(self, store: PlanStore) -> ResolvedPlan:
        """Bind the plan to *store*: intern constants, register indexes,
        and drop the per-row op made redundant by an index lookup."""
        indexing = store.indexing
        steps = []
        for predicate, use_delta, index_spec, ops in self.steps:
            resolved_index = None
            if indexing and index_spec is not None:
                pos, is_reg, payload = index_spec
                resolved_index = (
                    pos, is_reg, payload if is_reg else store.resolve(payload))
                store.require_index(predicate, pos)
                # Candidate rows already satisfy the indexed position.
                ops = tuple(op for op in ops if op[0] != pos)
            resolved_ops = tuple(
                (pos, op, store.resolve(payload) if op == OP_CONST else payload)
                for pos, op, payload in ops)
            steps.append((predicate, use_delta, resolved_index, resolved_ops))
        head_ops = tuple(
            (is_reg, payload if is_reg else store.resolve(payload))
            for is_reg, payload in self.head_ops)
        return ResolvedPlan(tuple(steps), head_ops, self.unsafe_regs,
                            self.nregs)


class PlanCache:
    """Compile-once cache keyed by ``(rule, delta_index)``."""

    __slots__ = ("_plans",)
    _MAX_ENTRIES = 8192

    def __init__(self):
        self._plans: Dict[Tuple[Rule, Optional[int]], JoinPlan] = {}

    def plan(self, rule: Rule, delta_index: Optional[int] = None) -> JoinPlan:
        key = (rule, delta_index)
        plan = self._plans.get(key)
        if plan is None:
            if len(self._plans) >= self._MAX_ENTRIES:
                self._plans.clear()
            plan = JoinPlan(rule, delta_index)
            self._plans[key] = plan
        return plan

    def clear(self) -> None:
        """Drop every compiled plan (cold-start / memory valve)."""
        self._plans.clear()

    def export(self) -> Dict[Tuple[Rule, Optional[int]], JoinPlan]:
        """A copy of the plan table (snapshot capture)."""
        return dict(self._plans)

    def adopt(self, plans: Dict[Tuple[Rule, Optional[int]], JoinPlan]) -> None:
        """Merge a snapshot's plan table (existing entries win; the
        merged table is trimmed back under ``_MAX_ENTRIES`` by the
        normal insert-time valve)."""
        merged = dict(plans)
        merged.update(self._plans)
        self._plans = merged

    def __len__(self):
        return len(self._plans)


def compile_program(program: Program,
                    cache: Optional[PlanCache] = None) -> Dict[Rule, JoinPlan]:
    """Full-application plans for every rule (convenience for tests)."""
    cache = PlanCache() if cache is None else cache
    return {rule: cache.plan(rule, None) for rule in program.rules}


# ----------------------------------------------------------------------
# Compiled fixpoint drivers.  These mirror naive_evaluate /
# seminaive_evaluate stage by stage; see the module docstring.
# ----------------------------------------------------------------------

def compiled_naive(program: Program, database: Database,
                   max_stages: Optional[int] = None, *,
                   interning: bool = True, indexing: bool = True,
                   cache: Optional[PlanCache] = None):
    """Naive rounds over compiled plans.

    Returns ``(idb, stages, fixpoint)`` with ``idb`` mapping each IDB
    predicate to a frozenset of constant rows.
    """
    cache = PlanCache() if cache is None else cache
    store = PlanStore(database, interning=interning, indexing=indexing)
    resolved = [(rule.head.predicate, cache.plan(rule, None).resolve(store))
                for rule in program.rules]
    # The domain is only read when some rule is unsafe; skip the
    # per-round sort otherwise.
    needs_domain = any(rplan.unsafe_regs for _, rplan in resolved)
    stage = 0
    fixpoint = False
    while max_stages is None or stage < max_stages:
        check_deadline()
        domain = store.domain() if needs_domain else ()
        derived: Dict[str, Set[tuple]] = {}
        for head_predicate, rplan in resolved:
            derived.setdefault(head_predicate, set()).update(
                rplan.execute(store, domain))
        changed = False
        for predicate, rows in derived.items():
            if store.add_all(predicate, rows):
                changed = True
        stage += 1
        if not changed:
            fixpoint = True
            stage -= 1  # the last round derived nothing new
            break
    idb = {p: store.unintern_rows(p) for p in program.idb_predicates}
    return idb, stage, fixpoint


def compiled_seminaive(program: Program, database: Database,
                       max_stages: Optional[int] = None, *,
                       interning: bool = True, indexing: bool = True,
                       cache: Optional[PlanCache] = None):
    """Semi-naive deltas over compiled plans (one plan per IDB body
    occurrence); same return shape as :func:`compiled_naive`."""
    cache = PlanCache() if cache is None else cache
    store = PlanStore(database, interning=interning, indexing=indexing)
    idb = program.idb_predicates
    full = [(rule, rule.head.predicate, cache.plan(rule, None).resolve(store))
            for rule in program.rules]
    delta_plans = [
        [(index, cache.plan(rule, index).resolve(store))
         for index, atom in enumerate(rule.body) if atom.predicate in idb]
        for rule in program.rules
    ]
    needs_domain = any(rplan.unsafe_regs for _, _, rplan in full)
    domain = store.domain() if needs_domain else ()

    # Stage 1: full application of every rule to the EDB-only store.
    delta: Dict[str, Set[tuple]] = {p: set() for p in idb}
    for rule, head_predicate, rplan in full:
        fresh = store.add_all(head_predicate, rplan.execute(store, domain))
        delta[head_predicate].update(fresh)
    stage = 1 if any(delta.values()) else 0
    fixpoint = not any(delta.values())

    while any(delta.values()) and (max_stages is None or stage < max_stages):
        check_deadline()
        domain = store.domain() if needs_domain else ()
        new_delta: Dict[str, Set[tuple]] = {p: set() for p in idb}
        changed = False
        for (rule, head_predicate, _), variants in zip(full, delta_plans):
            for index, rplan in variants:
                focus = delta.get(rule.body[index].predicate)
                if not focus:
                    continue
                rows = rplan.execute(store, domain, delta_rows=focus)
                fresh = store.add_all(head_predicate, rows)
                if fresh:
                    new_delta[head_predicate].update(fresh)
                    changed = True
        delta = new_delta
        if changed:
            stage += 1
        else:
            fixpoint = True
            break
    if not any(delta.values()):
        fixpoint = True
    idb_rows = {p: store.unintern_rows(p) for p in idb}
    return idb_rows, stage, fixpoint
