"""Atoms: applications of a predicate symbol to a tuple of terms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Tuple

from .terms import Constant, Term, Variable, is_variable


@dataclass(frozen=True, slots=True)
class Atom:
    """An atomic formula ``p(t1, ..., tk)``.

    ``predicate`` is the predicate symbol name and ``args`` the tuple of
    terms.  Atoms are immutable; use :meth:`substitute` to produce
    renamed or instantiated copies.
    """

    predicate: str
    args: Tuple[Term, ...]

    def __post_init__(self):
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    def variables(self) -> Tuple[Variable, ...]:
        """All variable occurrences, in argument order (with repeats)."""
        return tuple(t for t in self.args if is_variable(t))

    def variable_set(self) -> frozenset:
        """The set of variables occurring in the atom."""
        return frozenset(t for t in self.args if is_variable(t))

    def constants(self) -> frozenset:
        """The set of constants occurring in the atom."""
        return frozenset(t for t in self.args if not is_variable(t))

    def is_ground(self) -> bool:
        """True when the atom contains no variables."""
        return all(not is_variable(t) for t in self.args)

    def substitute(self, subst: Mapping[Variable, Term]) -> "Atom":
        """Apply a substitution (variables not in *subst* are kept)."""
        return Atom(self.predicate, tuple(subst.get(t, t) if is_variable(t) else t for t in self.args))

    def __str__(self):
        if not self.args:
            return self.predicate
        return f"{self.predicate}({', '.join(str(t) for t in self.args)})"

    def __repr__(self):
        return f"Atom({str(self)!r})"


def make_atom(predicate: str, *args) -> Atom:
    """Convenience constructor turning bare strings/ints into terms.

    Strings starting with an uppercase letter or underscore become
    variables; all other strings and all integers become constants.
    Terms are passed through unchanged.
    """
    converted = []
    for a in args:
        if isinstance(a, (Variable, Constant)):
            converted.append(a)
        elif isinstance(a, str) and a and (a[0].isupper() or a[0] == "_"):
            converted.append(Variable(a))
        else:
            converted.append(Constant(a))
    return Atom(predicate, tuple(converted))


def atoms_variables(atoms: Iterable[Atom]) -> frozenset:
    """The set of variables occurring in any of *atoms*."""
    result = set()
    for atom in atoms:
        result.update(atom.variable_set())
    return frozenset(result)


def atoms_constants(atoms: Iterable[Atom]) -> frozenset:
    """The set of constants occurring in any of *atoms*."""
    result = set()
    for atom in atoms:
        result.update(atom.constants())
    return frozenset(result)
