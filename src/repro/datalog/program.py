"""Datalog programs: finite sets of Horn rules.

A program classifies its predicates into IDB (those occurring in some
rule head) and EDB (all others), exposes per-predicate rule lookup, and
validates arity consistency (Section 2.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterable, Tuple

from .atoms import Atom
from .errors import ArityError, ValidationError
from .rules import Rule


@dataclass(frozen=True)
class Program:
    """An immutable Datalog program.

    The rule order is preserved (it is used for deterministic
    pretty-printing and automaton construction) but is semantically
    irrelevant.
    """

    rules: Tuple[Rule, ...]

    def __init__(self, rules: Iterable[Rule]):
        object.__setattr__(self, "rules", tuple(rules))
        self._validate_arities()

    def _validate_arities(self):
        arities: Dict[str, int] = {}
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                known = arities.setdefault(atom.predicate, atom.arity)
                if known != atom.arity:
                    raise ArityError(
                        f"predicate {atom.predicate!r} used with arities {known} and {atom.arity}"
                    )

    @cached_property
    def idb_predicates(self) -> frozenset:
        """Predicates occurring in the head of some rule."""
        return frozenset(rule.head.predicate for rule in self.rules)

    @cached_property
    def edb_predicates(self) -> frozenset:
        """Predicates occurring only in rule bodies."""
        preds = set()
        for rule in self.rules:
            preds.update(rule.body_predicates())
        return frozenset(preds - self.idb_predicates)

    @cached_property
    def predicates(self) -> frozenset:
        """All predicates mentioned by the program."""
        return self.idb_predicates | self.edb_predicates

    @cached_property
    def arity(self) -> Dict[str, int]:
        """Mapping predicate -> arity."""
        arities: Dict[str, int] = {}
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                arities[atom.predicate] = atom.arity
        return arities

    @cached_property
    def constants(self) -> frozenset:
        """All constants occurring in the program."""
        result = set()
        for rule in self.rules:
            result.update(rule.constants())
        return frozenset(result)

    def rules_for(self, predicate: str) -> Tuple[Rule, ...]:
        """The rules whose head predicate is *predicate*, in order."""
        return tuple(rule for rule in self.rules if rule.head.predicate == predicate)

    def is_idb(self, predicate: str) -> bool:
        """True when *predicate* occurs in some rule head."""
        return predicate in self.idb_predicates

    def require_goal(self, goal: str) -> None:
        """Raise :class:`ValidationError` unless *goal* is an IDB predicate."""
        if goal not in self.idb_predicates:
            raise ValidationError(f"goal predicate {goal!r} is not an IDB predicate of the program")

    def idb_atoms_of(self, rule: Rule) -> Tuple[Atom, ...]:
        """IDB atoms in the body of *rule*, in order."""
        return rule.idb_body_atoms(self.idb_predicates)

    def edb_atoms_of(self, rule: Rule) -> Tuple[Atom, ...]:
        """EDB atoms in the body of *rule*, in order."""
        return rule.edb_body_atoms(self.idb_predicates)

    def extend(self, rules: Iterable[Rule]) -> "Program":
        """A new program with *rules* appended."""
        return Program(self.rules + tuple(rules))

    def __iter__(self):
        return iter(self.rules)

    def __len__(self):
        return len(self.rules)

    def __str__(self):
        return "\n".join(str(rule) for rule in self.rules)

    def __repr__(self):
        return f"Program({len(self.rules)} rules, idb={sorted(self.idb_predicates)})"

    def size(self) -> int:
        """A syntactic size measure: total number of atom argument slots
        plus one per atom (used in growth benchmarks)."""
        total = 0
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                total += 1 + atom.arity
        return total
