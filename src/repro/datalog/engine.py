"""Bottom-up evaluation of Datalog programs.

Two execution paths compute the same fixpoints:

* the *interpretive* path (:func:`naive_evaluate`,
  :func:`seminaive_evaluate`) re-derives a greedy join order on every
  rule application -- kept as the reference implementation;
* the *compiled* path compiles each rule once into a
  :class:`~repro.datalog.plan.JoinPlan`, interns constants to small
  ints, and maintains hash indexes incrementally.  Two data planes
  execute those plans: the columnar batch backend
  (:mod:`repro.datalog.columns`, the default) and the row-at-a-time
  :class:`~repro.datalog.plan.PlanStore` reference
  (``EngineConfig(backend="rows")``).

Both are wrapped by :class:`Engine`, configured by
:class:`EngineConfig`; the module-level :func:`evaluate` and
:func:`query` route through a default compiled engine.

The stage-bounded relation ``Q^i_Pi(D)`` of Section 2.1 ("facts
deducible by at most i applications of the rules") is exposed via the
``max_stages`` argument: stage *i* performs one parallel application of
all rules to the stage *i-1* result.

Unsafe rules (head variables that do not occur in the body, including
empty-body rules as in Example 6.2) are evaluated under active-domain
semantics: unbound head variables range over the constants occurring in
the database, the program, or previously derived facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..budget import check_deadline
from ..context import current_session as _current_session
from .atoms import Atom
from .columns import columnar_naive, columnar_seminaive
from .database import Database
from .errors import UnsafeProgramError, ValidationError
from .plan import PlanCache, compiled_naive, compiled_seminaive
from .program import Program
from .rules import Rule
from .terms import Constant, Variable, is_variable

Row = Tuple[Constant, ...]


@dataclass
class EvaluationResult:
    """Outcome of a bottom-up evaluation.

    ``idb`` maps each IDB predicate to its derived rows; ``stages`` is
    the number of rounds executed before the fixpoint (or the stage
    bound) was reached; ``fixpoint`` tells whether a fixpoint was
    actually reached.
    """

    idb: Dict[str, FrozenSet[Row]]
    stages: int
    fixpoint: bool

    def facts(self, predicate: str) -> FrozenSet[Row]:
        """Rows derived for *predicate* (empty when none)."""
        return self.idb.get(predicate, frozenset())

    def as_database(self, base: Optional[Database] = None) -> Database:
        """The derived facts as a database, optionally merged onto *base*."""
        db = base.copy() if base is not None else Database()
        for predicate, rows in self.idb.items():
            for row in rows:
                db.add(predicate, row)
        return db


def _match_rows(atom: Atom, rows: Iterable[Row], binding: Dict[Variable, Constant]):
    """Yield extensions of *binding* unifying *atom* with each row."""
    args = atom.args
    for row in rows:
        extended = dict(binding)
        ok = True
        for arg, value in zip(args, row):
            if is_variable(arg):
                bound = extended.get(arg)
                if bound is None:
                    extended[arg] = value
                elif bound != value:
                    ok = False
                    break
            elif arg != value:
                ok = False
                break
        if ok:
            yield extended


class _Store:
    """Relation store used during evaluation: pred -> set of rows.

    Maintains lazily-built hash indexes per (predicate, position) so
    joins can look up candidate rows by a bound argument instead of
    scanning the relation.
    """

    def __init__(self, database: Database):
        self._rows: Dict[str, Set[Row]] = {}
        self._indexes: Dict[Tuple[str, int], Dict[Constant, Set[Row]]] = {}
        for predicate, row in database.facts():
            self._rows.setdefault(predicate, set()).add(row)

    def rows(self, predicate: str) -> Set[Row]:
        return self._rows.get(predicate, set())

    def candidates(self, predicate: str, position: int, value: Constant) -> Set[Row]:
        """Rows of *predicate* whose *position*-th column is *value*."""
        key = (predicate, position)
        index = self._indexes.get(key)
        if index is None:
            index = {}
            for row in self._rows.get(predicate, ()):
                index.setdefault(row[position], set()).add(row)
            self._indexes[key] = index
        return index.get(value, set())

    def add_all(self, predicate: str, rows: Iterable[Row]) -> Set[Row]:
        """Insert rows; return the genuinely new ones."""
        existing = self._rows.setdefault(predicate, set())
        fresh = {row for row in rows if row not in existing}
        existing.update(fresh)
        if fresh:
            for (pred, position), index in self._indexes.items():
                if pred != predicate:
                    continue
                for row in fresh:
                    index.setdefault(row[position], set()).add(row)
        return fresh


def _active_domain(database: Database, program: Program, store: _Store) -> List[Constant]:
    domain: Set[Constant] = set(database.active_domain())
    domain.update(program.constants)
    for predicate in program.idb_predicates:
        for row in store.rows(predicate):
            domain.update(row)
    return sorted(domain, key=repr)


def _apply_rule(rule: Rule, store: _Store, domain: List[Constant],
                delta: Optional[Tuple[int, Set[Row]]] = None) -> Set[Row]:
    """All head rows derivable by one application of *rule*.

    When *delta* is ``(index, rows)``, the body atom at *index* is
    matched against *rows* instead of the full store (semi-naive mode).
    """
    body = rule.body
    plan: List[Tuple[Atom, Optional[Set[Row]]]] = []
    for i, atom in enumerate(body):
        source = delta[1] if delta is not None and i == delta[0] else None
        plan.append((atom, source))
    # Order the join greedily, keeping the (atom, source) association.
    ordered: List[Tuple[Atom, Optional[Set[Row]]]] = []
    remaining = list(plan)
    bound: Set[Variable] = set()
    while remaining:
        def score(entry):
            atom = entry[0]
            variables = atom.variable_set()
            return (len(variables & bound) + len(atom.constants()), -len(variables - bound))

        best = max(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best[0].variable_set())

    bindings: List[Dict[Variable, Constant]] = [{}]
    bound_so_far: Set[Variable] = set()
    for atom, source in ordered:
        # Pick an indexable position: a constant argument or a variable
        # bound by the join prefix (the bound set is the same for every
        # partial binding in the batch).
        index_position = None
        for position, arg in enumerate(atom.args):
            if not is_variable(arg) or arg in bound_so_far:
                index_position = position
                break
        next_bindings: List[Dict[Variable, Constant]] = []
        if source is not None or index_position is None:
            rows = source if source is not None else store.rows(atom.predicate)
            for binding in bindings:
                next_bindings.extend(_match_rows(atom, rows, binding))
        else:
            arg = atom.args[index_position]
            for binding in bindings:
                value = binding[arg] if is_variable(arg) else arg
                rows = store.candidates(atom.predicate, index_position, value)
                next_bindings.extend(_match_rows(atom, rows, binding))
        bindings = next_bindings
        bound_so_far.update(atom.variable_set())
        if not bindings:
            return set()

    derived: Set[Row] = set()
    head = rule.head
    for binding in bindings:
        missing = [v for v in head.variable_set() if v not in binding]
        if missing:
            # Unsafe rule: instantiate unbound head variables over the
            # active domain (empty domain derives nothing).
            for values in product(domain, repeat=len(missing)):
                full = dict(binding)
                full.update(zip(missing, values))
                derived.add(tuple(full[a] if is_variable(a) else a for a in head.args))
        else:
            derived.add(tuple(binding[a] if is_variable(a) else a for a in head.args))
    return derived


def naive_evaluate(program: Program, database: Database,
                   max_stages: Optional[int] = None) -> EvaluationResult:
    """Naive (Jacobi-style) fixpoint evaluation.

    Stage *i* applies every rule to the stage *i-1* store, so the result
    after ``max_stages=i`` is exactly ``Q^i_Pi(D)`` for every IDB
    predicate Q.
    """
    store = _Store(database)
    stage = 0
    fixpoint = False
    while max_stages is None or stage < max_stages:
        check_deadline()
        domain = _active_domain(database, program, store)
        changed = False
        derived: Dict[str, Set[Row]] = {}
        for rule in program.rules:
            derived.setdefault(rule.head.predicate, set()).update(
                _apply_rule(rule, store, domain)
            )
        for predicate, rows in derived.items():
            if store.add_all(predicate, rows):
                changed = True
        stage += 1
        if not changed:
            fixpoint = True
            stage -= 1  # the last round derived nothing new
            break
    idb = {p: frozenset(store.rows(p)) for p in program.idb_predicates}
    return EvaluationResult(idb=idb, stages=stage, fixpoint=fixpoint)


def seminaive_evaluate(program: Program, database: Database,
                       max_stages: Optional[int] = None) -> EvaluationResult:
    """Semi-naive fixpoint evaluation with per-IDB-occurrence deltas."""
    store = _Store(database)
    idb = program.idb_predicates
    domain = _active_domain(database, program, store)

    # Stage 1: full application of every rule to the EDB-only store.
    delta: Dict[str, Set[Row]] = {p: set() for p in idb}
    for rule in program.rules:
        fresh = store.add_all(rule.head.predicate, _apply_rule(rule, store, domain))
        delta[rule.head.predicate].update(fresh)
    stage = 1 if any(delta.values()) else 0
    fixpoint = not any(delta.values())

    while any(delta.values()) and (max_stages is None or stage < max_stages):
        check_deadline()
        domain = _active_domain(database, program, store)
        new_delta: Dict[str, Set[Row]] = {p: set() for p in idb}
        changed = False
        for rule in program.rules:
            for index, atom in enumerate(rule.body):
                if atom.predicate not in idb:
                    continue
                focus = delta.get(atom.predicate)
                if not focus:
                    continue
                rows = _apply_rule(rule, store, domain, delta=(index, focus))
                fresh = store.add_all(rule.head.predicate, rows)
                if fresh:
                    new_delta[rule.head.predicate].update(fresh)
                    changed = True
        delta = new_delta
        if changed:
            stage += 1
        else:
            fixpoint = True
            break
    if not any(delta.values()):
        fixpoint = True
    idb_rows = {p: frozenset(store.rows(p)) for p in idb}
    return EvaluationResult(idb=idb_rows, stages=stage, fixpoint=fixpoint)


_STRATEGIES = ("auto", "naive", "seminaive")
_BACKENDS = ("columnar", "rows")
_JOINS = ("fused", "basic")


def _validate_program(program: Program) -> None:
    """The ``EngineConfig(validate=True)`` gate: raise
    :class:`UnsafeProgramError` when the static analyzer finds
    error-severity diagnostics."""
    # Local import: repro.analysis sits above the datalog substrate.
    from ..analysis.checks import safety_errors

    errors = safety_errors(program)
    if errors:
        raise UnsafeProgramError(
            f"program rejected by validate gate: "
            f"{len(errors)} error diagnostic(s), first: {errors[0].render()}",
            diagnostics=[d.as_dict() for d in errors])


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the evaluation engine.

    ``strategy``
        ``"auto"`` (semi-naive, falling back to naive rounds when
        ``max_stages`` is given -- stage-bounded semantics is defined by
        naive rounds), ``"naive"``, or ``"seminaive"``.
    ``compiled``
        Use the compiled join-plan path instead of the interpretive one.
    ``backend``
        Data plane of the compiled path: ``"columnar"`` (the default --
        :mod:`repro.datalog.columns`: array-of-ids relation columns,
        batch join kernels, packed-key dedup, cached EDB images) or
        ``"rows"`` (:mod:`repro.datalog.plan`'s row-at-a-time
        :class:`~repro.datalog.plan.PlanStore`, kept as the reference
        path).  Ignored when ``compiled=False``.
    ``joins``
        Batch join kernels of the columnar backend: ``"fused"`` (the
        default -- bitmap semijoin pre-filters, radix-partitioned hash
        joins, fused filter+project with dead-register elimination and
        materialized-view reuse; see
        :func:`~repro.datalog.columns.execute_batch_fused`) or
        ``"basic"`` (the PR 4 reference kernels, kept as the
        differential baseline).  Ignored by the ``"rows"`` backend and
        the interpretive path.
    ``interning`` / ``indexing``
        Toggles of the ``"rows"`` backend: intern constants to small
        ints; maintain per-(predicate, column) hash indexes.  The
        columnar backend is inherently interned and indexed, and the
        interpretive path keeps its own lazy indexes -- both ignore
        these.
    ``validate``
        Refuse programs with error-severity static diagnostics:
        :meth:`Engine.evaluate` raises
        :class:`~repro.datalog.errors.UnsafeProgramError` (carrying
        the analyzer's diagnostics) instead of evaluating unsafe rules
        under active-domain semantics.  Off by default -- the engines
        define active-domain behaviour for unsafe rules and the fuzz
        differential relies on it.
    """

    strategy: str = "auto"
    compiled: bool = True
    backend: str = "columnar"
    joins: str = "fused"
    interning: bool = True
    indexing: bool = True
    validate: bool = False

    def __post_init__(self):
        if self.strategy not in _STRATEGIES:
            raise ValidationError(
                f"unknown strategy {self.strategy!r}; expected one of {_STRATEGIES}"
            )
        if self.backend not in _BACKENDS:
            raise ValidationError(
                f"unknown backend {self.backend!r}; expected one of {_BACKENDS}"
            )
        if self.joins not in _JOINS:
            raise ValidationError(
                f"unknown joins {self.joins!r}; expected one of {_JOINS}"
            )


class Engine:
    """A reusable evaluator: compiled plans are cached across calls.

    Both paths produce bit-identical :class:`EvaluationResult` values
    (including ``stages`` and ``fixpoint``); the compiled path is the
    default and the faster one.
    """

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()
        self._plans = PlanCache()

    def evaluate(self, program: Program, database: Database,
                 max_stages: Optional[int] = None) -> EvaluationResult:
        """Evaluate *program* on *database* under this configuration."""
        cfg = self.config
        if cfg.validate:
            _validate_program(program)
        use_naive = cfg.strategy == "naive" or (
            cfg.strategy == "auto" and max_stages is not None)
        if not cfg.compiled:
            runner = naive_evaluate if use_naive else seminaive_evaluate
            return runner(program, database, max_stages=max_stages)
        if cfg.backend == "columnar":
            runner = columnar_naive if use_naive else columnar_seminaive
            idb, stages, fixpoint = runner(program, database, max_stages,
                                           cache=self._plans,
                                           joins=cfg.joins)
        else:
            runner = compiled_naive if use_naive else compiled_seminaive
            idb, stages, fixpoint = runner(
                program, database, max_stages,
                interning=cfg.interning, indexing=cfg.indexing,
                cache=self._plans,
            )
        return EvaluationResult(idb=idb, stages=stages, fixpoint=fixpoint)

    def query(self, program: Program, database: Database, goal: str,
              max_stages: Optional[int] = None) -> FrozenSet[Row]:
        """The relation ``goal_Pi(D)`` (or its stage-bounded version)."""
        program.require_goal(goal)
        return self.evaluate(program, database, max_stages=max_stages).facts(goal)

    def clear_plans(self) -> None:
        """Drop this engine's compiled-plan cache."""
        self._plans.clear()

    def export_plans(self):
        """A copy of the compiled-plan table (``(rule, delta_index) ->
        JoinPlan``) -- what :mod:`repro.snapshot` persists."""
        return self._plans.export()

    def adopt_plans(self, plans) -> None:
        """Merge a snapshot's plan table into this engine's cache
        (existing entries win: they are already resolved against live
        state)."""
        self._plans.adopt(plans)

    def plan_cache_size(self) -> int:
        """Number of compiled plans currently cached (diagnostics --
        the session facade reports it in ``cache_stats()``)."""
        return len(self._plans)


#: The process seed engine: wrapped by the default session, and the
#: pre-session fallback while the package is still importing.
_DEFAULT_ENGINE = Engine()


def process_default_engine() -> Engine:
    """The process seed engine (the one the default session wraps).

    Internal plumbing for :mod:`repro.session`; everything else should
    use :func:`default_engine`, which is session-aware.
    """
    return _DEFAULT_ENGINE


def default_engine() -> Engine:
    """The ambient session's engine (used by :func:`evaluate`).

    Resolution goes through the ambient :class:`~repro.session.Session`
    held in a :class:`contextvars.ContextVar`, so concurrent sessions
    with different engine configurations do not share a mutable module
    global.
    """
    session = _current_session()
    return session.engine if session is not None else _DEFAULT_ENGINE


def clear_default_plan_cache() -> None:
    """Drop the *default session's* compiled-plan cache.

    Registered with the kernel's shared-cache registry (see
    :func:`repro.core.register_core_caches`), so
    :func:`repro.core.clear_shared_caches` -- the cold-start hook of
    the benchmark harness and batch runner -- resets compiled plans
    along with the automaton caches.  Session-private plan caches are
    cleared by :meth:`repro.session.Session.clear_caches` instead.
    """
    _DEFAULT_ENGINE.clear_plans()


def evaluate(program: Program, database: Database,
             max_stages: Optional[int] = None,
             engine: Optional[Engine] = None) -> EvaluationResult:
    """Evaluate *program* on *database* (compiled semi-naive by default;
    see module docs).  ``engine=None`` uses the ambient session's
    engine."""
    return (engine or default_engine()).evaluate(program, database,
                                                 max_stages=max_stages)


def query(program: Program, database: Database, goal: str,
          max_stages: Optional[int] = None,
          engine: Optional[Engine] = None) -> FrozenSet[Row]:
    """The relation ``goal_Pi(D)`` (or its stage-bounded version)."""
    return (engine or default_engine()).query(program, database, goal,
                                              max_stages=max_stages)
