"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle anything the library may raise.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when Datalog source text cannot be parsed.

    Carries the line and column of the offending token when available.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ArityError(ReproError):
    """Raised when a predicate is used with inconsistent arities."""


class ValidationError(ReproError):
    """Raised when a program or query violates a structural requirement."""


class NotNonrecursiveError(ValidationError):
    """Raised when a nonrecursive program was required but a recursive
    one was supplied."""


class NotLinearError(ValidationError):
    """Raised when a linear program was required but a nonlinear one was
    supplied."""


class UnsafeProgramError(ValidationError):
    """Raised by the ``EngineConfig(validate=True)`` gate when a program
    carries error-severity diagnostics (unsafe rules).

    ``diagnostics`` holds the analyzer findings as plain dicts (see
    :mod:`repro.analysis.diagnostics`) so callers — ``Session``, the
    service protocol — can forward them as typed error payloads.
    """

    def __init__(self, message, diagnostics=()):
        self.diagnostics = [dict(d) for d in diagnostics]
        super().__init__(message)


class EvaluationError(ReproError):
    """Raised when bottom-up evaluation cannot proceed (e.g. an unsafe
    rule over an empty active domain)."""
