"""Terms of the Datalog language: variables and constants.

The paper's language is function-free (Datalog), so a term is either a
variable or a constant.  Constants are permitted throughout per
Remark 5.14 of the paper.

Both term kinds are immutable and hashable so they can be used freely
as dictionary keys in substitutions and homomorphisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Variable:
    """A first-order variable, identified by its name.

    By parser convention variable names start with an uppercase letter
    or an underscore, but any string is accepted when constructing
    programmatically.
    """

    name: str

    def __str__(self):
        return self.name

    def __repr__(self):
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant symbol.  The payload may be a string or an integer."""

    value: Union[str, int]

    def __str__(self):
        if isinstance(self.value, int):
            return str(self.value)
        if self.value and self.value[0].islower() and self.value.isalnum():
            return self.value
        return repr(self.value)

    def __repr__(self):
        return f"Constant({self.value!r})"


Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """Return True when *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return True when *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


class FreshVariableFactory:
    """Produces variables guaranteed not to clash with a given set.

    The factory emits names of the form ``prefix0, prefix1, ...`` and
    skips any name present in the avoid-set supplied at construction or
    added later via :meth:`avoid`.
    """

    def __init__(self, avoid=(), prefix="V"):
        self._avoid = {v.name if isinstance(v, Variable) else str(v) for v in avoid}
        self._prefix = prefix
        self._counter = 0

    def avoid(self, names):
        """Add more names (or Variables) that must not be produced."""
        for name in names:
            self._avoid.add(name.name if isinstance(name, Variable) else str(name))

    def fresh(self) -> Variable:
        """Return a new variable distinct from everything seen so far."""
        while True:
            candidate = f"{self._prefix}{self._counter}"
            self._counter += 1
            if candidate not in self._avoid:
                self._avoid.add(candidate)
                return Variable(candidate)
