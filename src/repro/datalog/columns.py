"""Columnar relation storage and batch join kernels.

The compiled plan path (:mod:`repro.datalog.plan`) already fixes the
join order and interns constants, but it still *executes* one Python
tuple at a time: ``ResolvedPlan.execute`` recurses row by row through
the register program.  At 10^5--10^6 EDB facts that per-row
interpretation dominates.  This module is the data-plane analogue of
the bitset automaton kernel (PR 2): a representation change that lets
the hot loops run inside the CPython C runtime.

Three ideas, in the spirit of Souffle-style compiled Datalog:

* **Columnar, interned relations.**  :class:`ColumnStore` keeps each
  relation as parallel ``array('q')`` columns of interned constant
  ids.  The extensional part is built once per :class:`Database` into
  an immutable :class:`EdbImage` (C-level ``zip`` transpose, bulk
  ``map`` interning) and cached, so repeated evaluations over the same
  database -- fixpoint probes, benchmark repeats, magic counts -- skip
  re-interning entirely.  The image cache lives in the ambient
  session's cache scope (:mod:`repro.context`), so
  ``clear_shared_caches()`` / ``Session.clear_caches()`` (cold
  benchmark mode) drop it along with the automaton caches and two live
  sessions never share images.
* **Batch execution of join plans.**  :func:`execute_batch` runs a
  :class:`~repro.datalog.plan.ResolvedPlan` over a whole frontier at
  once.  The frontier is a set of register *columns*; each plan step
  probes a hash index with ``dict.get``, fans out matches with C-level
  ``list.extend``/``itertools.repeat``, gathers columns with
  ``map(array.__getitem__, ids)``, and applies residual
  constant/equality checks as vectorized filters.  No per-row Python
  function calls, no recursion.
* **Packed-key dedup.**  A derived row is identified by one Python
  int -- its column ids packed positionally with base ``B`` (the
  sealed interner size) -- so deduplication against the stable store
  is a C-level ``set`` difference over ints instead of tuple hashing,
  and only the genuinely fresh rows are unpacked back into columns.

The drivers :func:`columnar_naive` and :func:`columnar_seminaive`
mirror :func:`~repro.datalog.plan.compiled_naive` /
:func:`~repro.datalog.plan.compiled_seminaive` stage by stage, so
results -- ``idb`` rows, ``stages``, ``fixpoint`` -- are bit-identical
to both the row-at-a-time compiled path and the interpretive reference
(asserted by the differential fuzz suite in ``tests/test_columnar.py``).

    >>> from repro.datalog.parser import parse_program
    >>> from repro.datalog.database import Database
    >>> from repro.datalog.engine import Engine, EngineConfig
    >>> program = parse_program('p(X, Y) :- e(X, Z), e(Z, Y).')
    >>> db = Database.from_facts([("e", ("a", "b")), ("e", ("b", "c"))])
    >>> sorted(Engine(EngineConfig(backend="columnar"))
    ...        .query(program, db, "p"))
    [(Constant('a'), Constant('c'))]
"""

from __future__ import annotations

import weakref
from array import array
from itertools import compress, repeat
from operator import eq as _eq
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..budget import check_deadline
from ..context import current_scope as _current_scope
from .database import Database
from .plan import OP_BIND, OP_CHECK, OP_CONST, PlanCache, ResolvedPlan
from .program import Program
from .terms import Constant

__all__ = [
    "ColumnStore",
    "EdbImage",
    "adopt_image",
    "clear_edb_images",
    "columnar_naive",
    "columnar_seminaive",
    "edb_image",
    "execute_batch",
    "execute_batch_fused",
    "peek_image",
]

_EMPTY: tuple = ()


# ----------------------------------------------------------------------
# Packed row keys.
#
# A row (i0, ..., ik) of interned ids < B is identified by the single
# int ((i0*B + i1)*B + i2)... -- positional base-B packing.  Python
# ints are unbounded, so any arity works; packing and unpacking are
# specialised for the common arities so the per-row work stays inside
# comprehensions.
# ----------------------------------------------------------------------

def _pack(cols: Sequence[Sequence[int]], n: int, base: int) -> List[int]:
    """Pack parallel columns into one key per row."""
    arity = len(cols)
    if arity == 0:
        return [0] * n
    if arity == 1:
        return list(cols[0])
    if arity == 2:
        return [a * base + b for a, b in zip(cols[0], cols[1])]
    if arity == 3:
        return [(a * base + b) * base + c
                for a, b, c in zip(cols[0], cols[1], cols[2])]
    keys = list(cols[0])
    for col in cols[1:]:
        keys = [k * base + v for k, v in zip(keys, col)]
    return keys


def _unpack(keys: Iterable[int], arity: int, base: int) -> List[List[int]]:
    """Invert :func:`_pack`: per-row keys back into parallel columns."""
    if arity == 0:
        return []
    if arity == 1:
        return [list(keys)]
    if arity == 2:
        pairs = [divmod(k, base) for k in keys]
        return [[a for a, _ in pairs], [b for _, b in pairs]]
    cols: List[List[int]] = [[] for _ in range(arity)]
    appends = [col.append for col in cols]
    for key in keys:
        for position in range(arity - 1, 0, -1):
            key, value = divmod(key, base)
            appends[position](value)
        appends[0](key)
    return cols


class Batch:
    """A set of rows of one relation, in columnar form.

    ``keys`` are the packed row identities (unique within the batch),
    ``cols`` the parallel id columns, ``n`` the row count.  Batches are
    how deltas travel between semi-naive rounds.
    """

    __slots__ = ("n", "keys", "cols")

    def __init__(self, keys: List[int], cols: Sequence[Sequence[int]]):
        self.keys = keys
        self.cols = cols
        self.n = len(keys)

    def __bool__(self):
        return self.n > 0


# ----------------------------------------------------------------------
# The cached extensional image.
# ----------------------------------------------------------------------

class EdbImage:
    """The immutable columnar form of one :class:`Database`.

    Holds the interner (``ids``/``values``), per-relation id columns,
    the extensional active domain, and lazily-built hash indexes.
    Shared across evaluations: :class:`ColumnStore` copies only what it
    mutates (the domain set and any relation a program derives into).
    The interner is deliberately *shared and append-only* -- later
    programs may add their constants, which never invalidates existing
    columns.
    """

    __slots__ = ("ids", "values", "cols", "counts", "domain", "indexes",
                 "frozen", "version", "__weakref__")

    #: Bound on the materialized-view cache (``frozen``): distinct
    #: derived relations kept un-interned per image.
    _MAX_FROZEN = 16

    def __init__(self, database: Database):
        self.ids: Dict[Constant, int] = {}
        self.values: List[Constant] = []
        self.cols: Dict[str, Tuple[array, ...]] = {}
        self.counts: Dict[str, int] = {}
        self.domain: Set[int] = set()
        self.indexes: Dict[Tuple[str, int], Dict[int, List[int]]] = {}
        # Materialized-view cache of the fused path: (predicate, arity,
        # base, packed keyset) -> frozenset of constant rows.  Keyed by
        # the exact derived content, so repeated evaluations of the
        # same program skip re-building 10^5 constant tuples.
        self.frozen: Dict[tuple, frozenset] = {}
        self.version = database.version()
        ids, values = self.ids, self.values
        for predicate, rows in database.relations():
            if not rows:
                continue
            columns = list(zip(*rows))  # C-level transpose
            int_cols: List[array] = []
            for column in columns:
                missing = set(column).difference(ids)
                for constant in missing:  # distinct constants only
                    ids[constant] = len(values)
                    values.append(constant)
                int_col = array("q", map(ids.__getitem__, column))
                int_cols.append(int_col)
                self.domain.update(int_col)
            self.cols[predicate] = tuple(int_cols)
            self.counts[predicate] = len(rows)

    def __getstate__(self):
        # Snapshot support: indexes and materialized views are derived
        # caches -- carrying them keeps a restored image fully warm.
        return (self.ids, self.values, self.cols, self.counts, self.domain,
                self.indexes, self.frozen, self.version)

    def __setstate__(self, state):
        (self.ids, self.values, self.cols, self.counts, self.domain,
         self.indexes, self.frozen, self.version) = state

    def index(self, predicate: str, position: int):
        """The (built-once) hash index on *position* of *predicate*,
        as ``(mapping, unique)``.

        When the column is a unique key -- the common case for edge
        relations indexed on their source -- the mapping holds bare row
        ids and probes can run as one C-level ``map``; otherwise values
        map to row-id lists.
        """
        key = (predicate, position)
        entry = self.indexes.get(key)
        if entry is None:
            index: Dict[int, object] = {}
            get = index.get
            unique = True
            cols = self.cols.get(predicate)
            if cols:
                for row_id, value in enumerate(cols[position]):
                    current = get(value)
                    if current is None:
                        index[value] = row_id
                    elif type(current) is int:
                        index[value] = [current, row_id]
                        unique = False
                    else:
                        current.append(row_id)
            if not unique:
                index = {value: (ids if type(ids) is list else [ids])
                         for value, ids in index.items()}
            entry = (index, unique)
            self.indexes[key] = entry
        return entry


#: Scope-table name: id(database) -> (weakref-to-database, EdbImage).
#: Keyed by identity because Database defines __eq__ without __hash__;
#: weakrefs evict entries when the database dies, _MAX_IMAGES bounds
#: the live set.  The table lives in the ambient session's
#: :class:`~repro.context.CacheScope`, so concurrent sessions image the
#: same database independently (zero cache bleed) and
#: ``Session.clear_caches()`` drops images along with the automaton
#: caches.
_IMAGES_TABLE = "datalog.edb_images"
_MAX_IMAGES = 64


def __getattr__(name):
    # Backward compatibility: the image table used to be the module
    # global ``_EDB_IMAGES``.  Expose the ambient scope's live table
    # under the old name (scopes clear tables in place, so a reference
    # bound at import time stays truthful for the default session).
    if name == "_EDB_IMAGES":
        return _current_scope().table(_IMAGES_TABLE)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def clear_edb_images() -> None:
    """Drop the ambient scope's cached :class:`EdbImage` entries
    (cold-start hook; the default session's scope is also cleared by
    :func:`repro.core.clear_shared_caches`)."""
    _current_scope().table(_IMAGES_TABLE).clear()


def edb_image(database: Database) -> EdbImage:
    """The cached columnar image of *database* (rebuilt when the
    database's mutation version moved)."""
    scope = _current_scope()
    images = scope.table(_IMAGES_TABLE)
    key = id(database)
    entry = images.get(key)
    if entry is not None:
        ref, image = entry
        if ref() is database and image.version == database.version():
            scope.hit(_IMAGES_TABLE)
            return image
        del images[key]
    scope.miss(_IMAGES_TABLE)
    image = EdbImage(database)
    if len(images) >= _MAX_IMAGES:
        images.clear()

    def _evict(_ref, _images=images, _key=key):
        _images.pop(_key, None)

    images[key] = (weakref.ref(database, _evict), image)
    return image


def peek_image(database: Database, scope=None) -> Optional[EdbImage]:
    """The cached image of *database* if one is live and current --
    never builds.  *scope* defaults to the ambient session's."""
    scope = scope or _current_scope()
    entry = scope.table(_IMAGES_TABLE).get(id(database))
    if entry is not None:
        ref, image = entry
        if ref() is database and image.version == database.version():
            return image
    return None


def adopt_image(database: Database, image: EdbImage, scope=None) -> bool:
    """Install a previously-built *image* (snapshot-restored, or kept
    from an earlier build of a deterministic payload) as *database*'s
    cached image, skipping the interning pass.

    Sound only when the image's logical content equals the database's;
    callers guarantee that by construction (registry scenario payloads
    are deterministic by contract), and a relation-shape check --
    same predicates, arities, and row counts -- guards against wiring
    mistakes.  Returns ``False`` (and installs nothing) on mismatch.
    """
    relations = [(predicate, rows)
                 for predicate, rows in database.relations() if rows]
    if len(relations) != len(image.cols):
        return False
    for predicate, rows in relations:
        cols = image.cols.get(predicate)
        if cols is None or image.counts.get(predicate) != len(rows):
            return False
        if len(cols) != len(next(iter(rows))):
            return False
    image.version = database.version()
    scope = scope or _current_scope()
    images = scope.table(_IMAGES_TABLE)
    key = id(database)
    if len(images) >= _MAX_IMAGES:
        images.clear()

    def _evict(_ref, _images=images, _key=key):
        _images.pop(_key, None)

    images[key] = (weakref.ref(database, _evict), image)
    scope.hit(_IMAGES_TABLE)
    return True


# ----------------------------------------------------------------------
# The mutable per-evaluation store.
# ----------------------------------------------------------------------

class ColumnStore:
    """Columnar counterpart of :class:`~repro.datalog.plan.PlanStore`.

    Extensional relations are *shared* with the cached
    :class:`EdbImage`; relations the program derives into (the IDB
    predicates) get private copies of their columns, packed-key sets,
    and indexes, maintained incrementally per batch insert.  Duck-types
    the ``resolve``/``require_index``/``indexing`` surface that
    :meth:`~repro.datalog.plan.JoinPlan.resolve` binds against, so the
    same compiled :class:`~repro.datalog.plan.JoinPlan` serves both
    backends.
    """

    __slots__ = ("_image", "_idb", "_ids", "_values", "_domain", "_cols",
                 "_counts", "_keys", "_indexes", "_arity", "_fused", "base")

    def __init__(self, database: Database, idb: Iterable[str], *,
                 fused: bool = False):
        image = edb_image(database)
        self._image = image
        self._idb = frozenset(idb)
        self._fused = fused
        # The interner is shared (append-only); the domain is private
        # (programs add their constants and derived values to it).
        self._ids = image.ids
        self._values = image.values
        self._domain: Set[int] = set(image.domain)
        self._cols: Dict[str, List[List[int]]] = {}
        self._counts: Dict[str, int] = {}
        self._keys: Dict[str, Set[int]] = {}
        self._indexes: Dict[Tuple[str, int], Dict[int, List[int]]] = {}
        self._arity: Dict[str, int] = {}
        self.base = 0  # set by seal()
        for predicate in self._idb:
            cols = image.cols.get(predicate)
            if cols is not None:
                # Derived-into relation with extensional seed rows
                # (e.g. magic seeds): private, growable copies.
                self._cols[predicate] = [list(col) for col in cols]
                self._counts[predicate] = image.counts[predicate]

    # -- JoinPlan.resolve surface --------------------------------------

    indexing = True
    interning = True

    def resolve(self, constant: Constant):
        """Intern *constant*; resolved constants join the active domain
        (mirroring the row-at-a-time path)."""
        ident = self._ids.get(constant)
        if ident is None:
            ident = len(self._values)
            self._ids[constant] = ident
            self._values.append(constant)
        self._domain.add(ident)
        return ident

    def require_index(self, predicate: str, position: int) -> None:
        """No-op hook of the ``JoinPlan.resolve`` surface: columnar
        indexes are built lazily at first probe (in the shared image
        for extensional relations, privately for derived ones), so
        registration carries no state."""

    # -- relation access ----------------------------------------------

    def seal(self) -> None:
        """Fix the packed-key base.  Call after every plan is resolved:
        no new constants are interned during execution (head values
        come from body rows or the active domain), so ``base`` bounds
        every id a packed key will ever carry."""
        self.base = len(self._values) + 1

    def count(self, predicate: str) -> int:
        n = self._counts.get(predicate)
        if n is not None:
            return n
        if predicate in self._idb:
            return 0
        return self._image.counts.get(predicate, 0)

    def cols(self, predicate: str) -> Sequence[Sequence[int]]:
        cols = self._cols.get(predicate)
        if cols is not None:
            return cols
        if predicate in self._idb:
            return _EMPTY
        return self._image.cols.get(predicate, _EMPTY)

    def index(self, predicate: str, position: int):
        """The hash index for a probe, as ``(mapping, unique)`` --
        image-cached (with the unique-key specialization) for
        extensional relations; private, list-valued, and incrementally
        maintained for derived ones."""
        if predicate not in self._idb:
            return self._image.index(predicate, position)
        key = (predicate, position)
        index = self._indexes.get(key)
        if index is None:
            index = {}
            setdefault = index.setdefault
            cols = self._cols.get(predicate)
            if cols:
                for row_id, value in enumerate(cols[position]):
                    setdefault(value, []).append(row_id)
            self._indexes[key] = index
        return index, False

    def keyset(self, predicate: str) -> Set[int]:
        """The packed identities of the relation's current rows (built
        on first use; IDB relations usually start empty, so this is
        free on the hot path)."""
        keys = self._keys.get(predicate)
        if keys is None:
            count = self._counts.get(predicate, 0)
            if count:
                keys = set(_pack(self._cols[predicate], count, self.base))
            else:
                keys = set()
            self._keys[predicate] = keys
        return keys

    def add_keys(self, predicate: str, keys: Iterable[int],
                 arity: int) -> Optional[Batch]:
        """Insert rows (given by packed key); maintain columns, the
        keyset, registered indexes, and the domain; return the
        genuinely fresh rows as a :class:`Batch` (``None`` when every
        row was already present)."""
        existing = self.keyset(predicate)
        fresh = set(keys).difference(existing)
        if not fresh:
            return None
        existing.update(fresh)
        fresh_keys = list(fresh)
        if self._fused and arity == 2:
            # Fused fast path: two plain int-op passes instead of one
            # divmod pass that allocates a pair tuple per row.
            base = self.base
            fresh_cols = [[k // base for k in fresh_keys],
                          [k % base for k in fresh_keys]]
        else:
            fresh_cols = _unpack(fresh_keys, arity, self.base)
        cols = self._cols.get(predicate)
        if cols is None:
            cols = self._cols[predicate] = [[] for _ in range(arity)]
            self._counts[predicate] = 0
        start = self._counts[predicate]
        count = len(fresh_keys)
        domain = self._domain
        for column, fresh_column in zip(cols, fresh_cols):
            column.extend(fresh_column)
            domain.update(fresh_column)
        self._counts[predicate] = start + count
        self._arity.setdefault(predicate, arity)
        for (pred, position), index in self._indexes.items():
            if pred != predicate:
                continue
            setdefault = index.setdefault
            column = fresh_cols[position] if arity else ()
            for offset, value in enumerate(column):
                setdefault(value, []).append(start + offset)
        return Batch(fresh_keys, fresh_cols)

    def domain(self) -> List[int]:
        """The active domain, deterministically ordered (only consulted
        when some rule is unsafe)."""
        return sorted(self._domain)

    def unintern_rows(self, predicate: str):
        """The relation as a frozenset of constant tuples -- C-level
        ``zip`` over ``map``-translated columns.

        Under the fused kernels the result is memoized on the shared
        :class:`EdbImage` keyed by the *exact* packed keyset (plus
        predicate, arity and packed base, so re-interpretation under a
        different interner state can never alias): re-deriving the same
        relation -- warm benchmark repeats, repeated service decisions
        -- skips re-building the constant tuples entirely.  The key
        match is by content equality, not by hash alone, so a hit is
        always the identical relation.
        """
        count = self.count(predicate)
        if not count:
            return frozenset()
        cols = self.cols(predicate)
        if not cols:  # 0-ary relation with at least one (empty) row
            return frozenset({()})
        cache_key = None
        if self._fused and predicate in self._idb:
            image = self._image
            cache_key = (predicate, len(cols), self.base,
                         frozenset(self.keyset(predicate)))
            cached = image.frozen.get(cache_key)
            if cached is not None:
                return cached
        getter = self._values.__getitem__
        rows = frozenset(zip(*[map(getter, col) for col in cols]))
        if cache_key is not None:
            if len(image.frozen) >= EdbImage._MAX_FROZEN:
                image.frozen.clear()
            image.frozen[cache_key] = rows
        return rows


# ----------------------------------------------------------------------
# Batch plan execution.
# ----------------------------------------------------------------------

def _gather(column: Sequence[int], ids: List[int]) -> List[int]:
    return list(map(column.__getitem__, ids))


def execute_batch(rplan: ResolvedPlan, store: ColumnStore, domain,
                  delta: Optional[Batch] = None,
                  dedup: Optional[Set[int]] = None) -> List[int]:
    """One application of *rplan* over whole column slices.

    Returns the packed keys of the derived head rows that are not in
    *dedup* (the stable store's keyset), deduplicated within the batch.
    Set semantics throughout: the *set* of returned rows is exactly
    what :meth:`ResolvedPlan.execute` would derive minus *dedup*.
    """
    check_deadline()
    regs: Dict[int, List[int]] = {}
    n = -1  # -1: virgin frontier (one empty row)
    for predicate, use_delta, index_spec, ops in rplan.steps:
        if use_delta:
            rel_cols: Sequence[Sequence[int]] = delta.cols
            rel_n = delta.n
        else:
            rel_cols = store.cols(predicate)
            rel_n = store.count(predicate)

        # --- candidate (frontier row, relation row) pairs ---
        out_f = None
        if not use_delta and index_spec is not None:
            position, is_reg, payload = index_spec
            index, unique = store.index(predicate, position)
            if is_reg and n >= 0:
                key_col = regs[payload]
                if unique:
                    # Unique-key probe: one C-level map, then a single
                    # compress pass when some keys missed.
                    hits = list(map(index.get, key_col))
                    if None in hits:
                        out_f = [i for i, h in enumerate(hits)
                                 if h is not None]
                        out_r = _gather(hits, out_f)
                    else:
                        out_r = hits
                        out_f = range(n)
                else:
                    out_f, out_r = [], []
                    extend_f, extend_r = out_f.extend, out_r.extend
                    get = index.get
                    for i, value in enumerate(key_col):
                        ids = get(value)
                        if ids is not None:
                            extend_r(ids)
                            extend_f(repeat(i, len(ids)))
            else:
                # Constant probe (or a reg probe off a virgin frontier,
                # which compilation never emits).
                ids = index.get(payload if not is_reg else None)
                if ids is None:
                    return []
                if unique:
                    ids = [ids]
                if n <= 0:
                    out_r = list(ids)
                    if n == 0:
                        return []
                else:
                    out_r = list(ids) * n
                    out_f = [i for i in range(n) for _ in ids]
        else:
            # Full scan (or delta scan): cross product with the frontier.
            if rel_n == 0:
                return []
            if n <= 0:
                if n == 0:
                    return []
                out_r = list(range(rel_n))
            else:
                out_r = list(range(rel_n)) * n
                out_f = [i for i in range(n) for _ in range(rel_n)]

        if not out_r:
            return []

        # --- residual ops: vectorized filters, deferred binds ---
        pending_binds: Dict[int, int] = {}  # reg -> relation position
        gathered: Dict[int, List[int]] = {}
        for position, op, payload in ops:
            if op == OP_BIND:
                pending_binds[payload] = position
                continue
            column = gathered.get(position)
            if column is None:
                column = gathered[position] = _gather(rel_cols[position],
                                                      out_r)
            if op == OP_CONST:
                keep = [j for j, v in enumerate(column) if v == payload]
            else:  # OP_CHECK
                bound_pos = pending_binds.get(payload)
                if bound_pos is not None:
                    other = gathered.get(bound_pos)
                    if other is None:
                        other = gathered[bound_pos] = _gather(
                            rel_cols[bound_pos], out_r)
                else:
                    other = (_gather(regs[payload], out_f)
                             if out_f is not None else [])
                keep = [j for j, pair in enumerate(zip(column, other))
                        if pair[0] == pair[1]]
            if len(keep) != len(column):
                if not keep:
                    return []
                out_r = _gather(out_r, keep)
                if out_f is not None:
                    out_f = _gather(out_f, keep)
                gathered = {pos: _gather(col, keep)
                            for pos, col in gathered.items()}

        # --- build the next frontier's register columns ---
        next_regs: Dict[int, List[int]] = {}
        if out_f is not None:
            if type(out_f) is range:  # identity selection (full unique hit)
                next_regs.update(regs)
            else:
                for reg, column in regs.items():
                    next_regs[reg] = _gather(column, out_f)
        for reg, position in pending_binds.items():
            column = gathered.get(position)
            if column is None:
                column = _gather(rel_cols[position], out_r)
            next_regs[reg] = column
        regs = next_regs
        n = len(out_r)

    if n < 0:
        n = 1  # empty body: one empty binding
    if n == 0:
        return []

    # --- unsafe head variables range over the active domain ---
    for reg in rplan.unsafe_regs:
        m = len(domain)
        if m == 0:
            return []
        spread = [i for i in range(n) for _ in range(m)]
        regs = {r: _gather(col, spread) for r, col in regs.items()}
        regs[reg] = list(domain) * n
        n *= m

    # --- emit: head columns -> packed keys -> dedup ---
    head_cols = [regs[payload] if is_reg else [payload] * n
                 for is_reg, payload in rplan.head_ops]
    keys = _pack(head_cols, n, store.base)
    if dedup:
        return list(set(keys).difference(dedup))
    return list(set(keys))


# ----------------------------------------------------------------------
# Fused batch kernels.
#
# Same candidate sets, same derived keys -- less Python in between.
# Three techniques on top of execute_batch:
#
# * **Bitmap semijoin pre-filters.**  Register probes first compute a
#   membership bitmap with one C-level ``map(index.__contains__, ...)``
#   and shrink the frontier through ``itertools.compress`` *before* the
#   fan-out, so the per-row Python loop only ever visits rows that
#   join.  On BFS-shaped workloads (reach deltas re-probing visited
#   nodes) most of the frontier dies in the bitmap.
# * **Radix-partitioned hash joins.**  A delta or full scan whose atom
#   equi-joins an earlier-bound register no longer cross-products the
#   frontier and filters: the scan side is partitioned by its join
#   column into per-key row buckets (single-level radix on the full
#   key -- CPython dict buckets; finer bit-level passes lose to the
#   dict) and probed with the frontier's register column like any
#   other index.  Turns the O(frontier x relation) candidate build
#   into O(frontier + relation + matches).
# * **Fused filter+project.**  Constant and same-atom equality filters
#   on scan steps are applied to the relation *before* it meets the
#   frontier (``map(payload.__eq__, col)`` bitmaps -- the filtered
#   cross product is never materialized); a backward liveness pass over
#   the register program drops dead registers at each step (no gathers
#   for columns nothing downstream reads), and steps carrying no live
#   registers skip building the frontier-correspondence column
#   ``out_f`` entirely.
#
# The metadata is compiled once per ResolvedPlan (cached on its
# ``fused`` slot).  Bit-identity with execute_batch is asserted by the
# differential fuzz harness (EVAL_MATRIX cells) and tests/test_columnar.
# ----------------------------------------------------------------------

class _FusedStep:
    """Precompiled per-step metadata for :func:`execute_batch_fused`."""

    __slots__ = ("scan", "const_ops", "samestep", "join_check", "residual",
                 "binds", "live_binds", "carry", "needs_f")

    def __init__(self, scan, const_ops, samestep, join_check, residual,
                 binds, live_binds, carry, needs_f):
        self.scan = scan              # True: delta/full scan; False: probe
        self.const_ops = const_ops    # ((pos, payload), ...) pushed down
        self.samestep = samestep      # ((check_pos, bind_pos), ...) pushed down
        self.join_check = join_check  # (check_pos, reg) hash-join pivot
        self.residual = residual      # ((pos, op, payload), ...) leftover
        self.binds = binds            # ((pos, reg), ...) all binds
        self.live_binds = live_binds  # binds someone downstream reads
        self.carry = carry            # regs gathered through out_f
        self.needs_f = needs_f        # must out_f be materialized?


def _compile_fused(rplan: ResolvedPlan) -> Tuple[_FusedStep, ...]:
    """Liveness analysis + filter pushdown over the register program."""
    steps = rplan.steps
    nsteps = len(steps)
    # Backward pass: live_after[i] = registers read by steps > i or the
    # head projection.  Binds kill, reads (index probes, checks) gen.
    needed = {payload for is_reg, payload in rplan.head_ops if is_reg}
    live_after: List[frozenset] = [frozenset()] * nsteps
    for i in range(nsteps - 1, -1, -1):
        live_after[i] = frozenset(needed)
        _, _, index_spec, ops = steps[i]
        for _, op, payload in ops:
            if op == OP_BIND:
                needed.discard(payload)
        for _, op, payload in ops:
            if op == OP_CHECK:
                needed.add(payload)
        if index_spec is not None and index_spec[1]:
            needed.add(index_spec[2])

    fused: List[_FusedStep] = []
    bound: frozenset = frozenset()  # live regs entering the step
    for i, (predicate, use_delta, index_spec, ops) in enumerate(steps):
        live = live_after[i]
        binds = tuple((pos, payload) for pos, op, payload in ops
                      if op == OP_BIND)
        bind_regs = {payload for _, payload in binds}
        scan = use_delta or index_spec is None
        const_ops: tuple = ()
        samestep: tuple = ()
        join_check = None
        if scan:
            # Push constant and same-atom equality filters down to the
            # relation; pick the first earlier-reg check as the hash
            # join pivot; everything else stays residual.
            const_ops = tuple((pos, payload) for pos, op, payload in ops
                              if op == OP_CONST)
            bind_pos = {payload: pos for pos, payload in binds}
            samestep_list = []
            residual_list = []
            for pos, op, payload in ops:
                if op != OP_CHECK:
                    continue
                if payload in bind_regs:
                    samestep_list.append((pos, bind_pos[payload]))
                elif payload in bound and join_check is None:
                    join_check = (pos, payload)
                else:
                    residual_list.append((pos, OP_CHECK, payload))
            samestep = tuple(samestep_list)
            residual = tuple(residual_list)
        else:
            residual = tuple(op for op in ops if op[1] != OP_BIND)
        carry = tuple(sorted(bound & live))
        needs_f = bool(carry) or any(payload in bound
                                     for _, op, payload in residual
                                     if op == OP_CHECK)
        live_binds = tuple((pos, reg) for pos, reg in binds if reg in live)
        fused.append(_FusedStep(scan, const_ops, samestep, join_check,
                                residual, binds, live_binds, carry, needs_f))
        bound = (bound | bind_regs) & live
    return tuple(fused)


def _probe_multi(index, key_col, n: int, needs_f: bool):
    """Probe a list-valued index with the frontier's key column, behind
    a bitmap semijoin pre-filter.  Returns ``(out_f, out_r)``; ``out_f``
    is ``None`` when the caller carries no live registers."""
    sel = list(compress(range(n), map(index.__contains__, key_col)))
    if not sel:
        return None, []
    keys = key_col if len(sel) == n else _gather(key_col, sel)
    getitem = index.__getitem__
    if not needs_f:
        return None, [row for value in keys for row in getitem(value)]
    out_f: List[int] = []
    out_r: List[int] = []
    extend_f, extend_r = out_f.extend, out_r.extend
    for i, value in zip(sel, keys):
        ids = getitem(value)
        extend_r(ids)
        extend_f(repeat(i, len(ids)))
    return out_f, out_r


def execute_batch_fused(rplan: ResolvedPlan, store: ColumnStore, domain,
                        delta: Optional[Batch] = None,
                        dedup: Optional[Set[int]] = None) -> List[int]:
    """Fused-kernel twin of :func:`execute_batch`.

    Same contract bit for bit: returns the packed keys of the derived
    head rows not in *dedup*, deduplicated within the batch.
    """
    check_deadline()
    meta = rplan.fused
    if meta is None:
        meta = rplan.fused = _compile_fused(rplan)
    regs: Dict[int, Sequence[int]] = {}
    n = -1  # -1: virgin frontier (one empty row)
    for (predicate, use_delta, index_spec, _ops), step in zip(rplan.steps,
                                                              meta):
        if use_delta:
            rel_cols: Sequence[Sequence[int]] = delta.cols
            rel_n = delta.n
        else:
            rel_cols = store.cols(predicate)
            rel_n = store.count(predicate)

        gathered: Dict[int, Sequence[int]] = {}
        if step.scan:
            if rel_n == 0:
                return []
            # --- pushed-down filters: relation-level bitmaps ---
            sel: Optional[List[int]] = None  # surviving relation row ids
            for pos, payload in step.const_ops:
                column = (rel_cols[pos] if sel is None
                          else _gather(rel_cols[pos], sel))
                universe = range(rel_n) if sel is None else sel
                sel = list(compress(universe, map(payload.__eq__, column)))
                if not sel:
                    return []
            for check_pos, bind_pos in step.samestep:
                if sel is None:
                    left: Sequence[int] = rel_cols[check_pos]
                    right: Sequence[int] = rel_cols[bind_pos]
                    universe = range(rel_n)
                else:
                    left = _gather(rel_cols[check_pos], sel)
                    right = _gather(rel_cols[bind_pos], sel)
                    universe = sel
                sel = list(compress(universe, map(_eq, left, right)))
                if not sel:
                    return []
            if step.join_check is not None and n >= 0:
                # --- radix-partitioned hash join ---
                check_pos, jreg = step.join_check
                column = rel_cols[check_pos]
                buckets: Dict[int, List[int]] = {}
                setdefault = buckets.setdefault
                if sel is None:
                    for row_id, value in enumerate(column):
                        setdefault(value, []).append(row_id)
                else:
                    for row_id in sel:
                        setdefault(column[row_id], []).append(row_id)
                out_f, out_r = _probe_multi(buckets, regs[jreg], n,
                                            step.needs_f)
            elif n < 0:
                out_f = None
                out_r = range(rel_n) if sel is None else sel
            elif n == 0:
                return []
            else:
                # Genuine cross product with the frontier (no shared
                # variables) -- rare, mirrors the basic path.
                rows = list(range(rel_n)) if sel is None else sel
                out_r = rows * n
                out_f = [i for i in range(n) for _ in rows]
        else:
            position, is_reg, payload = index_spec
            index, unique = store.index(predicate, position)
            if is_reg and n >= 0:
                key_col = regs[payload]
                if unique:
                    hits = list(map(index.get, key_col))
                    if None in hits:
                        if step.needs_f:
                            out_f = [i for i, h in enumerate(hits)
                                     if h is not None]
                            out_r = _gather(hits, out_f)
                        else:
                            out_f = None
                            out_r = [h for h in hits if h is not None]
                    else:
                        out_r = hits
                        out_f = range(n) if step.needs_f else None
                else:
                    out_f, out_r = _probe_multi(index, key_col, n,
                                                step.needs_f)
            else:
                # Constant probe (reg probes off a virgin frontier are
                # never compiled).
                ids = index.get(payload if not is_reg else None)
                if ids is None:
                    return []
                if unique:
                    ids = [ids]
                if n <= 0:
                    out_r = list(ids)
                    if n == 0:
                        return []
                    out_f = None
                else:
                    out_r = list(ids) * n
                    out_f = [i for i in range(n) for _ in ids]

        if not out_r:
            return []

        # --- residual ops (probe-step filters, spill-over checks) ---
        pending_binds = {reg: pos for pos, reg in step.binds}
        identity = type(out_r) is range
        for pos, op, payload in step.residual:
            column = gathered.get(pos)
            if column is None:
                column = rel_cols[pos] if identity else _gather(
                    rel_cols[pos], out_r)
                gathered[pos] = column
            if op == OP_CONST:
                keep = list(compress(range(len(column)),
                                     map(payload.__eq__, column)))
            else:  # OP_CHECK
                bound_pos = pending_binds.get(payload)
                if bound_pos is not None and payload not in regs:
                    other = gathered.get(bound_pos)
                    if other is None:
                        other = rel_cols[bound_pos] if identity else _gather(
                            rel_cols[bound_pos], out_r)
                        gathered[bound_pos] = other
                else:
                    other = (_gather(regs[payload], out_f)
                             if out_f is not None else [])
                keep = list(compress(range(len(column)),
                                     map(_eq, column, other)))
            if len(keep) != len(column):
                if not keep:
                    return []
                out_r = _gather(out_r, keep)
                identity = False
                if out_f is not None:
                    out_f = _gather(out_f, keep)
                gathered = {p: _gather(col, keep)
                            for p, col in gathered.items()}

        # --- next frontier: live registers only ---
        next_regs: Dict[int, Sequence[int]] = {}
        if step.carry:
            if type(out_f) is range:  # identity selection
                for reg in step.carry:
                    next_regs[reg] = regs[reg]
            else:
                for reg in step.carry:
                    next_regs[reg] = _gather(regs[reg], out_f)
        whole = type(out_r) is range
        for pos, reg in step.live_binds:
            column = gathered.get(pos)
            if column is None:
                column = rel_cols[pos] if whole else _gather(
                    rel_cols[pos], out_r)
            next_regs[reg] = column
        regs = next_regs
        n = len(out_r)

    if n < 0:
        n = 1  # empty body: one empty binding
    if n == 0:
        return []

    # --- unsafe head variables range over the active domain ---
    for reg in rplan.unsafe_regs:
        m = len(domain)
        if m == 0:
            return []
        spread = [i for i in range(n) for _ in range(m)]
        regs = {r: _gather(col, spread) for r, col in regs.items()}
        regs[reg] = list(domain) * n
        n *= m

    # --- emit: head columns -> packed keys -> dedup ---
    head_cols = [regs[payload] if is_reg else [payload] * n
                 for is_reg, payload in rplan.head_ops]
    keys = _pack(head_cols, n, store.base)
    if dedup:
        return list(set(keys).difference(dedup))
    return list(set(keys))


# ----------------------------------------------------------------------
# Fixpoint drivers (stage/fixpoint bookkeeping mirrors plan.py).
# ----------------------------------------------------------------------

def _resolved_plans(program: Program, store: ColumnStore, cache: PlanCache):
    full = [(rule, rule.head.predicate, len(rule.head.args),
             cache.plan(rule, None).resolve(store))
            for rule in program.rules]
    return full


def columnar_naive(program: Program, database: Database,
                   max_stages: Optional[int] = None, *,
                   cache: Optional[PlanCache] = None,
                   joins: str = "basic"):
    """Naive rounds over batch-executed plans; same return shape and
    stage bookkeeping as :func:`~repro.datalog.plan.compiled_naive`.
    ``joins="fused"`` routes through :func:`execute_batch_fused`."""
    cache = PlanCache() if cache is None else cache
    fused = joins == "fused"
    run = execute_batch_fused if fused else execute_batch
    idb = program.idb_predicates
    store = ColumnStore(database, idb, fused=fused)
    full = _resolved_plans(program, store, cache)
    store.seal()
    needs_domain = any(rplan.unsafe_regs for _, _, _, rplan in full)
    stage = 0
    fixpoint = False
    while max_stages is None or stage < max_stages:
        check_deadline()
        domain = store.domain() if needs_domain else ()
        derived: Dict[str, Tuple[Set[int], int]] = {}
        for _, head_predicate, arity, rplan in full:
            keys = run(rplan, store, domain,
                       dedup=store.keyset(head_predicate))
            entry = derived.get(head_predicate)
            if entry is None:
                derived[head_predicate] = (set(keys), arity)
            else:
                entry[0].update(keys)
        changed = False
        for predicate, (keys, arity) in derived.items():
            if store.add_keys(predicate, keys, arity):
                changed = True
        stage += 1
        if not changed:
            fixpoint = True
            stage -= 1  # the last round derived nothing new
            break
    rows = {p: store.unintern_rows(p) for p in idb}
    return rows, stage, fixpoint


def columnar_seminaive(program: Program, database: Database,
                       max_stages: Optional[int] = None, *,
                       cache: Optional[PlanCache] = None,
                       joins: str = "basic"):
    """Semi-naive deltas over batch-executed plans; mirrors
    :func:`~repro.datalog.plan.compiled_seminaive`.
    ``joins="fused"`` routes through :func:`execute_batch_fused`."""
    cache = PlanCache() if cache is None else cache
    fused = joins == "fused"
    run = execute_batch_fused if fused else execute_batch
    idb = program.idb_predicates
    store = ColumnStore(database, idb, fused=fused)
    full = _resolved_plans(program, store, cache)
    delta_plans = [
        [(index, cache.plan(rule, index).resolve(store))
         for index, atom in enumerate(rule.body) if atom.predicate in idb]
        for rule in program.rules
    ]
    store.seal()
    needs_domain = any(rplan.unsafe_regs for _, _, _, rplan in full)
    domain = store.domain() if needs_domain else ()

    def _merge_delta(deltas: Dict[str, Optional[Batch]], predicate: str,
                     fresh: Optional[Batch]) -> bool:
        """Fold a fresh batch into the round's delta for *predicate*.

        Batches from different rules are disjoint by construction
        (``add_keys`` filtered each against the store, which already
        held the earlier batches' rows), so concatenation preserves
        key uniqueness.  Returns whether anything was added.
        """
        if fresh is None:
            return False
        current = deltas[predicate]
        if current is None:
            deltas[predicate] = fresh
        else:
            current.keys.extend(fresh.keys)
            for column, fresh_column in zip(current.cols, fresh.cols):
                column.extend(fresh_column)
            current.n += fresh.n
        return True

    # Stage 1: full application of every rule to the EDB-only store
    # (later rules see earlier rules' insertions, as in the reference).
    delta: Dict[str, Optional[Batch]] = {p: None for p in idb}
    for _, head_predicate, arity, rplan in full:
        keys = run(rplan, store, domain,
                   dedup=store.keyset(head_predicate))
        _merge_delta(delta, head_predicate,
                     store.add_keys(head_predicate, keys, arity))
    any_delta = any(delta.values())
    stage = 1 if any_delta else 0
    fixpoint = not any_delta

    while any(delta.values()) and (max_stages is None or stage < max_stages):
        check_deadline()
        domain = store.domain() if needs_domain else ()
        new_delta: Dict[str, Optional[Batch]] = {p: None for p in idb}
        changed = False
        for (rule, head_predicate, arity, _), variants in zip(full, delta_plans):
            for index, rplan in variants:
                focus = delta.get(rule.body[index].predicate)
                if not focus:
                    continue
                keys = run(rplan, store, domain, delta=focus,
                           dedup=store.keyset(head_predicate))
                fresh = store.add_keys(head_predicate, keys, arity)
                if _merge_delta(new_delta, head_predicate, fresh):
                    changed = True
        delta = new_delta
        if changed:
            stage += 1
        else:
            fixpoint = True
            break
    if not any(delta.values()):
        fixpoint = True
    rows = {p: store.unintern_rows(p) for p in idb}
    return rows, stage, fixpoint
