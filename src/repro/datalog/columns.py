"""Columnar relation storage and batch join kernels.

The compiled plan path (:mod:`repro.datalog.plan`) already fixes the
join order and interns constants, but it still *executes* one Python
tuple at a time: ``ResolvedPlan.execute`` recurses row by row through
the register program.  At 10^5--10^6 EDB facts that per-row
interpretation dominates.  This module is the data-plane analogue of
the bitset automaton kernel (PR 2): a representation change that lets
the hot loops run inside the CPython C runtime.

Three ideas, in the spirit of Souffle-style compiled Datalog:

* **Columnar, interned relations.**  :class:`ColumnStore` keeps each
  relation as parallel ``array('q')`` columns of interned constant
  ids.  The extensional part is built once per :class:`Database` into
  an immutable :class:`EdbImage` (C-level ``zip`` transpose, bulk
  ``map`` interning) and cached, so repeated evaluations over the same
  database -- fixpoint probes, benchmark repeats, magic counts -- skip
  re-interning entirely.  The image cache lives in the ambient
  session's cache scope (:mod:`repro.context`), so
  ``clear_shared_caches()`` / ``Session.clear_caches()`` (cold
  benchmark mode) drop it along with the automaton caches and two live
  sessions never share images.
* **Batch execution of join plans.**  :func:`execute_batch` runs a
  :class:`~repro.datalog.plan.ResolvedPlan` over a whole frontier at
  once.  The frontier is a set of register *columns*; each plan step
  probes a hash index with ``dict.get``, fans out matches with C-level
  ``list.extend``/``itertools.repeat``, gathers columns with
  ``map(array.__getitem__, ids)``, and applies residual
  constant/equality checks as vectorized filters.  No per-row Python
  function calls, no recursion.
* **Packed-key dedup.**  A derived row is identified by one Python
  int -- its column ids packed positionally with base ``B`` (the
  sealed interner size) -- so deduplication against the stable store
  is a C-level ``set`` difference over ints instead of tuple hashing,
  and only the genuinely fresh rows are unpacked back into columns.

The drivers :func:`columnar_naive` and :func:`columnar_seminaive`
mirror :func:`~repro.datalog.plan.compiled_naive` /
:func:`~repro.datalog.plan.compiled_seminaive` stage by stage, so
results -- ``idb`` rows, ``stages``, ``fixpoint`` -- are bit-identical
to both the row-at-a-time compiled path and the interpretive reference
(asserted by the differential fuzz suite in ``tests/test_columnar.py``).

    >>> from repro.datalog.parser import parse_program
    >>> from repro.datalog.database import Database
    >>> from repro.datalog.engine import Engine, EngineConfig
    >>> program = parse_program('p(X, Y) :- e(X, Z), e(Z, Y).')
    >>> db = Database.from_facts([("e", ("a", "b")), ("e", ("b", "c"))])
    >>> sorted(Engine(EngineConfig(backend="columnar"))
    ...        .query(program, db, "p"))
    [(Constant('a'), Constant('c'))]
"""

from __future__ import annotations

import weakref
from array import array
from itertools import repeat
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..budget import check_deadline
from ..context import current_scope as _current_scope
from .database import Database
from .plan import OP_BIND, OP_CHECK, OP_CONST, PlanCache, ResolvedPlan
from .program import Program
from .terms import Constant

__all__ = [
    "ColumnStore",
    "EdbImage",
    "clear_edb_images",
    "columnar_naive",
    "columnar_seminaive",
    "edb_image",
    "execute_batch",
]

_EMPTY: tuple = ()


# ----------------------------------------------------------------------
# Packed row keys.
#
# A row (i0, ..., ik) of interned ids < B is identified by the single
# int ((i0*B + i1)*B + i2)... -- positional base-B packing.  Python
# ints are unbounded, so any arity works; packing and unpacking are
# specialised for the common arities so the per-row work stays inside
# comprehensions.
# ----------------------------------------------------------------------

def _pack(cols: Sequence[Sequence[int]], n: int, base: int) -> List[int]:
    """Pack parallel columns into one key per row."""
    arity = len(cols)
    if arity == 0:
        return [0] * n
    if arity == 1:
        return list(cols[0])
    if arity == 2:
        return [a * base + b for a, b in zip(cols[0], cols[1])]
    if arity == 3:
        return [(a * base + b) * base + c
                for a, b, c in zip(cols[0], cols[1], cols[2])]
    keys = list(cols[0])
    for col in cols[1:]:
        keys = [k * base + v for k, v in zip(keys, col)]
    return keys


def _unpack(keys: Iterable[int], arity: int, base: int) -> List[List[int]]:
    """Invert :func:`_pack`: per-row keys back into parallel columns."""
    if arity == 0:
        return []
    if arity == 1:
        return [list(keys)]
    if arity == 2:
        pairs = [divmod(k, base) for k in keys]
        return [[a for a, _ in pairs], [b for _, b in pairs]]
    cols: List[List[int]] = [[] for _ in range(arity)]
    appends = [col.append for col in cols]
    for key in keys:
        for position in range(arity - 1, 0, -1):
            key, value = divmod(key, base)
            appends[position](value)
        appends[0](key)
    return cols


class Batch:
    """A set of rows of one relation, in columnar form.

    ``keys`` are the packed row identities (unique within the batch),
    ``cols`` the parallel id columns, ``n`` the row count.  Batches are
    how deltas travel between semi-naive rounds.
    """

    __slots__ = ("n", "keys", "cols")

    def __init__(self, keys: List[int], cols: Sequence[Sequence[int]]):
        self.keys = keys
        self.cols = cols
        self.n = len(keys)

    def __bool__(self):
        return self.n > 0


# ----------------------------------------------------------------------
# The cached extensional image.
# ----------------------------------------------------------------------

class EdbImage:
    """The immutable columnar form of one :class:`Database`.

    Holds the interner (``ids``/``values``), per-relation id columns,
    the extensional active domain, and lazily-built hash indexes.
    Shared across evaluations: :class:`ColumnStore` copies only what it
    mutates (the domain set and any relation a program derives into).
    The interner is deliberately *shared and append-only* -- later
    programs may add their constants, which never invalidates existing
    columns.
    """

    __slots__ = ("ids", "values", "cols", "counts", "domain", "indexes",
                 "version", "__weakref__")

    def __init__(self, database: Database):
        self.ids: Dict[Constant, int] = {}
        self.values: List[Constant] = []
        self.cols: Dict[str, Tuple[array, ...]] = {}
        self.counts: Dict[str, int] = {}
        self.domain: Set[int] = set()
        self.indexes: Dict[Tuple[str, int], Dict[int, List[int]]] = {}
        self.version = database.version()
        ids, values = self.ids, self.values
        for predicate, rows in database.relations():
            if not rows:
                continue
            columns = list(zip(*rows))  # C-level transpose
            int_cols: List[array] = []
            for column in columns:
                missing = set(column).difference(ids)
                for constant in missing:  # distinct constants only
                    ids[constant] = len(values)
                    values.append(constant)
                int_col = array("q", map(ids.__getitem__, column))
                int_cols.append(int_col)
                self.domain.update(int_col)
            self.cols[predicate] = tuple(int_cols)
            self.counts[predicate] = len(rows)

    def index(self, predicate: str, position: int):
        """The (built-once) hash index on *position* of *predicate*,
        as ``(mapping, unique)``.

        When the column is a unique key -- the common case for edge
        relations indexed on their source -- the mapping holds bare row
        ids and probes can run as one C-level ``map``; otherwise values
        map to row-id lists.
        """
        key = (predicate, position)
        entry = self.indexes.get(key)
        if entry is None:
            index: Dict[int, object] = {}
            get = index.get
            unique = True
            cols = self.cols.get(predicate)
            if cols:
                for row_id, value in enumerate(cols[position]):
                    current = get(value)
                    if current is None:
                        index[value] = row_id
                    elif type(current) is int:
                        index[value] = [current, row_id]
                        unique = False
                    else:
                        current.append(row_id)
            if not unique:
                index = {value: (ids if type(ids) is list else [ids])
                         for value, ids in index.items()}
            entry = (index, unique)
            self.indexes[key] = entry
        return entry


#: Scope-table name: id(database) -> (weakref-to-database, EdbImage).
#: Keyed by identity because Database defines __eq__ without __hash__;
#: weakrefs evict entries when the database dies, _MAX_IMAGES bounds
#: the live set.  The table lives in the ambient session's
#: :class:`~repro.context.CacheScope`, so concurrent sessions image the
#: same database independently (zero cache bleed) and
#: ``Session.clear_caches()`` drops images along with the automaton
#: caches.
_IMAGES_TABLE = "datalog.edb_images"
_MAX_IMAGES = 64


def __getattr__(name):
    # Backward compatibility: the image table used to be the module
    # global ``_EDB_IMAGES``.  Expose the ambient scope's live table
    # under the old name (scopes clear tables in place, so a reference
    # bound at import time stays truthful for the default session).
    if name == "_EDB_IMAGES":
        return _current_scope().table(_IMAGES_TABLE)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def clear_edb_images() -> None:
    """Drop the ambient scope's cached :class:`EdbImage` entries
    (cold-start hook; the default session's scope is also cleared by
    :func:`repro.core.clear_shared_caches`)."""
    _current_scope().table(_IMAGES_TABLE).clear()


def edb_image(database: Database) -> EdbImage:
    """The cached columnar image of *database* (rebuilt when the
    database's mutation version moved)."""
    scope = _current_scope()
    images = scope.table(_IMAGES_TABLE)
    key = id(database)
    entry = images.get(key)
    if entry is not None:
        ref, image = entry
        if ref() is database and image.version == database.version():
            scope.hit(_IMAGES_TABLE)
            return image
        del images[key]
    scope.miss(_IMAGES_TABLE)
    image = EdbImage(database)
    if len(images) >= _MAX_IMAGES:
        images.clear()

    def _evict(_ref, _images=images, _key=key):
        _images.pop(_key, None)

    images[key] = (weakref.ref(database, _evict), image)
    return image


# ----------------------------------------------------------------------
# The mutable per-evaluation store.
# ----------------------------------------------------------------------

class ColumnStore:
    """Columnar counterpart of :class:`~repro.datalog.plan.PlanStore`.

    Extensional relations are *shared* with the cached
    :class:`EdbImage`; relations the program derives into (the IDB
    predicates) get private copies of their columns, packed-key sets,
    and indexes, maintained incrementally per batch insert.  Duck-types
    the ``resolve``/``require_index``/``indexing`` surface that
    :meth:`~repro.datalog.plan.JoinPlan.resolve` binds against, so the
    same compiled :class:`~repro.datalog.plan.JoinPlan` serves both
    backends.
    """

    __slots__ = ("_image", "_idb", "_ids", "_values", "_domain", "_cols",
                 "_counts", "_keys", "_indexes", "_arity", "base")

    def __init__(self, database: Database, idb: Iterable[str]):
        image = edb_image(database)
        self._image = image
        self._idb = frozenset(idb)
        # The interner is shared (append-only); the domain is private
        # (programs add their constants and derived values to it).
        self._ids = image.ids
        self._values = image.values
        self._domain: Set[int] = set(image.domain)
        self._cols: Dict[str, List[List[int]]] = {}
        self._counts: Dict[str, int] = {}
        self._keys: Dict[str, Set[int]] = {}
        self._indexes: Dict[Tuple[str, int], Dict[int, List[int]]] = {}
        self._arity: Dict[str, int] = {}
        self.base = 0  # set by seal()
        for predicate in self._idb:
            cols = image.cols.get(predicate)
            if cols is not None:
                # Derived-into relation with extensional seed rows
                # (e.g. magic seeds): private, growable copies.
                self._cols[predicate] = [list(col) for col in cols]
                self._counts[predicate] = image.counts[predicate]

    # -- JoinPlan.resolve surface --------------------------------------

    indexing = True
    interning = True

    def resolve(self, constant: Constant):
        """Intern *constant*; resolved constants join the active domain
        (mirroring the row-at-a-time path)."""
        ident = self._ids.get(constant)
        if ident is None:
            ident = len(self._values)
            self._ids[constant] = ident
            self._values.append(constant)
        self._domain.add(ident)
        return ident

    def require_index(self, predicate: str, position: int) -> None:
        """No-op hook of the ``JoinPlan.resolve`` surface: columnar
        indexes are built lazily at first probe (in the shared image
        for extensional relations, privately for derived ones), so
        registration carries no state."""

    # -- relation access ----------------------------------------------

    def seal(self) -> None:
        """Fix the packed-key base.  Call after every plan is resolved:
        no new constants are interned during execution (head values
        come from body rows or the active domain), so ``base`` bounds
        every id a packed key will ever carry."""
        self.base = len(self._values) + 1

    def count(self, predicate: str) -> int:
        n = self._counts.get(predicate)
        if n is not None:
            return n
        if predicate in self._idb:
            return 0
        return self._image.counts.get(predicate, 0)

    def cols(self, predicate: str) -> Sequence[Sequence[int]]:
        cols = self._cols.get(predicate)
        if cols is not None:
            return cols
        if predicate in self._idb:
            return _EMPTY
        return self._image.cols.get(predicate, _EMPTY)

    def index(self, predicate: str, position: int):
        """The hash index for a probe, as ``(mapping, unique)`` --
        image-cached (with the unique-key specialization) for
        extensional relations; private, list-valued, and incrementally
        maintained for derived ones."""
        if predicate not in self._idb:
            return self._image.index(predicate, position)
        key = (predicate, position)
        index = self._indexes.get(key)
        if index is None:
            index = {}
            setdefault = index.setdefault
            cols = self._cols.get(predicate)
            if cols:
                for row_id, value in enumerate(cols[position]):
                    setdefault(value, []).append(row_id)
            self._indexes[key] = index
        return index, False

    def keyset(self, predicate: str) -> Set[int]:
        """The packed identities of the relation's current rows (built
        on first use; IDB relations usually start empty, so this is
        free on the hot path)."""
        keys = self._keys.get(predicate)
        if keys is None:
            count = self._counts.get(predicate, 0)
            if count:
                keys = set(_pack(self._cols[predicate], count, self.base))
            else:
                keys = set()
            self._keys[predicate] = keys
        return keys

    def add_keys(self, predicate: str, keys: Iterable[int],
                 arity: int) -> Optional[Batch]:
        """Insert rows (given by packed key); maintain columns, the
        keyset, registered indexes, and the domain; return the
        genuinely fresh rows as a :class:`Batch` (``None`` when every
        row was already present)."""
        existing = self.keyset(predicate)
        fresh = set(keys).difference(existing)
        if not fresh:
            return None
        existing.update(fresh)
        fresh_keys = list(fresh)
        fresh_cols = _unpack(fresh_keys, arity, self.base)
        cols = self._cols.get(predicate)
        if cols is None:
            cols = self._cols[predicate] = [[] for _ in range(arity)]
            self._counts[predicate] = 0
        start = self._counts[predicate]
        count = len(fresh_keys)
        domain = self._domain
        for column, fresh_column in zip(cols, fresh_cols):
            column.extend(fresh_column)
            domain.update(fresh_column)
        self._counts[predicate] = start + count
        self._arity.setdefault(predicate, arity)
        for (pred, position), index in self._indexes.items():
            if pred != predicate:
                continue
            setdefault = index.setdefault
            column = fresh_cols[position] if arity else ()
            for offset, value in enumerate(column):
                setdefault(value, []).append(start + offset)
        return Batch(fresh_keys, fresh_cols)

    def domain(self) -> List[int]:
        """The active domain, deterministically ordered (only consulted
        when some rule is unsafe)."""
        return sorted(self._domain)

    def unintern_rows(self, predicate: str):
        """The relation as a frozenset of constant tuples -- C-level
        ``zip`` over ``map``-translated columns."""
        count = self.count(predicate)
        if not count:
            return frozenset()
        cols = self.cols(predicate)
        if not cols:  # 0-ary relation with at least one (empty) row
            return frozenset({()})
        getter = self._values.__getitem__
        return frozenset(zip(*[map(getter, col) for col in cols]))


# ----------------------------------------------------------------------
# Batch plan execution.
# ----------------------------------------------------------------------

def _gather(column: Sequence[int], ids: List[int]) -> List[int]:
    return list(map(column.__getitem__, ids))


def execute_batch(rplan: ResolvedPlan, store: ColumnStore, domain,
                  delta: Optional[Batch] = None,
                  dedup: Optional[Set[int]] = None) -> List[int]:
    """One application of *rplan* over whole column slices.

    Returns the packed keys of the derived head rows that are not in
    *dedup* (the stable store's keyset), deduplicated within the batch.
    Set semantics throughout: the *set* of returned rows is exactly
    what :meth:`ResolvedPlan.execute` would derive minus *dedup*.
    """
    check_deadline()
    regs: Dict[int, List[int]] = {}
    n = -1  # -1: virgin frontier (one empty row)
    for predicate, use_delta, index_spec, ops in rplan.steps:
        if use_delta:
            rel_cols: Sequence[Sequence[int]] = delta.cols
            rel_n = delta.n
        else:
            rel_cols = store.cols(predicate)
            rel_n = store.count(predicate)

        # --- candidate (frontier row, relation row) pairs ---
        out_f = None
        if not use_delta and index_spec is not None:
            position, is_reg, payload = index_spec
            index, unique = store.index(predicate, position)
            if is_reg and n >= 0:
                key_col = regs[payload]
                if unique:
                    # Unique-key probe: one C-level map, then a single
                    # compress pass when some keys missed.
                    hits = list(map(index.get, key_col))
                    if None in hits:
                        out_f = [i for i, h in enumerate(hits)
                                 if h is not None]
                        out_r = _gather(hits, out_f)
                    else:
                        out_r = hits
                        out_f = range(n)
                else:
                    out_f, out_r = [], []
                    extend_f, extend_r = out_f.extend, out_r.extend
                    get = index.get
                    for i, value in enumerate(key_col):
                        ids = get(value)
                        if ids is not None:
                            extend_r(ids)
                            extend_f(repeat(i, len(ids)))
            else:
                # Constant probe (or a reg probe off a virgin frontier,
                # which compilation never emits).
                ids = index.get(payload if not is_reg else None)
                if ids is None:
                    return []
                if unique:
                    ids = [ids]
                if n <= 0:
                    out_r = list(ids)
                    if n == 0:
                        return []
                else:
                    out_r = list(ids) * n
                    out_f = [i for i in range(n) for _ in ids]
        else:
            # Full scan (or delta scan): cross product with the frontier.
            if rel_n == 0:
                return []
            if n <= 0:
                if n == 0:
                    return []
                out_r = list(range(rel_n))
            else:
                out_r = list(range(rel_n)) * n
                out_f = [i for i in range(n) for _ in range(rel_n)]

        if not out_r:
            return []

        # --- residual ops: vectorized filters, deferred binds ---
        pending_binds: Dict[int, int] = {}  # reg -> relation position
        gathered: Dict[int, List[int]] = {}
        for position, op, payload in ops:
            if op == OP_BIND:
                pending_binds[payload] = position
                continue
            column = gathered.get(position)
            if column is None:
                column = gathered[position] = _gather(rel_cols[position],
                                                      out_r)
            if op == OP_CONST:
                keep = [j for j, v in enumerate(column) if v == payload]
            else:  # OP_CHECK
                bound_pos = pending_binds.get(payload)
                if bound_pos is not None:
                    other = gathered.get(bound_pos)
                    if other is None:
                        other = gathered[bound_pos] = _gather(
                            rel_cols[bound_pos], out_r)
                else:
                    other = (_gather(regs[payload], out_f)
                             if out_f is not None else [])
                keep = [j for j, pair in enumerate(zip(column, other))
                        if pair[0] == pair[1]]
            if len(keep) != len(column):
                if not keep:
                    return []
                out_r = _gather(out_r, keep)
                if out_f is not None:
                    out_f = _gather(out_f, keep)
                gathered = {pos: _gather(col, keep)
                            for pos, col in gathered.items()}

        # --- build the next frontier's register columns ---
        next_regs: Dict[int, List[int]] = {}
        if out_f is not None:
            if type(out_f) is range:  # identity selection (full unique hit)
                next_regs.update(regs)
            else:
                for reg, column in regs.items():
                    next_regs[reg] = _gather(column, out_f)
        for reg, position in pending_binds.items():
            column = gathered.get(position)
            if column is None:
                column = _gather(rel_cols[position], out_r)
            next_regs[reg] = column
        regs = next_regs
        n = len(out_r)

    if n < 0:
        n = 1  # empty body: one empty binding
    if n == 0:
        return []

    # --- unsafe head variables range over the active domain ---
    for reg in rplan.unsafe_regs:
        m = len(domain)
        if m == 0:
            return []
        spread = [i for i in range(n) for _ in range(m)]
        regs = {r: _gather(col, spread) for r, col in regs.items()}
        regs[reg] = list(domain) * n
        n *= m

    # --- emit: head columns -> packed keys -> dedup ---
    head_cols = [regs[payload] if is_reg else [payload] * n
                 for is_reg, payload in rplan.head_ops]
    keys = _pack(head_cols, n, store.base)
    if dedup:
        return list(set(keys).difference(dedup))
    return list(set(keys))


# ----------------------------------------------------------------------
# Fixpoint drivers (stage/fixpoint bookkeeping mirrors plan.py).
# ----------------------------------------------------------------------

def _resolved_plans(program: Program, store: ColumnStore, cache: PlanCache):
    full = [(rule, rule.head.predicate, len(rule.head.args),
             cache.plan(rule, None).resolve(store))
            for rule in program.rules]
    return full


def columnar_naive(program: Program, database: Database,
                   max_stages: Optional[int] = None, *,
                   cache: Optional[PlanCache] = None):
    """Naive rounds over batch-executed plans; same return shape and
    stage bookkeeping as :func:`~repro.datalog.plan.compiled_naive`."""
    cache = PlanCache() if cache is None else cache
    idb = program.idb_predicates
    store = ColumnStore(database, idb)
    full = _resolved_plans(program, store, cache)
    store.seal()
    needs_domain = any(rplan.unsafe_regs for _, _, _, rplan in full)
    stage = 0
    fixpoint = False
    while max_stages is None or stage < max_stages:
        check_deadline()
        domain = store.domain() if needs_domain else ()
        derived: Dict[str, Tuple[Set[int], int]] = {}
        for _, head_predicate, arity, rplan in full:
            keys = execute_batch(rplan, store, domain,
                                 dedup=store.keyset(head_predicate))
            entry = derived.get(head_predicate)
            if entry is None:
                derived[head_predicate] = (set(keys), arity)
            else:
                entry[0].update(keys)
        changed = False
        for predicate, (keys, arity) in derived.items():
            if store.add_keys(predicate, keys, arity):
                changed = True
        stage += 1
        if not changed:
            fixpoint = True
            stage -= 1  # the last round derived nothing new
            break
    rows = {p: store.unintern_rows(p) for p in idb}
    return rows, stage, fixpoint


def columnar_seminaive(program: Program, database: Database,
                       max_stages: Optional[int] = None, *,
                       cache: Optional[PlanCache] = None):
    """Semi-naive deltas over batch-executed plans; mirrors
    :func:`~repro.datalog.plan.compiled_seminaive`."""
    cache = PlanCache() if cache is None else cache
    idb = program.idb_predicates
    store = ColumnStore(database, idb)
    full = _resolved_plans(program, store, cache)
    delta_plans = [
        [(index, cache.plan(rule, index).resolve(store))
         for index, atom in enumerate(rule.body) if atom.predicate in idb]
        for rule in program.rules
    ]
    store.seal()
    needs_domain = any(rplan.unsafe_regs for _, _, _, rplan in full)
    domain = store.domain() if needs_domain else ()

    def _merge_delta(deltas: Dict[str, Optional[Batch]], predicate: str,
                     fresh: Optional[Batch]) -> bool:
        """Fold a fresh batch into the round's delta for *predicate*.

        Batches from different rules are disjoint by construction
        (``add_keys`` filtered each against the store, which already
        held the earlier batches' rows), so concatenation preserves
        key uniqueness.  Returns whether anything was added.
        """
        if fresh is None:
            return False
        current = deltas[predicate]
        if current is None:
            deltas[predicate] = fresh
        else:
            current.keys.extend(fresh.keys)
            for column, fresh_column in zip(current.cols, fresh.cols):
                column.extend(fresh_column)
            current.n += fresh.n
        return True

    # Stage 1: full application of every rule to the EDB-only store
    # (later rules see earlier rules' insertions, as in the reference).
    delta: Dict[str, Optional[Batch]] = {p: None for p in idb}
    for _, head_predicate, arity, rplan in full:
        keys = execute_batch(rplan, store, domain,
                             dedup=store.keyset(head_predicate))
        _merge_delta(delta, head_predicate,
                     store.add_keys(head_predicate, keys, arity))
    any_delta = any(delta.values())
    stage = 1 if any_delta else 0
    fixpoint = not any_delta

    while any(delta.values()) and (max_stages is None or stage < max_stages):
        check_deadline()
        domain = store.domain() if needs_domain else ()
        new_delta: Dict[str, Optional[Batch]] = {p: None for p in idb}
        changed = False
        for (rule, head_predicate, arity, _), variants in zip(full, delta_plans):
            for index, rplan in variants:
                focus = delta.get(rule.body[index].predicate)
                if not focus:
                    continue
                keys = execute_batch(rplan, store, domain, delta=focus,
                                     dedup=store.keyset(head_predicate))
                fresh = store.add_keys(head_predicate, keys, arity)
                if _merge_delta(new_delta, head_predicate, fresh):
                    changed = True
        delta = new_delta
        if changed:
            stage += 1
        else:
            fixpoint = True
            break
    if not any(delta.values()):
        fixpoint = True
    rows = {p: store.unintern_rows(p) for p in idb}
    return rows, stage, fixpoint
