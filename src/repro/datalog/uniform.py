"""Uniform containment of Datalog programs [Sa88b].

``Pi`` is *uniformly contained* in ``Pi'`` (over the same IDB/EDB
vocabulary) when ``Pi(D) subseteq Pi'(D)`` for every database D that
may already contain IDB facts -- i.e. treating the IDB predicates as
extensional on input.  Uniform containment implies ordinary
containment and, unlike it, is decidable in polynomial time per rule:
Pi is uniformly contained in Pi' iff for every rule of Pi, evaluating
Pi' on the frozen body derives the frozen head [Sa88b].

The paper cites this line of work as the prior art its automata
machinery supersedes for the general (non-uniform) problem; the module
exists both as the classical baseline and as a cheap sufficient check
used by the benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional

from .atoms import Atom
from .database import Database
from .engine import Engine, evaluate
from .errors import ValidationError
from .program import Program
from .rules import Rule
from .terms import Constant, Variable, is_variable

_FREEZE_PREFIX = "$u:"


def _freeze_atom(atom: Atom) -> Atom:
    args = tuple(
        Constant(f"{_FREEZE_PREFIX}{t.name}") if is_variable(t) else t
        for t in atom.args
    )
    return Atom(atom.predicate, args)


def rule_uniformly_subsumed(rule: Rule, program: Program,
                            engine: Optional[Engine] = None) -> bool:
    """Does *program* derive the frozen head of *rule* from its frozen
    body?  (The per-rule test of the uniform-containment criterion.)"""
    if not rule.is_safe:
        raise ValidationError(
            f"uniform containment requires safe rules, got {rule}"
        )
    database = Database.from_atoms(_freeze_atom(a) for a in rule.body)
    result = evaluate(program, database, engine=engine)
    frozen_head = _freeze_atom(rule.head)
    if frozen_head.predicate in program.idb_predicates:
        return frozen_head.args in result.facts(frozen_head.predicate)
    return database.contains(frozen_head.predicate, frozen_head.args)


def uniformly_contained_in(pi: Program, pi_prime: Program,
                           engine: Optional[Engine] = None) -> bool:
    """Sound and complete test for uniform containment [Sa88b]:
    every rule of *pi* must be uniformly subsumed by *pi_prime*.

    Uniform containment implies ordinary containment of every common
    IDB predicate; the converse fails (Example 1.1's Pi_1 is contained
    in -- indeed equivalent to -- its rewriting, but not uniformly).
    """
    return all(rule_uniformly_subsumed(rule, pi_prime, engine=engine)
               for rule in pi.rules)


def uniformly_equivalent(pi: Program, pi_prime: Program,
                         engine: Optional[Engine] = None) -> bool:
    """Mutual uniform containment."""
    return (uniformly_contained_in(pi, pi_prime, engine=engine)
            and uniformly_contained_in(pi_prime, pi, engine=engine))
