"""Horn rules: a head atom and a conjunction of body atoms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from .atoms import Atom, atoms_constants, atoms_variables
from .terms import Term, Variable


@dataclass(frozen=True, slots=True)
class Rule:
    """A Horn rule ``head :- body``.

    An empty body is permitted and is equivalent to *true* (the
    convention used in Example 6.2 of the paper).  Such rules, and more
    generally rules whose head variables do not all occur in the body,
    are *unsafe*; bottom-up evaluation instantiates their unbound head
    variables over the active domain.
    """

    head: Atom
    body: Tuple[Atom, ...]

    def __post_init__(self):
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))

    def variables(self) -> frozenset:
        """All variables occurring in the rule (head or body)."""
        return atoms_variables((self.head, *self.body))

    def body_variables(self) -> frozenset:
        """Variables occurring in the body."""
        return atoms_variables(self.body)

    def constants(self) -> frozenset:
        """All constants occurring in the rule."""
        return atoms_constants((self.head, *self.body))

    @property
    def is_safe(self) -> bool:
        """True when every head variable occurs in the body."""
        return self.head.variable_set() <= self.body_variables()

    @property
    def is_fact(self) -> bool:
        """True for a ground, body-less rule."""
        return not self.body and self.head.is_ground()

    def body_predicates(self) -> frozenset:
        """Predicate symbols occurring in the body."""
        return frozenset(a.predicate for a in self.body)

    def substitute(self, subst: Mapping[Variable, Term]) -> "Rule":
        """Apply a substitution to head and body."""
        return Rule(self.head.substitute(subst), tuple(a.substitute(subst) for a in self.body))

    def rename_apart(self, factory) -> "Rule":
        """Return a copy whose variables are fresh ones from *factory*.

        Used to take a "fresh copy" of a rule when building unfolding
        expansion trees (Definition 2.4 of the paper).
        """
        mapping = {v: factory.fresh() for v in sorted(self.variables(), key=lambda v: v.name)}
        return self.substitute(mapping)

    def idb_body_atoms(self, idb_predicates) -> Tuple[Atom, ...]:
        """Body atoms whose predicate is in *idb_predicates*, in order."""
        return tuple(a for a in self.body if a.predicate in idb_predicates)

    def edb_body_atoms(self, idb_predicates) -> Tuple[Atom, ...]:
        """Body atoms whose predicate is not in *idb_predicates*."""
        return tuple(a for a in self.body if a.predicate not in idb_predicates)

    def __str__(self):
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(a) for a in self.body)}."

    def __repr__(self):
        return f"Rule({str(self)!r})"
