"""The decision service wire protocol.

One JSON object per ``\\n``-terminated line, both directions.  Every
request names an ``op`` and may carry a client-chosen ``id`` (echoed
verbatim on its response, so clients may pipeline requests and match
responses out of order).  Malformed input never kills a connection: it
produces a typed ``bad-request`` error response and the stream
resynchronizes at the next newline.

Request shapes (defaults are filled in during decoding, so two
requests that differ only in spelled-out defaults are *identical* on
the wire -- that is what makes the coalescing key honest)::

    {"op": "decide", "kind": "containment" | "equivalence"
                             | "boundedness",
     "program": <datalog source>, "goal": <predicate>,
     ...kind-specific fields...,
     "method": "auto", "engine": "columnar", "kernel": "bitset",
     "deadline_s": null, "id": null}
    {"op": "eval", "program": ..., "db": <ground facts source>,
     "goal": ..., "max_stages": null, "engine": ..., "deadline_s": ...}
    {"op": "scenario", "scenario": <registry name>, "engine": ...,
     "kernel": ..., "deadline_s": ...}
    {"op": "status"}
    {"op": "shutdown"}

Kind-specific ``decide`` fields: equivalence takes ``nonrecursive``
(+ optional ``nonrecursive_goal``); containment takes exactly one of
``union`` (a nonrecursive program source, + optional ``union_goal``)
or ``union_depth`` (the program's own depth-k expansion union);
boundedness takes ``max_depth`` (default 4).

Response shapes (see the golden files under ``tests/golden/service/``,
which pin every one of them)::

    {"id": ..., "type": "decision", "decision": <Decision.record()>,
     "coalesced": bool, "cached": bool, "attempts": int,
     "queue_ms": float, "service_ms": float}
    {"id": ..., "type": "error", "error": <category>, "message": str,
     "attempts": int}
    {"id": ..., "type": "overload", "error": "overload",
     "queue_depth": int, "capacity": int, "retry_after_ms": float}
    {"id": ..., "type": "status", "status": {...}}
    {"id": ..., "type": "ok"}

Error categories are the resilience taxonomy (``timeout`` / ``memory``
/ ``crash`` / ``corrupt`` / ``error``) plus the protocol's own
``bad-request`` and ``overload``.

The **coalescing key** of a request is
``sha1(config fingerprint + ":" + canonical payload JSON)`` -- the
:attr:`~repro.session.Session.fingerprint` of the (engine, kernel)
configuration the request will run under, joined with the normalized
payload.  Two requests coalesce exactly when a single computation is
guaranteed to produce bit-identical decision records for both.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..resilience import ERROR_CATEGORIES
from ..runner.batch import ENGINE_CONFIGS, KERNEL_CONFIGS

__all__ = [
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "canonical_payload",
    "coalesce_key",
    "decision_response",
    "decode_request",
    "encode_response",
    "error_response",
    "fingerprint_for",
    "ok_response",
    "overload_response",
    "status_response",
]

PROTOCOL_VERSION = 1

#: Hard per-line bound, both directions.  A line longer than this is a
#: ``bad-request`` (and the connection closes: framing is lost).
MAX_LINE_BYTES = 1 << 20

OPS = ("decide", "eval", "scenario", "status", "shutdown")

DECIDE_KINDS = ("containment", "equivalence", "boundedness")
METHODS = ("auto", "tree", "word")

#: Response categories beyond the resilience taxonomy.
BAD_REQUEST = "bad-request"
OVERLOAD = "overload"
RESPONSE_CATEGORIES: Tuple[str, ...] = ERROR_CATEGORIES + (BAD_REQUEST,
                                                           OVERLOAD)


class ProtocolError(ValueError):
    """A malformed request (bad JSON, unknown op, missing or ill-typed
    fields, or a program rejected by the static analyzer).  Always
    answered with a ``bad-request`` error response, never with a
    dropped connection.

    ``diagnostics`` carries the analyzer's findings (plain dicts, see
    :mod:`repro.analysis.diagnostics`) when the rejection came from
    program validation; empty for purely structural rejections.  The
    error response forwards them so clients learn *why* a program was
    refused, not just that it was."""

    def __init__(self, message, diagnostics=()):
        super().__init__(message)
        self.diagnostics = [dict(d) for d in diagnostics]


@dataclass(frozen=True)
class Request:
    """One decoded, normalized request.

    ``payload`` is the canonical field dict: defaults filled, unknown
    fields rejected, key order irrelevant (canonicalization sorts).
    ``id`` is the client's correlation handle (echoed verbatim;
    ``None`` when absent).
    """

    op: str
    id: Optional[Union[str, int]] = None
    payload: Mapping[str, Any] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.payload is None:
            object.__setattr__(self, "payload", {})

    @property
    def engine(self) -> str:
        return self.payload.get("engine", "columnar")

    @property
    def kernel(self) -> str:
        return self.payload.get("kernel", "bitset")

    @property
    def deadline_s(self) -> Optional[float]:
        return self.payload.get("deadline_s")

    def chaos_label(self) -> str:
        """What a :class:`~repro.resilience.Fault`'s ``scenario``
        selector matches for this request: the scenario name for
        ``scenario`` ops, else the decide kind, else the op itself."""
        return self.payload.get("scenario",
                                self.payload.get("kind", self.op))


# ----------------------------------------------------------------------
# Decoding and validation.
# ----------------------------------------------------------------------

def _require(fields: Mapping, key: str, kind: type, what: str) -> Any:
    if key not in fields:
        raise ProtocolError(f"{what} requires {key!r}")
    value = fields[key]
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ProtocolError(
            f"{what} field {key!r} must be {kind.__name__}, "
            f"got {type(value).__name__}")
    return value


def _optional(fields: Mapping, key: str, kind: type, what: str,
              default: Any = None) -> Any:
    if key not in fields or fields[key] is None:
        return default
    return _require(fields, key, kind, what)


def _choice(value: str, choices, what: str) -> str:
    if value not in choices:
        raise ProtocolError(f"unknown {what} {value!r}; "
                            f"expected one of {sorted(choices)}")
    return value


def _config_fields(fields: Mapping, what: str, *,
                   kernel: bool = True) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "engine": _choice(
            _optional(fields, "engine", str, what, "columnar"),
            ENGINE_CONFIGS, "engine"),
    }
    if kernel:
        payload["kernel"] = _choice(
            _optional(fields, "kernel", str, what, "bitset"),
            KERNEL_CONFIGS, "kernel")
    deadline = _optional(fields, "deadline_s", (int, float), what)
    if deadline is not None:
        if deadline <= 0:
            raise ProtocolError(f"{what} deadline_s must be positive, "
                                f"got {deadline}")
        payload["deadline_s"] = float(deadline)
    return payload


def _validated_program(source: str, what: str,
                       goal: Optional[str] = None) -> str:
    """Statically validate a program source field at decode time.

    Unsafe or unparsable programs fail fast here -- a typed
    ``bad-request`` carrying the analyzer's diagnostics -- instead of
    burning worker dispatches (and retries) on a program the decision
    procedures would reject anyway.  Databases are *not* validated
    here: they can be arbitrarily large and are parsed worker-side.
    """
    from ..analysis import analyze_source

    report = analyze_source(source, goal, plans=False)
    if report.ok:
        return source
    first = report.errors[0]
    raise ProtocolError(
        f"{what} rejected by static analysis: {first.code} {first.name}: "
        f"{first.message}",
        diagnostics=[d.as_dict() for d in report.errors])


def _decode_decide(fields: Mapping) -> Dict[str, Any]:
    kind = _choice(_require(fields, "kind", str, "decide"), DECIDE_KINDS,
                   "decide kind")
    goal = _require(fields, "goal", str, "decide")
    payload: Dict[str, Any] = {
        "kind": kind,
        "program": _validated_program(
            _require(fields, "program", str, "decide"),
            "decide 'program'", goal),
        "goal": goal,
        "method": _choice(_optional(fields, "method", str, "decide", "auto"),
                          METHODS, "method"),
    }
    if kind == "equivalence":
        nonrecursive_goal = _optional(fields, "nonrecursive_goal", str,
                                      "decide")
        payload["nonrecursive"] = _validated_program(
            _require(fields, "nonrecursive", str, "decide equivalence"),
            "decide 'nonrecursive'", nonrecursive_goal or goal)
        if nonrecursive_goal is not None:
            payload["nonrecursive_goal"] = nonrecursive_goal
    elif kind == "containment":
        union = _optional(fields, "union", str, "decide")
        depth = _optional(fields, "union_depth", int, "decide")
        if (union is None) == (depth is None):
            raise ProtocolError("decide containment requires exactly one "
                                "of 'union' / 'union_depth'")
        if union is not None:
            union_goal = _optional(fields, "union_goal", str, "decide")
            payload["union"] = _validated_program(
                union, "decide 'union'", union_goal or goal)
            if union_goal is not None:
                payload["union_goal"] = union_goal
        else:
            if depth < 1:
                raise ProtocolError("decide union_depth must be >= 1, "
                                    f"got {depth}")
            payload["union_depth"] = depth
    else:  # boundedness
        payload["max_depth"] = _optional(fields, "max_depth", int,
                                         "decide", 4)
        if payload["max_depth"] < 1:
            raise ProtocolError("decide max_depth must be >= 1, "
                                f"got {payload['max_depth']}")
    payload.update(_config_fields(fields, "decide"))
    return payload


def _decode_eval(fields: Mapping) -> Dict[str, Any]:
    goal = _require(fields, "goal", str, "eval")
    payload: Dict[str, Any] = {
        "program": _validated_program(
            _require(fields, "program", str, "eval"), "eval 'program'",
            goal),
        "db": _require(fields, "db", str, "eval"),
        "goal": goal,
    }
    stages = _optional(fields, "max_stages", int, "eval")
    if stages is not None:
        if stages < 1:
            raise ProtocolError(f"eval max_stages must be >= 1, got {stages}")
        payload["max_stages"] = stages
    payload.update(_config_fields(fields, "eval", kernel=False))
    return payload


def _decode_scenario(fields: Mapping) -> Dict[str, Any]:
    from ..workloads.scenarios import get_scenario

    name = _require(fields, "scenario", str, "scenario")
    try:
        get_scenario(name)
    except KeyError:
        raise ProtocolError(f"unknown scenario {name!r}") from None
    payload: Dict[str, Any] = {"scenario": name}
    payload.update(_config_fields(fields, "scenario"))
    return payload


_KNOWN_FIELDS = {
    "decide": {"id", "op", "kind", "program", "goal", "method",
               "nonrecursive", "nonrecursive_goal", "union", "union_goal",
               "union_depth", "max_depth", "engine", "kernel", "deadline_s"},
    "eval": {"id", "op", "program", "db", "goal", "max_stages", "engine",
             "deadline_s"},
    "scenario": {"id", "op", "scenario", "engine", "kernel", "deadline_s"},
    "status": {"id", "op"},
    "shutdown": {"id", "op"},
}

_DECODERS = {
    "decide": _decode_decide,
    "eval": _decode_eval,
    "scenario": _decode_scenario,
    "status": lambda fields: {},
    "shutdown": lambda fields: {},
}


def decode_request(line: Union[str, bytes]) -> Request:
    """Parse and validate one request line into a normalized
    :class:`Request`; raise :class:`ProtocolError` on anything
    malformed.

        >>> request = decode_request(
        ...     '{"op": "scenario", "scenario": "bounded_buys"}')
        >>> request.op, request.payload["scenario"], request.kernel
        ('scenario', 'bounded_buys', 'bitset')
        >>> decode_request('{"op": "warp"}')
        Traceback (most recent call last):
            ...
        repro.service.protocol.ProtocolError: unknown op 'warp'; \
expected one of ['decide', 'eval', 'scenario', 'shutdown', 'status']
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"request line exceeds {MAX_LINE_BYTES} bytes")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not valid UTF-8: {exc}") \
                from None
    try:
        fields = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(fields, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(fields).__name__}")
    op = _choice(_require(fields, "op", str, "request"), OPS, "op")
    request_id = fields.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError("request 'id' must be a string or integer")
    unknown = set(fields) - _KNOWN_FIELDS[op]
    if unknown:
        raise ProtocolError(
            f"unknown field(s) for op {op!r}: {sorted(unknown)}")
    return Request(op=op, id=request_id, payload=_DECODERS[op](fields))


# ----------------------------------------------------------------------
# The coalescing key.
# ----------------------------------------------------------------------

@lru_cache(maxsize=None)
def fingerprint_for(engine: str, kernel: str) -> str:
    """The Session config fingerprint of an (engine label, kernel
    label) pair -- what the service's worker sessions for that pair
    report as :attr:`~repro.session.Decision.fingerprint`, computed
    without building an engine."""
    from ..session import CachePolicy, config_fingerprint

    return config_fingerprint(ENGINE_CONFIGS[engine],
                              KERNEL_CONFIGS[kernel], CachePolicy())


def canonical_payload(request: Request) -> str:
    """The canonical JSON of a request's normalized payload (sorted
    keys, no whitespace) -- the request half of the coalescing key."""
    return json.dumps(dict(request.payload), sort_keys=True,
                      separators=(",", ":"))


def coalesce_key(request: Request) -> str:
    """``sha1(config fingerprint : canonical payload)``: requests with
    equal keys are guaranteed bit-identical decision records, so the
    coalescer may serve N of them from one computation.

        >>> a = decode_request('{"op": "scenario", '
        ...                    '"scenario": "bounded_buys"}')
        >>> b = decode_request('{"op": "scenario", "kernel": "bitset", '
        ...                    '"scenario": "bounded_buys", "id": "x9"}')
        >>> coalesce_key(a) == coalesce_key(b)   # id never participates
        True
        >>> c = decode_request('{"op": "scenario", "kernel": "frozenset",'
        ...                    ' "scenario": "bounded_buys"}')
        >>> coalesce_key(a) == coalesce_key(c)   # config does
        False
    """
    blob = (f"{request.op}:{fingerprint_for(request.engine, request.kernel)}"
            f":{canonical_payload(request)}")
    return hashlib.sha1(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Responses.
# ----------------------------------------------------------------------

def decision_response(request_id, record: Mapping, *, coalesced: bool,
                      attempts: int, queue_ms: float,
                      service_ms: float,
                      cached: bool = False) -> Dict[str, Any]:
    """A completed decision: ``record`` is the payload-stripped
    :meth:`~repro.session.Decision.record` produced by the worker.
    ``queue_ms`` is admission-to-dispatch, ``service_ms`` is
    dispatch-to-completion (a coalesced joiner reports the time it
    itself waited on the shared computation).  ``cached`` marks a
    replay from the result cache (:mod:`repro.service.cache`): the
    record was computed by an earlier identical request and no worker
    ran for this one."""
    return {
        "id": request_id,
        "type": "decision",
        "decision": dict(record),
        "coalesced": bool(coalesced),
        "cached": bool(cached),
        "attempts": int(attempts),
        "queue_ms": round(float(queue_ms), 3),
        "service_ms": round(float(service_ms), 3),
    }


def error_response(request_id, category: str, message: str,
                   attempts: int = 1,
                   diagnostics=None) -> Dict[str, Any]:
    """A typed failure: ``category`` is the resilience taxonomy
    (``timeout``/``memory``/``crash``/``corrupt``/``error``) or
    ``bad-request``.  A quarantine -- a request abandoned after
    exhausting its retries -- is this response with ``attempts`` set
    to the tries spent.  ``diagnostics`` (when non-empty) carries the
    static analyzer's findings for program-validation rejections."""
    if category not in RESPONSE_CATEGORIES:
        raise ValueError(f"unknown error category {category!r}")
    response = {
        "id": request_id,
        "type": "error",
        "error": category,
        "message": str(message),
        "attempts": int(attempts),
    }
    if diagnostics:
        response["diagnostics"] = [dict(d) for d in diagnostics]
    return response


def overload_response(request_id, *, queue_depth: int, capacity: int,
                      retry_after_ms: float) -> Dict[str, Any]:
    """A typed admission rejection: the bounded queue is full.  The
    request was *not* enqueued; the client should back off
    ``retry_after_ms`` before retrying."""
    return {
        "id": request_id,
        "type": "overload",
        "error": OVERLOAD,
        "queue_depth": int(queue_depth),
        "capacity": int(capacity),
        "retry_after_ms": round(float(retry_after_ms), 3),
    }


def status_response(request_id, status: Mapping) -> Dict[str, Any]:
    return {"id": request_id, "type": "status", "status": dict(status)}


def ok_response(request_id) -> Dict[str, Any]:
    return {"id": request_id, "type": "ok"}


def encode_response(response: Mapping) -> bytes:
    """One response line: compact JSON, sorted keys (byte-stable for
    identical payloads -- the coalescing tests compare these), newline
    terminated."""
    return (json.dumps(response, sort_keys=True, separators=(",", ":"),
                       default=str) + "\n").encode("utf-8")
