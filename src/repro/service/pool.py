"""The service worker pool: per-worker Sessions, typed failure.

Requests execute off the event loop, in a pool of workers that each
own long-lived per-engine :class:`~repro.session.Session` objects
(the batch runner's :func:`~repro.runner.batch.worker_session`
lifecycle), and ship back payload-stripped
:meth:`~repro.session.Decision.record` dicts -- witness trees and
engine results never cross the boundary, exactly as in the batch
runner's process pool.

Two executor kinds:

``process`` (the daemon default)
    A ``ProcessPoolExecutor``: real parallelism, and real worker
    death.  A crashed worker breaks the pool; the pool classifies the
    loss as ``crash``, **respawns** the executor (once -- a generation
    counter keeps concurrent losers from stampeding), and retries
    every charged request in **sequential isolation** (an asyncio lock
    admits one retry at a time), the supervisor discipline of PR 7: a
    poisoned request can only take itself down, and attributes exactly
    by crashing again alone.  Worker-side deadlines get the precise
    SIGALRM tier (pool jobs run on worker main threads).
``thread``
    A ``ThreadPoolExecutor`` with per-thread session stores: no spawn
    cost, cooperative-tier deadlines only -- the embedded/test mode,
    where chaos ``crash`` faults raise
    :class:`~repro.resilience.SimulatedWorkerCrash` instead of killing
    anything.

Failures follow the resilience policy: each failed attempt is
classified (:func:`~repro.resilience.classify_failure`), backed off
deterministically (:class:`~repro.resilience.RetryPolicy` -- sha1
jitter, so reruns sleep the same schedule), and retried up to
``max_attempts`` total tries; a request that never succeeds raises
:class:`ServiceFailure`, which the server answers as a typed error
response -- the service's quarantine.

Chaos schedules (:mod:`repro.resilience.chaos`) ride along as spec
strings and are matched per attempt inside the worker, against the
request's :meth:`~repro.service.protocol.Request.chaos_label` --
so ``REPRO_CHAOS``-style drills work unchanged against the daemon.
"""

from __future__ import annotations

import asyncio
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional

from ..budget import (
    BudgetEnforcementWarning,
    disarm_alarm,
    time_budget,
)
from ..datalog.database import Database
from ..datalog.errors import ReproError
from ..datalog.parser import parse_program
from ..datalog.program import Program
from ..datalog.unfold import expansion_union, unfold_nonrecursive
from ..resilience import RetryPolicy, classify_failure, parse_schedule
from ..resilience import chaos as _chaos
from ..runner.batch import worker_session
from ..snapshot import set_snapshot_dir
from .protocol import Request

__all__ = [
    "DecisionPool",
    "PoolConfig",
    "ServiceFailure",
    "database_from_source",
    "service_execute",
    "worker_cache_stats",
]


@dataclass(frozen=True)
class PoolConfig:
    """The pool's knobs (all surfaced as ``repro serve`` flags).

    ``deadline_s`` is the *default* per-request wall-clock deadline; a
    request's own ``deadline_s`` field overrides it (tighter or
    looser).  ``chaos`` is a fault-schedule spec string (``None``
    defers to ``REPRO_CHAOS`` in the worker).  ``max_attempts`` counts
    every try of a request before it is quarantined.  ``snapshot_dir``
    points workers at a warm-state snapshot directory
    (:mod:`repro.snapshot`): spawned and respawned workers restore
    their sessions from it instead of cold-starting (``None`` defers
    to ``REPRO_SNAPSHOT_DIR``).
    """

    workers: int = 2
    executor: str = "process"
    max_attempts: int = 3
    deadline_s: Optional[float] = None
    chaos: Optional[str] = None
    backoff_base_s: float = 0.02
    snapshot_dir: Optional[str] = None

    def __post_init__(self):
        if self.executor not in ("process", "thread"):
            raise ValueError(f"unknown executor {self.executor!r}; "
                             f"expected 'process' or 'thread'")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chaos is not None:
            parse_schedule(self.chaos)  # validate eagerly, not in-flight

    def policy(self) -> RetryPolicy:
        return RetryPolicy(max_attempts=self.max_attempts,
                           backoff_base_s=self.backoff_base_s)


class ServiceFailure(Exception):
    """A request abandoned after exhausting its retries (the service's
    quarantine).  Carries the last failure's taxonomy ``category``,
    the joined failure ``message``, and total ``attempts`` spent."""

    def __init__(self, category: str, message: str, attempts: int):
        super().__init__(message)
        self.category = category
        self.attempts = attempts


# ----------------------------------------------------------------------
# Worker-side execution (module-level: must pickle into pool workers).
# ----------------------------------------------------------------------

#: Per-thread warm session stores for the thread executor; a process
#: worker runs jobs on one thread, so the same indirection serves both.
#: Every store is also registered in ``_ALL_STORES`` (keyed by thread
#: ident) so the server's ``status`` op can aggregate cache stats
#: across thread-mode workers from the event loop.
_THREAD_LOCAL = threading.local()
_ALL_STORES: Dict[int, Dict[str, Any]] = {}


def _sessions() -> Dict[str, Any]:
    store = getattr(_THREAD_LOCAL, "sessions", None)
    if store is None:
        store = _THREAD_LOCAL.sessions = {}
        _ALL_STORES[threading.get_ident()] = store
    return store


def worker_cache_stats() -> List[Dict[str, Any]]:
    """Observability hook: the
    :meth:`~repro.session.Session.cache_stats` of every service worker
    session in *this process* (one entry per worker thread per engine
    label).  Under a thread executor this is the whole pool -- the
    coalescing tests assert single-computation behaviour with it; a
    process executor's sessions live in the workers, so the server
    process reports none.

    Only *live* threads are reported, and dead threads' stores are
    pruned on the way: thread idents are reused by the OS, so a stale
    store left by a stopped pool would otherwise be silently replaced
    by a new worker mid-flight -- making aggregate counter deltas
    across two status calls go negative."""
    alive = {t.ident for t in threading.enumerate()}
    for ident in [i for i in list(_ALL_STORES) if i not in alive]:
        _ALL_STORES.pop(ident, None)
    return [
        {"thread": ident, "config": key, **session.cache_stats()}
        for ident, store in sorted(_ALL_STORES.items())
        for key, session in sorted(store.items())
    ]


def database_from_source(source: str) -> Database:
    """An ``eval`` request's ``db`` field: ground, body-less rules
    (``e(a, b).``), parsed with the normal Datalog front end."""
    program = parse_program(source)
    atoms = []
    for rule in program.rules:
        if rule.body or rule.head.variable_set():
            raise ReproError(
                f"'db' expects ground facts only, got rule {rule}")
        atoms.append(rule.head)
    return Database.from_atoms(atoms)


def _run_decide(session, payload: Dict[str, Any],
                deadline: Optional[float]):
    program: Program = parse_program(payload["program"])
    goal = payload["goal"]
    method = payload["method"]
    kind = payload["kind"]
    if kind == "equivalence":
        return session.equivalent_to_nonrecursive(
            program, parse_program(payload["nonrecursive"]), goal,
            nonrecursive_goal=payload.get("nonrecursive_goal"),
            method=method, deadline=deadline)
    if kind == "containment":
        if "union" in payload:
            union = unfold_nonrecursive(
                parse_program(payload["union"]),
                payload.get("union_goal") or goal)
        else:
            union = expansion_union(program, goal, payload["union_depth"])
        return session.contains(program, goal, union, method=method,
                                deadline=deadline)
    return session.bounded(program, goal, max_depth=payload["max_depth"],
                           method=method, deadline=deadline)


def service_execute(op: str, payload: Dict[str, Any], attempt: int,
                    chaos_spec: Optional[str],
                    deadline_s: Optional[float]) -> Dict[str, Any]:
    """Execute one request attempt in the current worker and return
    the payload-stripped decision record.

    Runs on a pool worker (process or thread): chaos injection first
    (inside the deadline scope, so planted hangs are interruptible),
    then the decision on this worker's warm per-engine session.  The
    request's own ``deadline_s`` (already resolved into *deadline_s*
    by the caller) bounds the whole attempt.
    """
    request = Request(op=op, payload=payload)
    schedule = (parse_schedule(chaos_spec) if chaos_spec is not None
                else _chaos.from_env())
    nth = _chaos.next_job_index()
    # One session per (engine, kernel) pair, so every decision reports
    # the exact config fingerprint the coalescing key was derived from.
    session = worker_session(request.engine, sessions=_sessions(),
                             name="service", kernel=request.kernel)
    with warnings.catch_warnings():
        # Thread-executor deadlines are cooperative-tier only; the
        # decision loops are instrumented, so degradation is expected
        # here, not warning-worthy per request.
        warnings.simplefilter("ignore", BudgetEnforcementWarning)
        with time_budget(deadline_s):
            _chaos.inject(request.chaos_label(), nth, attempt,
                          schedule=schedule)
            if op == "decide":
                decision = _run_decide(session, payload, deadline_s)
            elif op == "eval":
                decision = session.query(
                    parse_program(payload["program"]),
                    database_from_source(payload["db"]),
                    payload["goal"],
                    max_stages=payload.get("max_stages"),
                    deadline=deadline_s)
            elif op == "scenario":
                decision = session.run_scenario(
                    payload["scenario"], deadline=deadline_s)
            else:  # pragma: no cover - the server routes control ops
                raise ReproError(f"op {op!r} is not executable")
    decision.meta.setdefault("op", op)
    decision.meta.setdefault("engine", request.engine)
    if op != "eval":
        decision.meta.setdefault("kernel", request.kernel)
    # The batch runner's wire shape: payloads stay in the worker.
    return decision.without_payload().record()


def _worker_init(snapshot_dir: Optional[str] = None) -> None:
    """Process-pool worker initializer (spawn and respawn): no stale
    itimers from a dead incarnation, chaos ``crash`` faults must
    really exit, and the snapshot directory is installed so this
    worker's sessions restore warm state instead of cold-starting."""
    disarm_alarm()
    _chaos.mark_worker()
    _thread_init(snapshot_dir)


def _thread_init(snapshot_dir: Optional[str] = None) -> None:
    """Thread-executor initializer: only the snapshot directory --
    threads share the server process, so no itimer hygiene and
    emphatically no ``mark_worker`` (thread-mode chaos ``crash``
    faults must stay simulated, not exit the daemon)."""
    if snapshot_dir is not None:
        set_snapshot_dir(snapshot_dir)


# ----------------------------------------------------------------------
# The event-loop-side pool.
# ----------------------------------------------------------------------

class DecisionPool:
    """Submit requests, collect records or typed failures.

    Lives on the event loop; all mutation happens there (asyncio is
    single-threaded), so counters and the respawn generation need no
    locks -- the retry lock below serializes *awaits*, not state.
    """

    def __init__(self, config: Optional[PoolConfig] = None):
        self.config = config or PoolConfig()
        self._executor = self._spawn()
        self._generation = 0
        self._retry_lock: Optional[asyncio.Lock] = None
        self._stats = {
            "submitted": 0, "completed": 0, "failed": 0,
            "retries": 0, "respawns": 0, "quarantined": 0,
        }

    def _spawn(self):
        initargs = (self.config.snapshot_dir,)
        if self.config.executor == "process":
            return ProcessPoolExecutor(max_workers=self.config.workers,
                                       initializer=_worker_init,
                                       initargs=initargs)
        return ThreadPoolExecutor(max_workers=self.config.workers,
                                  thread_name_prefix="repro-service",
                                  initializer=_thread_init,
                                  initargs=initargs)

    def _respawn(self, seen_generation: int) -> None:
        """Replace a broken process pool exactly once per break: the
        first loser of a generation swaps the executor, the rest see
        the bumped counter and reuse the fresh pool."""
        if self._generation != seen_generation:
            return
        self._generation += 1
        self._stats["respawns"] += 1
        old, self._executor = self._executor, self._spawn()
        old.shutdown(wait=False)

    async def submit(self, request: Request) -> Dict[str, Any]:
        """Run *request* to a decision record, retrying failures under
        the pool policy; raise :class:`ServiceFailure` when the retry
        budget is spent.  The returned record carries ``attempts`` --
        the response layer surfaces it."""
        loop = asyncio.get_running_loop()
        if self._retry_lock is None:
            self._retry_lock = asyncio.Lock()
        policy = self.config.policy()
        deadline = request.deadline_s
        if deadline is None:
            deadline = self.config.deadline_s
        call = partial(service_execute, request.op, dict(request.payload),
                       chaos_spec=self.config.chaos, deadline_s=deadline)
        self._stats["submitted"] += 1
        failures: List[str] = []
        category = "error"
        attempt = 1
        while attempt <= policy.max_attempts:
            generation = self._generation
            try:
                if attempt == 1:
                    record = await loop.run_in_executor(
                        self._executor, partial(call, attempt=attempt))
                else:
                    # Sequential isolation: one retry in flight at a
                    # time, so a poisoned request crashing again can
                    # only charge itself.
                    async with self._retry_lock:
                        await asyncio.sleep(
                            policy.backoff(request.op, attempt - 1))
                        self._stats["retries"] += 1
                        record = await loop.run_in_executor(
                            self._executor, partial(call, attempt=attempt))
            except BrokenProcessPool as exc:
                self._respawn(generation)
                category = "crash"
                failures.append(f"attempt {attempt} crash: "
                                f"{exc or 'worker process died'}")
            except Exception as exc:
                category = classify_failure(exc)
                failures.append(f"attempt {attempt} {category}: "
                                f"{type(exc).__name__}: {exc}")
            else:
                record["attempts"] = attempt
                if failures:
                    record.setdefault("stats", {})
                    record["stats"].setdefault("retried_after",
                                               list(failures))
                self._stats["completed"] += 1
                return record
            attempt += 1
        self._stats["failed"] += 1
        self._stats["quarantined"] += 1
        raise ServiceFailure(category, "; ".join(failures),
                             attempts=attempt - 1)

    def stats(self) -> Dict[str, Any]:
        stats: Dict[str, Any] = {
            "workers": self.config.workers,
            "executor": self.config.executor,
            "max_attempts": self.config.max_attempts,
            **self._stats,
        }
        return stats

    async def shutdown(self) -> None:
        """Stop accepting work and release the workers without
        blocking the event loop on stragglers."""
        executor = self._executor
        await asyncio.get_running_loop().run_in_executor(
            None, partial(executor.shutdown, wait=True,
                          cancel_futures=True))
