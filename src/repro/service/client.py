"""A small blocking client for the decision service.

Speaks the newline-delimited JSON protocol over a unix socket or TCP.
Used by ``python -m repro request``, the load driver, the docs
snippets, and the protocol tests; it is deliberately dependency-free
so third-party callers can crib it verbatim.

Two modes:

* :meth:`ServiceClient.request` -- send one request, block for its
  response.  Ids are filled in automatically when absent.
* :meth:`ServiceClient.request_many` -- pipeline a batch on one
  connection and collect all responses, matching on ``id`` (the
  server answers out of order).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional, Tuple

from .protocol import MAX_LINE_BYTES

__all__ = ["ServiceClient"]


class ServiceClient:
    """One connection to a running service.

    Exactly one of ``socket_path`` / ``tcp`` must be given.  Usable as
    a context manager; the connection is opened eagerly so connect
    errors surface at construction.
    """

    def __init__(self, socket_path: Optional[str] = None,
                 tcp: Optional[Tuple[str, int]] = None,
                 timeout: Optional[float] = 60.0):
        if (socket_path is None) == (tcp is None):
            raise ValueError("pass exactly one of socket_path / tcp")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            self._sock = socket.create_connection(tcp, timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------

    def _auto_id(self) -> str:
        self._next_id += 1
        return f"c{self._next_id}"

    def send(self, fields: Dict[str, Any]) -> Any:
        """Write one request line; returns the id it was sent with."""
        fields = dict(fields)
        if "id" not in fields:
            fields["id"] = self._auto_id()
        line = json.dumps(fields, sort_keys=True,
                          separators=(",", ":")).encode() + b"\n"
        if len(line) > MAX_LINE_BYTES:
            raise ValueError(f"request exceeds {MAX_LINE_BYTES} bytes")
        self._sock.sendall(line)
        return fields["id"]

    def recv(self) -> Dict[str, Any]:
        """Read one response line (whatever request it answers)."""
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    def request(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and block for *its* response."""
        request_id = self.send(fields)
        while True:
            response = self.recv()
            if response.get("id") == request_id:
                return response

    def request_many(self,
                     batch: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Pipeline *batch* on this connection; responses are returned
        in request order regardless of completion order."""
        ids = [self.send(fields) for fields in batch]
        by_id: Dict[Any, Dict[str, Any]] = {}
        while len(by_id) < len(ids):
            response = self.recv()
            if response.get("id") in set(ids):
                by_id[response["id"]] = response
        return [by_id[request_id] for request_id in ids]

    # ------------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
