"""Served-decision result cache: remembering answers, not work.

The :mod:`coalescer <repro.service.coalescer>` deduplicates requests
that overlap *in flight*; this module deduplicates requests that
repeat *over time*.  A :class:`ResultCache` is a bounded LRU (with an
optional TTL) over completed decision records, keyed by the exact
:func:`~repro.service.protocol.coalesce_key` -- the same soundness
argument applies: two requests with equal keys are guaranteed
bit-identical decision records, so replaying the stored record *is*
the decision, not an approximation of it.

Placement in the request path matters: the server consults the cache
**before** coalescing and admission, so a hit consumes no admission
slot and never touches the pool -- under a repeat-heavy load the
cache turns the hot tail of the key distribution into pure front-door
work.  Only *successful* decisions are stored; failures (timeouts,
crashes, overload) must re-execute, because they say something about
the server's past state, not the request's answer.

Cached responses are marked ``"cached": true`` on the wire so clients
and the load driver can tell a replay from a fresh computation, and
the cache's ``hits`` / ``misses`` / ``evictions`` / ``expirations``
counters ride the existing ``status`` op
(``status["result_cache"]``).

Disabled by default (``capacity=0``): turn it on with ``repro serve
--result-cache N`` (and optionally ``--result-cache-ttl SECONDS``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["ResultCache"]


class ResultCache:
    """A bounded LRU of ``(decision record, attempts)`` pairs keyed by
    coalescing key, with an optional per-entry TTL.

    Thread-safe: the server reads it from the event loop but tests and
    embedded callers poke at it from other threads, and the lock is
    cheap next to even a cached request's JSON round-trip.

    ``capacity <= 0`` builds a disabled cache: every lookup misses
    without counting, ``put`` is a no-op, and ``stats()`` still
    renders (all zeros) so the ``status`` payload keeps one shape.
    """

    def __init__(self, capacity: int = 0,
                 ttl_s: Optional[float] = None,
                 clock=time.monotonic):
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        self.capacity = int(capacity)
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (record, attempts, stored_at)
        self._entries: "OrderedDict[str, Tuple[Mapping, int, float]]" = \
            OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get(self, key: str) -> Optional[Tuple[Mapping, int]]:
        """The stored ``(record, attempts)`` for *key*, or ``None``.
        A hit refreshes the entry's LRU position; an expired entry is
        dropped and counted as a miss (plus an expiration)."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            record, attempts, stored_at = entry
            if (self.ttl_s is not None
                    and self._clock() - stored_at > self.ttl_s):
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return record, attempts

    def put(self, key: str, record: Mapping, attempts: int = 1) -> None:
        """Store a *successful* decision record under *key*, evicting
        the least-recently-used entry when full.  Callers are expected
        to filter failures out -- the cache never inspects the record."""
        if not self.enabled:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (record, int(attempts), self._clock())
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, Any]:
        """The ``status`` op's ``result_cache`` payload."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "capacity": self.capacity,
                "ttl_s": self.ttl_s,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "expirations": self._expirations,
                "hit_rate": round(self._hits / total, 4) if total else 0.0,
            }
