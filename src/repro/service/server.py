"""The asyncio front door: sockets in, decision records out.

One :class:`ServiceServer` owns the listening sockets (a unix socket,
an optional TCP endpoint, or both), the
:class:`~repro.service.admission.AdmissionController`, the
:class:`~repro.service.coalescer.Coalescer`, and the
:class:`~repro.service.pool.DecisionPool`.  Per connection it reads
newline-delimited JSON requests and answers each with exactly one
response line; requests on one connection are served **concurrently**
(pipelining), so responses may arrive out of order -- clients match on
the echoed ``id``.

The request path, in order (each step a module of this package)::

    decode -> (control op? answer inline)
           -> coalesce-join?  await the shared future, no slot used
           -> admit           full? typed overload, done
           -> coalesce-lead   publish the in-flight key
           -> pool.submit     execute on a worker Session, retries,
                              typed ServiceFailure after max attempts
           -> resolve + respond (and fan the record out to joiners)

Failure containment is strictly per request: malformed lines get
``bad-request`` responses, worker deaths get ``crash`` errors after
the pool respawns, deadline overruns get ``timeout`` -- the
connection, and every other in-flight request, keeps going.

:func:`start_in_thread` runs a server on a background thread with its
own event loop -- how the tests, the docs snippets, and the load
driver's in-process mode embed a live daemon.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from .admission import AdmissionController
from .cache import ResultCache
from .coalescer import Coalescer
from .pool import DecisionPool, PoolConfig, ServiceFailure, \
    worker_cache_stats
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    coalesce_key,
    decode_request,
    decision_response,
    encode_response,
    error_response,
    ok_response,
    overload_response,
    status_response,
)

__all__ = [
    "ServiceConfig",
    "ServiceHandle",
    "ServiceServer",
    "start_in_thread",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``python -m repro serve`` exposes as flags.

    At least one of ``socket_path`` / ``tcp`` must be set.  ``pool``
    carries the worker knobs; ``capacity``/``retry_after_ms`` the
    admission bound.
    """

    socket_path: Optional[str] = None
    tcp: Optional[Tuple[str, int]] = None
    capacity: int = 64
    retry_after_ms: float = 50.0
    pool: PoolConfig = field(default_factory=PoolConfig)
    #: Served-decision result cache (entries; 0 = off).  Hits replay
    #: the stored record -- no admission slot, no pool dispatch -- and
    #: are marked ``"cached": true`` on the wire.
    result_cache: int = 0
    #: Optional per-entry TTL for the result cache, in seconds.
    result_cache_ttl_s: Optional[float] = None

    def __post_init__(self):
        if self.socket_path is None and self.tcp is None:
            raise ValueError("ServiceConfig needs socket_path or tcp")
        if self.result_cache < 0:
            raise ValueError("result_cache must be >= 0, "
                             f"got {self.result_cache}")


class ServiceServer:
    """The daemon: bind, serve until stopped (or a ``shutdown`` op)."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.admission = AdmissionController(
            capacity=config.capacity,
            retry_after_ms=config.retry_after_ms)
        self.coalescer = Coalescer()
        self.result_cache = ResultCache(
            capacity=config.result_cache,
            ttl_s=config.result_cache_ttl_s)
        self.pool: Optional[DecisionPool] = None
        self._servers = []
        self._conn_tasks: Set[asyncio.Task] = set()
        self._stop_event: Optional[asyncio.Event] = None
        self._started_at = 0.0
        self._served = 0
        self._errors = 0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Create the pool and bind every configured endpoint."""
        self._stop_event = asyncio.Event()
        self.pool = DecisionPool(self.config.pool)
        self._started_at = time.monotonic()
        if self.config.socket_path is not None:
            self._servers.append(await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket_path,
                limit=MAX_LINE_BYTES))
        if self.config.tcp is not None:
            host, port = self.config.tcp
            self._servers.append(await asyncio.start_server(
                self._handle_connection, host=host, port=port,
                limit=MAX_LINE_BYTES))

    @property
    def endpoints(self) -> Tuple[str, ...]:
        """Human-readable bound addresses (TCP ports resolved, so
        ``port=0`` callers can discover the real one)."""
        where = []
        if self.config.socket_path is not None:
            where.append(f"unix:{self.config.socket_path}")
        for server in self._servers:
            for sock in server.sockets:
                if sock.family.name == "AF_INET":
                    host, port = sock.getsockname()[:2]
                    where.append(f"tcp:{host}:{port}")
        return tuple(where)

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop` or a ``shutdown`` request, then
        tear down."""
        await self._stop_event.wait()
        await self._teardown()

    def request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    async def stop(self) -> None:
        self.request_stop()
        await self._teardown()

    async def _teardown(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers = []
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)
        if self.pool is not None:
            await self.pool.shutdown()
            self.pool = None

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The ``status`` op's payload: every layer's counters."""
        return {
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "served": self._served,
            "errors": self._errors,
            "admission": self.admission.stats(),
            "coalescer": self.coalescer.stats(),
            "result_cache": self.result_cache.stats(),
            "pool": self.pool.stats() if self.pool is not None else {},
            "worker_sessions": worker_cache_stats(),
        }

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        request_tasks: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Line framing is lost; answer once and hang up.
                    await self._write(writer, write_lock, error_response(
                        None, "bad-request",
                        f"request line exceeds {MAX_LINE_BYTES} bytes"))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_request(line)
                except ProtocolError as exc:
                    await self._write(writer, write_lock, error_response(
                        _best_effort_id(line), "bad-request", str(exc),
                        diagnostics=exc.diagnostics))
                    continue
                if request.op == "status":
                    await self._write(writer, write_lock, status_response(
                        request.id, self.status()))
                    continue
                if request.op == "shutdown":
                    await self._write(writer, write_lock,
                                      ok_response(request.id))
                    self.request_stop()
                    continue
                # Decision ops execute concurrently per connection.
                sub = asyncio.ensure_future(
                    self._serve_request(request, writer, write_lock))
                request_tasks.add(sub)
                sub.add_done_callback(request_tasks.discard)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            for sub in list(request_tasks):
                sub.cancel()
            if request_tasks:
                await asyncio.gather(*request_tasks,
                                     return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._conn_tasks.discard(task)

    async def _write(self, writer: asyncio.StreamWriter,
                     lock: asyncio.Lock, response: Dict[str, Any]) -> None:
        async with lock:
            writer.write(encode_response(response))
            await writer.drain()

    async def _serve_request(self, request: Request,
                             writer: asyncio.StreamWriter,
                             lock: asyncio.Lock) -> None:
        arrived = time.perf_counter()
        key = coalesce_key(request)
        cached = self.result_cache.get(key)
        if cached is not None:
            # The answer is already known bit-identically (the cache
            # is keyed by the full coalescing key): replay it without
            # an admission slot or a pool dispatch.
            record, attempts = cached
            self._served += 1
            waited_ms = (time.perf_counter() - arrived) * 1000.0
            await self._write(writer, lock, decision_response(
                request.id, record, coalesced=False, cached=True,
                attempts=attempts, queue_ms=0.0, service_ms=waited_ms))
            return
        shared = self.coalescer.join(key)
        if shared is not None:
            # A bit-identical request is in flight: wait for its
            # record, consume no admission slot.
            try:
                record, attempts = await asyncio.shield(shared)
            except ServiceFailure as failure:
                self._errors += 1
                await self._write(writer, lock, error_response(
                    request.id, failure.category, str(failure),
                    attempts=failure.attempts))
                return
            except asyncio.CancelledError:
                raise
            self._served += 1
            waited_ms = (time.perf_counter() - arrived) * 1000.0
            await self._write(writer, lock, decision_response(
                request.id, record, coalesced=True, attempts=attempts,
                queue_ms=0.0, service_ms=waited_ms))
            return

        if not self.admission.try_admit():
            stats = self.admission.stats()
            await self._write(writer, lock, overload_response(
                request.id, queue_depth=stats["depth"],
                capacity=stats["capacity"],
                retry_after_ms=self.admission.retry_after_ms))
            return

        future = self.coalescer.lead(key)
        dispatched = time.perf_counter()
        try:
            record = await self.pool.submit(request)
        except ServiceFailure as failure:
            self.coalescer.resolve(key, error=failure)
            self._errors += 1
            await self._write(writer, lock, error_response(
                request.id, failure.category, str(failure),
                attempts=failure.attempts))
            return
        except asyncio.CancelledError:
            self.coalescer.resolve(
                key, error=ServiceFailure("error", "server shutting down",
                                          attempts=1))
            raise
        except Exception as exc:  # defense: submit() classifies its own
            failure = ServiceFailure("error", f"{type(exc).__name__}: {exc}",
                                     attempts=1)
            self.coalescer.resolve(key, error=failure)
            self._errors += 1
            await self._write(writer, lock, error_response(
                request.id, failure.category, str(failure), attempts=1))
            return
        finally:
            self.admission.release()
        attempts = record.get("attempts", 1)
        self.coalescer.resolve(key, result=(record, attempts))
        # Only completed decisions are cached; every failure path
        # above returned without a put, so future repeats re-execute.
        self.result_cache.put(key, record, attempts)
        self._served += 1
        done = time.perf_counter()
        await self._write(writer, lock, decision_response(
            request.id, record, coalesced=False, attempts=attempts,
            queue_ms=(dispatched - arrived) * 1000.0,
            service_ms=(done - dispatched) * 1000.0))


def _best_effort_id(line: bytes) -> Optional[str]:
    """Echo the client's id on a bad-request when the line was at
    least JSON -- lets pipelining clients attribute the rejection."""
    import json

    try:
        fields = json.loads(line)
    except Exception:
        return None
    if isinstance(fields, dict):
        request_id = fields.get("id")
        if isinstance(request_id, (str, int)):
            return request_id
    return None


# ----------------------------------------------------------------------
# Embedding: a live server on a background thread.
# ----------------------------------------------------------------------

class ServiceHandle:
    """A running embedded server: join the thread via :meth:`stop`."""

    def __init__(self, server: ServiceServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def socket_path(self) -> Optional[str]:
        return self.server.config.socket_path

    @property
    def endpoints(self) -> Tuple[str, ...]:
        return self.server.endpoints

    def stop(self, timeout: float = 10.0) -> None:
        if not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:
                pass  # loop closed between the check and the call
        self._thread.join(timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def start_in_thread(config: ServiceConfig,
                    ready_timeout: float = 30.0) -> ServiceHandle:
    """Run a :class:`ServiceServer` on a daemon thread with its own
    event loop; returns once the sockets are bound.  The embedded mode
    behind the tests, the docs snippets, and in-process load drives.

        >>> import tempfile, os
        >>> from repro.service import ServiceConfig, PoolConfig
        >>> from repro.service.client import ServiceClient
        >>> path = os.path.join(tempfile.mkdtemp(), "repro.sock")
        >>> config = ServiceConfig(socket_path=path,
        ...     pool=PoolConfig(workers=1, executor="thread"))
        >>> with start_in_thread(config) as handle:
        ...     with ServiceClient(socket_path=path) as client:
        ...         response = client.request({"op": "status"})
        >>> response["type"], response["status"]["served"]
        ('status', 0)
    """
    ready = threading.Event()
    startup_error = []
    holder: Dict[str, Any] = {}

    def runner():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = ServiceServer(config)
        holder["loop"] = loop
        holder["server"] = server
        try:
            loop.run_until_complete(server.start())
        except Exception as exc:
            startup_error.append(exc)
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_until_complete(server.serve_until_stopped())
        finally:
            loop.close()

    thread = threading.Thread(target=runner, name="repro-service",
                              daemon=True)
    thread.start()
    if not ready.wait(ready_timeout):
        raise RuntimeError("service failed to start within "
                           f"{ready_timeout}s")
    if startup_error:
        raise startup_error[0]
    return ServiceHandle(holder["server"], holder["loop"], thread)
