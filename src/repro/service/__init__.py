"""The decision service: a long-lived concurrent daemon over Sessions.

The batch runner (:mod:`repro.runner`) answers "run this matrix once";
this package answers "keep answering decisions forever".  It is the
served system the ROADMAP's top open item names, built on exactly the
substrate the earlier PRs prepared: every request executes inside a
per-worker :class:`~repro.session.Session` (PR 5) and ships back a
payload-stripped :class:`~repro.session.Decision` record (the batch
runner's wire shape), and worker crashes, hangs, and overruns surface
as the resilience layer's typed error categories (PR 7) instead of
dropped connections.

The pieces, front to back:

* :mod:`repro.service.protocol` -- the wire protocol: newline-delimited
  JSON requests/responses over a unix socket (or TCP), typed
  ``bad-request`` rejections for malformed input, and the coalescing
  key (Session config fingerprint + canonical payload digest).
* :mod:`repro.service.admission` -- admission control: a bounded
  admit-count with deterministic ``overload`` rejections carrying a
  ``retry_after_ms`` hint, so saturation degrades into fast typed
  refusals rather than unbounded queueing.
* :mod:`repro.service.coalescer` -- request coalescing: identical
  in-flight requests (same coalescing key) await one underlying
  computation and receive bit-identical decision records.
* :mod:`repro.service.pool` -- the worker pool: per-worker Sessions
  (process or thread executor), per-request deadlines, chaos
  injection, bounded retries with deterministic backoff, pool respawn
  on worker death, and quarantine as a typed error response.
* :mod:`repro.service.server` -- the asyncio front door wiring the
  above together, plus :func:`start_in_thread` for embedding a live
  server in tests and docs.
* :mod:`repro.service.client` -- a small blocking client (one JSON
  object per request) used by the tests, the CLI ``request``
  subcommand, and the load driver.

Start it from the shell with ``python -m repro serve --socket PATH``;
drive it with ``python -m repro request --socket PATH '{"op": ...}'``.
The wire protocol and lifecycle are documented in ``docs/SERVICE.md``;
``benchmarks/bench_service.py`` measures p50/p99 latency and sustained
decisions/sec into ``BENCH_service.json``.
"""

from __future__ import annotations

from .admission import AdmissionController
from .cache import ResultCache
from .coalescer import Coalescer
from .pool import DecisionPool, PoolConfig, ServiceFailure
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    coalesce_key,
    decode_request,
    decision_response,
    encode_response,
    error_response,
    fingerprint_for,
    ok_response,
    overload_response,
    status_response,
)
from .server import ServiceConfig, ServiceServer, start_in_thread

__all__ = [
    "AdmissionController",
    "Coalescer",
    "DecisionPool",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "PoolConfig",
    "ProtocolError",
    "Request",
    "ResultCache",
    "ServiceConfig",
    "ServiceFailure",
    "ServiceServer",
    "coalesce_key",
    "decision_response",
    "decode_request",
    "encode_response",
    "error_response",
    "fingerprint_for",
    "ok_response",
    "overload_response",
    "start_in_thread",
    "status_response",
]
