"""Admission control: a bounded in-service count with typed overload.

The daemon must degrade deterministically under overload: decisions
are EXPTIME-hard, so an unbounded queue turns a traffic spike into
unbounded memory growth and minutes-later answers nobody is waiting
for.  Instead, at most ``capacity`` requests may be *in service*
(admitted and not yet completed -- queued for a worker or executing)
at once; request ``capacity + 1`` is refused on arrival with a typed
``overload`` response carrying a ``retry_after_ms`` hint, and the
connection stays healthy.

Two deliberate non-slots:

* **Coalesced joiners are free.**  A request that coalesces onto an
  in-flight computation consumes no admission slot -- it adds no work,
  only a waiter -- so a thundering herd of identical requests can
  never saturate the queue (the server admits the leader and coalesces
  the herd).
* **Control ops are free.**  ``status`` and ``shutdown`` never queue
  behind decisions; an operator can always observe a saturated server.

The controller is used from the event loop only (asyncio is
single-threaded), so plain counters are race-free by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["AdmissionController"]


@dataclass
class AdmissionController:
    """Bounded admission with deterministic rejection.

        >>> admission = AdmissionController(capacity=2)
        >>> admission.try_admit(), admission.try_admit(), admission.try_admit()
        (True, True, False)
        >>> admission.release()
        >>> admission.try_admit()
        True
        >>> admission.stats()["rejected"]
        1
    """

    capacity: int = 64
    retry_after_ms: float = 50.0

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        self._depth = 0
        self._high_water = 0
        self._admitted = 0
        self._rejected = 0

    @property
    def depth(self) -> int:
        """Requests currently in service (admitted, not completed)."""
        return self._depth

    def try_admit(self) -> bool:
        """Claim one slot; ``False`` (and a recorded rejection) when
        the service is at capacity."""
        if self._depth >= self.capacity:
            self._rejected += 1
            return False
        self._depth += 1
        self._admitted += 1
        self._high_water = max(self._high_water, self._depth)
        return True

    def release(self) -> None:
        """Return a slot (request completed, failed, or quarantined).
        Every successful :meth:`try_admit` must be paired with exactly
        one release -- the server does this in a ``finally``."""
        if self._depth <= 0:
            raise RuntimeError("release() without a matching try_admit()")
        self._depth -= 1

    def stats(self) -> Dict[str, Any]:
        return {
            "depth": self._depth,
            "capacity": self.capacity,
            "high_water": self._high_water,
            "admitted": self._admitted,
            "rejected": self._rejected,
        }
