"""Request coalescing: identical in-flight requests share one
computation.

Served decision traffic is heavily repetitive -- the same containment
question from many clients, the same scenario re-requested while the
first answer is still being computed.  Decisions are pure functions of
(configuration, inputs), which the coalescing key captures exactly
(:func:`repro.service.protocol.coalesce_key`: Session config
fingerprint + canonical payload digest), so the service may run one
computation and fan its record out to every waiter -- each response is
bit-identical because they serialize the *same* record dict.

Semantics (pinned by ``tests/test_service.py``):

* Coalescing applies to **in-flight** requests only: the leader's key
  is published when it is admitted and retired when its computation
  resolves, success or failure.  A request arriving after resolution
  starts a fresh computation -- this is deduplication of concurrent
  work, not a result cache (the Session's own caches already make the
  recomputation warm).
* Joiners share the leader's **outcome**, including typed errors: if
  the one computation times out or is quarantined, every waiter gets
  the same error category.  Sharing failures is what prevents a
  poisoned request from being recomputed once per waiter.
* Joiners never consume admission slots (see
  :mod:`repro.service.admission`).

Used from the event loop only; the future per key is an
``asyncio.Future`` resolved exactly once.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

__all__ = ["Coalescer"]


class Coalescer:
    """The in-flight computation table: key -> shared future."""

    def __init__(self):
        self._inflight: Dict[str, "asyncio.Future[Any]"] = {}
        self._computed = 0
        self._joined = 0

    def join(self, key: str) -> Optional["asyncio.Future[Any]"]:
        """The shared future of an in-flight identical request, or
        ``None`` when this caller must lead (compute) instead."""
        future = self._inflight.get(key)
        if future is not None:
            self._joined += 1
        return future

    def lead(self, key: str) -> "asyncio.Future[Any]":
        """Publish a fresh future for *key* and become its computer.
        The leader must resolve it via :meth:`resolve` in all paths."""
        if key in self._inflight:
            raise RuntimeError(f"key already in flight: {key}")
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._computed += 1
        return future

    def resolve(self, key: str, result: Any = None,
                error: Optional[BaseException] = None) -> None:
        """Retire *key* and wake every joiner with the shared outcome.
        After this, an identical request starts a new computation."""
        future = self._inflight.pop(key)
        if error is not None:
            future.set_exception(error)
            # The leader handles the error itself; if no joiner ever
            # awaits, don't let asyncio log "exception never retrieved".
            future.exception()
        else:
            future.set_result(result)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def stats(self) -> Dict[str, int]:
        """``computed`` counts led (actual) computations; ``joined``
        counts requests served by piggybacking on one."""
        return {
            "computed": self._computed,
            "joined": self._joined,
            "inflight": len(self._inflight),
        }
