"""The worked programs of the paper, as reusable builders.

Every example the paper discusses is available here by its example
number, plus parametrized families used by the benchmarks:

* :func:`buys_bounded` / :func:`buys_bounded_rewriting` -- Example 1.1,
  the trendy/buys program that *is* equivalent to a nonrecursive one.
* :func:`buys_recursive` / :func:`buys_recursive_rewriting` --
  Example 1.1's knows/buys program, which is inherently recursive.
* :func:`transitive_closure` -- Example 2.5 (Figures 1 and 2).
* :func:`dist` -- Example 6.1: ``dist_n`` holds for paths of length
  exactly 2^n; its unfolding is a single conjunctive query with 2^n
  atoms (exponential succinctness of nonrecursive programs).
* :func:`dist_le` -- Example 6.2: paths of length at most 2^n, with
  the empty-body rules of the paper.
* :func:`equal` -- Example 6.3: pairs of equally-labeled paths of
  length 2^n.
* :func:`word` -- Example 6.6: a *linear* nonrecursive program whose
  unfolding has exponentially many disjuncts, each of size O(n).
* :func:`chain_program`, :func:`widget_supply_chain` -- parametrized
  families for scaling benchmarks and examples.
"""

from __future__ import annotations

from typing import List

from ..datalog.parser import parse_program
from ..datalog.program import Program


def buys_bounded() -> Program:
    """Example 1.1, program Pi_1 (equivalent to a nonrecursive one)."""
    return parse_program(
        """
        buys(X, Y) :- likes(X, Y).
        buys(X, Y) :- trendy(X), buys(Z, Y).
        """
    )


def buys_bounded_rewriting() -> Program:
    """Example 1.1's nonrecursive rewriting of Pi_1."""
    return parse_program(
        """
        buys(X, Y) :- likes(X, Y).
        buys(X, Y) :- trendy(X), likes(Z, Y).
        """
    )


def buys_recursive() -> Program:
    """Example 1.1, program Pi_2 (inherently recursive)."""
    return parse_program(
        """
        buys(X, Y) :- likes(X, Y).
        buys(X, Y) :- knows(X, Z), buys(Z, Y).
        """
    )


def buys_recursive_rewriting() -> Program:
    """The nonrecursive program Example 1.1 shows Pi_2 is NOT
    equivalent to."""
    return parse_program(
        """
        buys(X, Y) :- likes(X, Y).
        buys(X, Y) :- knows(X, Z), likes(Z, Y).
        """
    )


def transitive_closure() -> Program:
    """Example 2.5: the transitive-closure program of Figures 1-2.

    ``e`` is the edge relation and ``e0`` the base relation (the
    paper's e'); the goal is ``p``.
    """
    return parse_program(
        """
        p(X, Y) :- e(X, Z), p(Z, Y).
        p(X, Y) :- e0(X, Y).
        """
    )


def plain_transitive_closure() -> Program:
    """Transitive closure over a single edge relation (both rules on
    ``e``); unbounded, used by benchmarks."""
    return parse_program(
        """
        p(X, Y) :- e(X, Z), p(Z, Y).
        p(X, Y) :- e(X, Y).
        """
    )


def dist(n: int) -> Program:
    """Example 6.1: ``dist_i(x, y)`` iff a path of length 2^i links x
    to y.  Nonrecursive; goal ``distN`` where N = *n*."""
    rules: List[str] = [f"dist0(X, Y) :- e(X, Y)."]
    for i in range(1, n + 1):
        rules.append(f"dist{i}(X, Y) :- dist{i-1}(X, Z), dist{i-1}(Z, Y).")
    return parse_program("\n".join(rules))


def dist_le(n: int) -> Program:
    """Example 6.2: ``dist{i}(x, y)`` iff a path of length at most 2^i,
    ``distlt{i}`` for length at most 2^i - 1.  Uses the paper's
    empty-body rules."""
    rules: List[str] = [
        "dist0(X, Y) :- e(X, Y).",
        "dist0(X, X) :- .",
        "distlt0(X, X) :- .",
    ]
    for i in range(1, n + 1):
        rules.append(f"dist{i}(X, Y) :- dist{i-1}(X, Z), dist{i-1}(Z, Y).")
        rules.append(f"distlt{i}(X, Y) :- distlt{i-1}(X, Z), dist{i-1}(Z, Y).")
    return parse_program("\n".join(rules))


def equal(n: int) -> Program:
    """Example 6.3: ``equal_i(x, y, u, v)`` iff there are paths of
    length 2^i from x to y and from u to v with equal node labels
    (except possibly the endpoints)."""
    rules: List[str] = [
        "equal0(X, Y, U, V) :- e(X, Y), e(U, V), zero(X), zero(U).",
        "equal0(X, Y, U, V) :- e(X, Y), e(U, V), one(X), one(U).",
    ]
    for i in range(1, n + 1):
        rules.append(
            f"equal{i}(X, Y, U, V) :- equal{i-1}(X, X1, U, U1), "
            f"equal{i-1}(X1, Y, U1, V)."
        )
    return parse_program("\n".join(rules))


def word(n: int) -> Program:
    """Example 6.6: a linear nonrecursive program recognizing labeled
    paths of length n; unfolds to 2^n disjuncts of size O(n)."""
    rules: List[str] = [
        "word1(X, Y) :- e(X, Y), zero(X).",
        "word1(X, Y) :- e(X, Y), one(X).",
    ]
    for i in range(2, n + 1):
        rules.append(f"word{i}(X, Y) :- word{i-1}(X, Z), e(Z, Y), zero(Y).")
        rules.append(f"word{i}(X, Y) :- word{i-1}(X, Z), e(Z, Y), one(Y).")
    return parse_program("\n".join(rules))


def chain_program(width: int) -> Program:
    """A linear recursive program whose recursive rule carries *width*
    extra EDB atoms; scales the automata constructions for benchmarks.

    ``width=1`` is plain transitive closure with a guard.
    """
    guards = ", ".join(f"g{j}(X, Z)" for j in range(width))
    return parse_program(
        f"""
        p(X, Y) :- {guards}, p(Z, Y).
        p(X, Y) :- e0(X, Y).
        """
    )


def nonlinear_reach(n_base: int = 1) -> Program:
    """A nonlinear (doubling) reachability program: proof trees are
    genuinely branching, exercising the tree pathway."""
    return parse_program(
        """
        p(X, Y) :- p(X, Z), p(Z, Y).
        p(X, Y) :- e(X, Y).
        """
    )


def same_generation() -> Program:
    """The classic same-generation program (nonlinear, unbounded)."""
    return parse_program(
        """
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        """
    )


def widget_supply_chain() -> Program:
    """A domain example for the docs: parts reachability through a
    bill-of-materials, with a bounded 'certified supplier' variant."""
    return parse_program(
        """
        needs(X, Y) :- part(X, Y).
        needs(X, Y) :- part(X, Z), needs(Z, Y).
        """
    )


def widget_certified() -> Program:
    """Bounded variant: a certified assembly depends only on whether
    some certified supplier exists (mirrors Example 1.1's pattern)."""
    return parse_program(
        """
        ok(X, Y) :- direct(X, Y).
        ok(X, Y) :- blanket(X), ok(Z, Y).
        """
    )


def widget_certified_rewriting() -> Program:
    """Nonrecursive rewriting of :func:`widget_certified`."""
    return parse_program(
        """
        ok(X, Y) :- direct(X, Y).
        ok(X, Y) :- blanket(X), direct(Z, Y).
        """
    )
