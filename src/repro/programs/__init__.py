"""The paper's worked example programs and benchmark families."""

from .library import (
    buys_bounded,
    buys_bounded_rewriting,
    buys_recursive,
    buys_recursive_rewriting,
    chain_program,
    dist,
    dist_le,
    equal,
    nonlinear_reach,
    plain_transitive_closure,
    same_generation,
    transitive_closure,
    widget_certified,
    widget_certified_rewriting,
    widget_supply_chain,
    word,
)

__all__ = [
    "buys_bounded",
    "buys_bounded_rewriting",
    "buys_recursive",
    "buys_recursive_rewriting",
    "chain_program",
    "dist",
    "dist_le",
    "equal",
    "nonlinear_reach",
    "plain_transitive_closure",
    "same_generation",
    "transitive_closure",
    "widget_certified",
    "widget_certified_rewriting",
    "widget_supply_chain",
    "word",
]
