"""Expansion trees, proof trees, and strong containment mappings
(Sections 2.3 and 5.1 of the paper)."""

from .expansion import ExpansionTree, expansion_queries, unfolding_trees
from .proof import (
    OccurrenceClasses,
    is_proof_tree,
    proof_tree_to_expansion_tree,
    proof_trees,
    var_space,
    varnum,
)
from .render import render_figure, render_tree
from .strong import (
    brute_force_contained,
    find_strong_containment_mapping,
    has_strong_containment_mapping,
    ucq_covers_proof_tree,
)

__all__ = [
    "ExpansionTree",
    "OccurrenceClasses",
    "brute_force_contained",
    "expansion_queries",
    "find_strong_containment_mapping",
    "has_strong_containment_mapping",
    "is_proof_tree",
    "proof_tree_to_expansion_tree",
    "proof_trees",
    "render_figure",
    "render_tree",
    "ucq_covers_proof_tree",
    "unfolding_trees",
    "var_space",
    "varnum",
]
