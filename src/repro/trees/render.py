"""ASCII rendering of expansion and proof trees (Figures 1 and 2).

The paper's figures show expansion trees with each node displaying its
goal atom and rule instance.  :func:`render_tree` reproduces that
layout as indented text; :func:`render_figure` places two trees side by
side the way Figures 1 and 2 do.
"""

from __future__ import annotations

from typing import List

from .expansion import ExpansionTree


def render_tree(tree: ExpansionTree, show_rules: bool = True) -> str:
    """Indented rendering, one node per line.

    With ``show_rules`` each node shows ``goal  <-  body``, matching
    the labels ``(alpha_x, rho_x)`` of Section 2.3; otherwise only the
    goal atom is shown.
    """
    lines: List[str] = []

    def walk(node: ExpansionTree, prefix: str, is_last: bool, is_root: bool) -> None:
        if show_rules:
            body = ", ".join(str(a) for a in node.rule.body) or "true"
            label = f"{node.atom}  <-  {body}"
        else:
            label = str(node.atom)
        if is_root:
            lines.append(label)
            child_prefix = ""
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(f"{prefix}{connector}{label}")
            child_prefix = prefix + ("    " if is_last else "|   ")
        for index, child in enumerate(node.children):
            walk(child, child_prefix, index == len(node.children) - 1, False)

    walk(tree, "", True, True)
    return "\n".join(lines)


def render_figure(left: ExpansionTree, right: ExpansionTree,
                  left_title: str, right_title: str,
                  show_rules: bool = True, gap: int = 6) -> str:
    """Two trees side by side with captions (Figures 1 and 2 layout)."""
    left_lines = [left_title, "~" * len(left_title)] + render_tree(
        left, show_rules=show_rules
    ).splitlines()
    right_lines = [right_title, "~" * len(right_title)] + render_tree(
        right, show_rules=show_rules
    ).splitlines()
    width = max(len(line) for line in left_lines)
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    return "\n".join(
        f"{l.ljust(width + gap)}{r}".rstrip() for l, r in zip(left_lines, right_lines)
    )
