"""Proof trees (Section 5.1): expansion trees over the bounded
variable set ``var(Pi)``.

``varnum(Pi)`` bounds the number of variables available to labels, so
the set of possible node labels is finite -- the key step that lets
proof trees be recognized by a tree automaton (Proposition 5.9).

Deviation from the paper (documented in DESIGN.md): the paper counts
only variables occurring in IDB atoms of a rule; we count *all*
variables of the rule, so that the renaming in the proof of
Proposition 5.6 can always keep distinct body variables distinct.  This
only enlarges the finite label set.

The module also implements occurrence *connectedness*
(Definition 5.2), distinguished occurrences, and the renaming that
turns a proof tree back into an expansion tree (used in the proof of
Proposition 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..datalog.atoms import Atom
from ..datalog.errors import ValidationError
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Variable, is_variable
from ..datalog.unify import apply_to_atom, apply_to_atoms, unify_tuples
from .expansion import ExpansionTree

NodePath = Tuple[int, ...]  # child indices from the root
Occurrence = Tuple[NodePath, Variable]


def varnum(program: Program) -> int:
    """Twice the maximum number of variables in any rule (see module
    docstring for the deviation from the paper's IDB-only count)."""
    if not program.rules:
        return 0
    return 2 * max(len(rule.variables()) for rule in program.rules)


def var_space(program: Program) -> Tuple[Variable, ...]:
    """The ordered variable set ``var(Pi) = {v1, ..., v_varnum}``.

    The reserved names ``_pv0, _pv1, ...`` cannot clash with parser
    output (predicates cannot start with an underscore in atoms built
    by the library's own constructions).
    """
    return tuple(Variable(f"_pv{i}") for i in range(varnum(program)))


def term_space(program: Program) -> Tuple:
    """``var(Pi)`` together with the program's constants.

    Rule instances in proof trees may instantiate variables either by
    variables of ``var(Pi)`` or by constants occurring in the program
    (Remark 5.14); this is the full instantiation space.
    """
    return var_space(program) + tuple(sorted(program.constants, key=repr))


def is_proof_tree(tree: ExpansionTree, program: Program) -> bool:
    """True when *tree* is an expansion tree over ``var(Pi)``."""
    allowed = set(var_space(program))
    return all(v in allowed for v in tree.variables())


def root_atoms(program: Program, goal: str) -> Iterator[Atom]:
    """All possible proof-tree root atoms ``goal(s)`` with s over the
    term space (the start states of Proposition 5.9)."""
    arity = program.arity[goal]
    for args in product(term_space(program), repeat=arity):
        yield Atom(goal, args)


def proof_trees(program: Program, goal: str, max_height: int,
                root_args: Optional[Tuple] = None) -> Iterator[ExpansionTree]:
    """Enumerate proof trees for *goal* of height <= max_height.

    Every expansion tree whose variables lie in ``var(Pi)`` is
    generated (this is ``ptrees(Q, Pi)`` cut at a height bound).  When
    *root_args* is given, only trees whose root atom is
    ``goal(root_args)`` are produced.  The number of trees grows
    doubly exponentially; intended for brute-force cross-checks on
    small programs only.
    """
    program.require_goal(goal)
    space = term_space(program)
    idb = program.idb_predicates

    def instances(rule: Rule, head_atom: Atom) -> Iterator[Rule]:
        """All instances of *rule* over var(Pi) whose head is head_atom."""
        seed = unify_tuples(rule.head.args, head_atom.args, {})
        if seed is None:
            return
        free = sorted(
            (v for v in rule.variables() if not is_variable_bound(v, seed)),
            key=lambda v: v.name,
        )
        for values in product(space, repeat=len(free)):
            subst = dict(seed)
            subst.update(zip(free, values))
            head = apply_to_atom(rule.head, subst)
            if head != head_atom:
                continue
            yield Rule(head, apply_to_atoms(rule.body, subst))

    def is_variable_bound(variable: Variable, subst) -> bool:
        from ..datalog.unify import resolve

        return resolve(variable, subst) != variable

    def expand(atom: Atom, budget: int) -> Iterator[ExpansionTree]:
        if budget <= 0:
            return
        for rule in program.rules_for(atom.predicate):
            for instance in instances(rule, atom):
                idb_atoms = instance.idb_body_atoms(idb)

                def expand_children(index: int, built: List[ExpansionTree]):
                    if index == len(idb_atoms):
                        yield ExpansionTree(atom, instance, tuple(built))
                        return
                    for child in expand(idb_atoms[index], budget - 1):
                        yield from expand_children(index + 1, built + [child])

                yield from expand_children(0, [])

    arity = program.arity[goal]
    if root_args is not None:
        roots = [Atom(goal, tuple(root_args))]
    else:
        roots = [Atom(goal, args) for args in product(space, repeat=arity)]
    for root in roots:
        yield from expand(root, max_height)


# ----------------------------------------------------------------------
# Connectedness of occurrences (Definition 5.2).
# ----------------------------------------------------------------------

class OccurrenceClasses:
    """The connectedness equivalence relation of a proof tree.

    Occurrences are tracked at ``(node, variable)`` granularity: two
    occurrences of the same variable within one node are always
    connected (the path between them is the single node, which the
    definition exempts as the lowest common ancestor).  A parent-child
    pair of occurrences of v is connected iff v occurs in the child's
    *goal* atom; general connectedness is the transitive closure, which
    coincides with the paper's every-node-on-the-path condition.
    """

    def __init__(self, tree: ExpansionTree):
        self._tree = tree
        self._parent: Dict[Occurrence, Occurrence] = {}
        self._goal_vars: Dict[NodePath, FrozenSet[Variable]] = {}
        self._build(tree, ())

    def _build(self, node: ExpansionTree, path: NodePath) -> None:
        self._goal_vars[path] = node.atom.variable_set()
        for variable in node.rule.variables():
            self._parent.setdefault((path, variable), (path, variable))
        for index, child in enumerate(node.children):
            child_path = path + (index,)
            self._build(child, child_path)
            # Link parent and child occurrences of v when v occurs in
            # the child's goal.
            for variable in child.atom.variable_set():
                if variable in node.rule.variables():
                    self._union((path, variable), (child_path, variable))

    def _find(self, occurrence: Occurrence) -> Occurrence:
        root = occurrence
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[occurrence] != root:
            self._parent[occurrence], occurrence = root, self._parent[occurrence]
        return root

    def _union(self, left: Occurrence, right: Occurrence) -> None:
        left_root, right_root = self._find(left), self._find(right)
        if left_root != right_root:
            self._parent[left_root] = right_root

    def class_of(self, path: NodePath, variable: Variable) -> Occurrence:
        """Canonical representative of the class of (node, variable)."""
        key = (path, variable)
        if key not in self._parent:
            raise ValidationError(f"{variable} does not occur at node {path}")
        return self._find(key)

    def connected(self, left: Occurrence, right: Occurrence) -> bool:
        """Definition 5.2: are the two occurrences connected?"""
        return self._find(left) == self._find(right)

    def is_distinguished(self, path: NodePath, variable: Variable) -> bool:
        """Is the occurrence connected to a root-goal occurrence?"""
        if variable not in self._goal_vars[()]:
            return False
        return self.connected((path, variable), ((), variable))

    def classes(self) -> Dict[Occurrence, List[Occurrence]]:
        """All classes, keyed by representative."""
        result: Dict[Occurrence, List[Occurrence]] = {}
        for occurrence in self._parent:
            result.setdefault(self._find(occurrence), []).append(occurrence)
        return result


def proof_tree_to_expansion_tree(tree: ExpansionTree) -> ExpansionTree:
    """The renaming of Proposition 5.5: every connectedness class gets
    its own variable, yielding a genuine expansion tree whose query is
    equivalent to the proof tree's semantics.

    Root-goal classes keep their original variable (so the root atom,
    and hence the distinguished variables, are unchanged); other
    classes are renamed apart.
    """
    classes = OccurrenceClasses(tree)
    names: Dict[Occurrence, Variable] = {}
    counter = 0
    for representative in sorted(classes.classes(), key=repr):
        _path, variable = representative
        if classes.is_distinguished(*representative):
            names[representative] = variable
        else:
            names[representative] = Variable(f"_e{counter}_{variable.name}")
            counter += 1

    def rename(node: ExpansionTree, path: NodePath) -> ExpansionTree:
        def rename_atom(atom: Atom) -> Atom:
            return Atom(
                atom.predicate,
                tuple(
                    names[classes.class_of(path, t)] if is_variable(t) else t
                    for t in atom.args
                ),
            )

        head = rename_atom(node.rule.head)
        body = tuple(rename_atom(a) for a in node.rule.body)
        children = tuple(
            rename(child, path + (index,)) for index, child in enumerate(node.children)
        )
        return ExpansionTree(head, Rule(head, body), children)

    return rename(tree, ())
