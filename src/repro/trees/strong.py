"""Strong containment mappings (Definition 5.4), by brute force.

A strong containment mapping from a conjunctive query theta to a proof
tree tau is a containment mapping that (a) sends distinguished
occurrences of theta to distinguished occurrences of tau and (b) sends
all occurrences of one theta-variable to *connected* occurrences of one
tau-variable.

This module decides existence by backtracking over the EDB atom
occurrences of the proof tree.  It is exponential and serves as the
ground-truth oracle against which the automaton of Proposition 5.10 is
differentially tested (Corollary 5.7 / Theorem 5.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..cq.query import ConjunctiveQuery
from ..datalog.atoms import Atom
from ..datalog.errors import ValidationError
from ..datalog.program import Program
from ..datalog.terms import Term, Variable, is_variable
from .expansion import ExpansionTree
from .proof import NodePath, OccurrenceClasses


@dataclass(frozen=True)
class _TargetAtom:
    """An EDB atom occurrence: the atom plus the node it lives in."""

    path: NodePath
    atom: Atom


def _edb_targets(tree: ExpansionTree, program: Program) -> List[_TargetAtom]:
    targets: List[_TargetAtom] = []

    def walk(node: ExpansionTree, path: NodePath) -> None:
        for atom in program.edb_atoms_of(node.rule):
            targets.append(_TargetAtom(path, atom))
        for index, child in enumerate(node.children):
            walk(child, path + (index,))

    walk(tree, ())
    return targets


# The image of a theta-variable: either a constant, or a tree variable
# together with its connectedness class representative.
_Image = Tuple[str, object]


def _variable_image(classes: OccurrenceClasses, path: NodePath, term: Term) -> _Image:
    if is_variable(term):
        return ("var", (term, classes.class_of(path, term)))
    return ("const", term)


def find_strong_containment_mapping(
    theta: ConjunctiveQuery, tree: ExpansionTree, program: Program
) -> Optional[Dict[Variable, _Image]]:
    """A strong containment mapping from *theta* to proof tree *tree*,
    or None.  The returned dict maps each theta-variable to its image:
    ``("const", c)`` or ``("var", (v, class_representative))``.
    """
    for atom in theta.body:
        if atom.predicate in program.idb_predicates:
            raise ValidationError(
                f"query atom {atom} uses IDB predicate {atom.predicate!r}; "
                "containment queries must be over EDB predicates"
            )
    classes = OccurrenceClasses(tree)
    root_atom = tree.atom

    # Seed: the head of theta maps positionally onto the root atom; by
    # construction those images are distinguished occurrences.
    if theta.head.arity != root_atom.arity:
        return None
    assignment: Dict[Variable, _Image] = {}
    for term, target in zip(theta.head.args, root_atom.args):
        image = _variable_image(classes, (), target)
        if is_variable(term):
            known = assignment.get(term)
            if known is None:
                assignment[term] = image
            elif known != image:
                return None
        else:
            # A head constant must match the root atom exactly.
            if image != ("const", term):
                return None

    targets = _edb_targets(tree, program)
    by_predicate: Dict[str, List[_TargetAtom]] = {}
    for target in targets:
        by_predicate.setdefault(target.atom.predicate, []).append(target)

    atoms = sorted(theta.body, key=lambda a: len(by_predicate.get(a.predicate, ())))

    def extend(atom: Atom, target: _TargetAtom,
               current: Dict[Variable, _Image]) -> Optional[Dict[Variable, _Image]]:
        if atom.arity != target.atom.arity:
            return None
        extended = dict(current)
        for term, image_term in zip(atom.args, target.atom.args):
            image = _variable_image(classes, target.path, image_term)
            if is_variable(term):
                known = extended.get(term)
                if known is None:
                    extended[term] = image
                elif known != image:
                    return None
            else:
                if image != ("const", term):
                    return None
        return extended

    def search(index: int, current: Dict[Variable, _Image]) -> Optional[Dict[Variable, _Image]]:
        if index == len(atoms):
            return current
        for target in by_predicate.get(atoms[index].predicate, ()):
            extended = extend(atoms[index], target, current)
            if extended is not None:
                result = search(index + 1, extended)
                if result is not None:
                    return result
        return None

    return search(0, assignment)


def has_strong_containment_mapping(theta: ConjunctiveQuery, tree: ExpansionTree,
                                   program: Program) -> bool:
    """Existence test for Definition 5.4."""
    return find_strong_containment_mapping(theta, tree, program) is not None


def ucq_covers_proof_tree(union, tree: ExpansionTree, program: Program) -> bool:
    """Theorem 5.8 condition for one proof tree: some disjunct of the
    union admits a strong containment mapping to *tree*."""
    return any(has_strong_containment_mapping(theta, tree, program) for theta in union)


def brute_force_contained(program: Program, goal: str, union, max_height: int,
                          root_args=None) -> Tuple[bool, Optional[ExpansionTree]]:
    """Check the Theorem 5.8 condition over all proof trees up to a
    height bound.

    Returns ``(ok, witness)`` where *witness* is a proof tree admitting
    no strong mapping (a genuine non-containment certificate), or None
    when all inspected trees are covered.  A True answer is only valid
    up to the height bound -- this is the brute-force oracle used in
    differential tests, not a decision procedure.
    """
    from .proof import proof_trees

    for tree in proof_trees(program, goal, max_height, root_args=root_args):
        if not ucq_covers_proof_tree(union, tree, program):
            return False, tree
    return True, None
