"""Nondeterministic finite automata on words (Section 4.1).

Implements the substrate results quoted by the paper:

* Proposition 4.1 [RS59]: closure under union, intersection (product,
  polynomial) and complement (subset construction, exponential).
* Proposition 4.2 [Jo75, RS59]: nonemptiness via reachability.
* Proposition 4.3 [MS72]: containment (PSPACE-complete); decided here
  both by the classical complement-and-intersect route and by a forward
  antichain search that avoids materializing the subset automaton.

States may be arbitrary hashable objects; symbols likewise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

State = Hashable
Symbol = Hashable


@dataclass(frozen=True)
class NFA:
    """A nondeterministic finite automaton ``(Sigma, S, S0, delta, F)``."""

    alphabet: FrozenSet[Symbol]
    states: FrozenSet[State]
    initial: FrozenSet[State]
    accepting: FrozenSet[State]
    transitions: Dict[Tuple[State, Symbol], FrozenSet[State]]

    @classmethod
    def build(cls, alphabet: Iterable[Symbol], states: Iterable[State],
              initial: Iterable[State], accepting: Iterable[State],
              transitions: Iterable[Tuple[State, Symbol, State]]) -> "NFA":
        """Construct from an edge list ``(state, symbol, successor)``."""
        table: Dict[Tuple[State, Symbol], Set[State]] = {}
        for source, symbol, target in transitions:
            table.setdefault((source, symbol), set()).add(target)
        return cls(
            alphabet=frozenset(alphabet),
            states=frozenset(states),
            initial=frozenset(initial),
            accepting=frozenset(accepting),
            transitions={key: frozenset(targets) for key, targets in table.items()},
        )

    def successors(self, state: State, symbol: Symbol) -> FrozenSet[State]:
        """delta(state, symbol)."""
        return self.transitions.get((state, symbol), frozenset())

    def step(self, subset: FrozenSet[State], symbol: Symbol) -> FrozenSet[State]:
        """Image of a state set under one symbol."""
        result: Set[State] = set()
        for state in subset:
            result.update(self.successors(state, symbol))
        return frozenset(result)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Membership of *word* in L(A) (on-the-fly subset simulation)."""
        current = frozenset(self.initial)
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self.accepting)

    # ------------------------------------------------------------------
    # Proposition 4.2: nonemptiness via graph reachability.
    # ------------------------------------------------------------------

    def reachable_states(self) -> FrozenSet[State]:
        """States reachable from some initial state."""
        seen: Set[State] = set(self.initial)
        frontier: List[State] = list(self.initial)
        while frontier:
            state = frontier.pop()
            for (source, _symbol), targets in self.transitions.items():
                if source != state:
                    continue
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        frontier.append(target)
        return frozenset(seen)

    def is_empty(self) -> bool:
        """True iff L(A) is empty (no accepting state is reachable)."""
        return not (self.reachable_states() & self.accepting)

    def find_word(self) -> Optional[List[Symbol]]:
        """A shortest accepted word, or None when the language is empty."""
        if self.initial & self.accepting:
            return []
        parents: Dict[State, Tuple[Optional[State], Optional[Symbol]]] = {
            state: (None, None) for state in self.initial
        }
        frontier: List[State] = list(self.initial)
        while frontier:
            next_frontier: List[State] = []
            for state in frontier:
                for (source, symbol), targets in self.transitions.items():
                    if source != state:
                        continue
                    for target in targets:
                        if target in parents:
                            continue
                        parents[target] = (state, symbol)
                        if target in self.accepting:
                            word: List[Symbol] = []
                            node: Optional[State] = target
                            while node is not None:
                                parent, via = parents[node]
                                if via is not None:
                                    word.append(via)
                                node = parent
                            word.reverse()
                            return word
                        next_frontier.append(target)
            frontier = next_frontier
        return None

    # ------------------------------------------------------------------
    # Proposition 4.1: boolean operations.
    # ------------------------------------------------------------------

    def union(self, other: "NFA") -> "NFA":
        """L(A) | L(B); states are tagged to keep them disjoint."""
        def tag(which, state):
            return (which, state)

        transitions: Dict[Tuple[State, Symbol], FrozenSet[State]] = {}
        for (source, symbol), targets in self.transitions.items():
            transitions[(tag(0, source), symbol)] = frozenset(tag(0, t) for t in targets)
        for (source, symbol), targets in other.transitions.items():
            transitions[(tag(1, source), symbol)] = frozenset(tag(1, t) for t in targets)
        return NFA(
            alphabet=self.alphabet | other.alphabet,
            states=frozenset(tag(0, s) for s in self.states)
            | frozenset(tag(1, s) for s in other.states),
            initial=frozenset(tag(0, s) for s in self.initial)
            | frozenset(tag(1, s) for s in other.initial),
            accepting=frozenset(tag(0, s) for s in self.accepting)
            | frozenset(tag(1, s) for s in other.accepting),
            transitions=transitions,
        )

    def intersection(self, other: "NFA") -> "NFA":
        """L(A) & L(B) by the product construction (polynomial)."""
        alphabet = self.alphabet & other.alphabet
        transitions: Dict[Tuple[State, Symbol], Set[State]] = {}
        states: Set[State] = set()
        frontier: List[Tuple[State, State]] = []
        initial = frozenset(
            (a, b) for a in self.initial for b in other.initial
        )
        states.update(initial)
        frontier.extend(initial)
        while frontier:
            pair = frontier.pop()
            a, b = pair
            for symbol in alphabet:
                targets = {
                    (ta, tb)
                    for ta in self.successors(a, symbol)
                    for tb in other.successors(b, symbol)
                }
                if not targets:
                    continue
                transitions[(pair, symbol)] = targets
                for target in targets:
                    if target not in states:
                        states.add(target)
                        frontier.append(target)
        return NFA(
            alphabet=alphabet,
            states=frozenset(states),
            initial=initial,
            accepting=frozenset(
                (a, b) for (a, b) in states if a in self.accepting and b in other.accepting
            ),
            transitions={k: frozenset(v) for k, v in transitions.items()},
        )

    def determinize(self) -> "NFA":
        """An equivalent deterministic automaton (subset construction).

        Only subsets reachable from the initial subset are built; the
        empty subset acts as an explicit sink so the result is complete
        over the alphabet (required for complementation).
        """
        start = frozenset(self.initial)
        subsets: Set[FrozenSet[State]] = {start}
        frontier: List[FrozenSet[State]] = [start]
        transitions: Dict[Tuple[State, Symbol], FrozenSet[State]] = {}
        while frontier:
            subset = frontier.pop()
            for symbol in self.alphabet:
                target = self.step(subset, symbol)
                transitions[(subset, symbol)] = frozenset([target])
                if target not in subsets:
                    subsets.add(target)
                    frontier.append(target)
        return NFA(
            alphabet=self.alphabet,
            states=frozenset(subsets),
            initial=frozenset([start]),
            accepting=frozenset(s for s in subsets if s & self.accepting),
            transitions=transitions,
        )

    def complement(self) -> "NFA":
        """Sigma* - L(A) (exponential blowup in the worst case [MF71])."""
        deterministic = self.determinize()
        return NFA(
            alphabet=deterministic.alphabet,
            states=deterministic.states,
            initial=deterministic.initial,
            accepting=deterministic.states - deterministic.accepting,
            transitions=deterministic.transitions,
        )

    def size(self) -> Tuple[int, int]:
        """(number of states, number of transition edges)."""
        edges = sum(len(targets) for targets in self.transitions.values())
        return (len(self.states), edges)


# ----------------------------------------------------------------------
# Proposition 4.3: containment.
# ----------------------------------------------------------------------

def contained_in_via_complement(left: NFA, right: NFA) -> bool:
    """L(left) subseteq L(right) by complementation and product.

    Exercised by the ablation benchmarks; exponential in |right|.
    Symbols of *left* outside *right*'s alphabet witness trivial
    non-containment when usable on an accepting path.
    """
    extra = left.alphabet - right.alphabet
    if extra:
        # Complete right's alphabet: those symbols lead nowhere in right.
        right = NFA(
            alphabet=right.alphabet | extra,
            states=right.states,
            initial=right.initial,
            accepting=right.accepting,
            transitions=right.transitions,
        )
    return left.intersection(right.complement()).is_empty()


def contained_in(left: NFA, right: NFA) -> bool:
    """L(left) subseteq L(right) by forward antichain search.

    Explores pairs ``(p, V)`` where p is a *left* state reachable on
    some word w and V the exact subset of *right* states reachable on
    w.  A pair with p accepting and V disjoint from right's accepting
    states witnesses non-containment.  Pairs whose V is a superset of
    an already-seen V for the same p are pruned (their successors can
    only be larger, hence harder to turn into counterexamples).
    """
    return find_counterexample_word(left, right) is None


def find_counterexample_word(left: NFA, right: NFA) -> Optional[List[Symbol]]:
    """A word in L(left) - L(right), or None when contained."""
    start_v = frozenset(right.initial)
    antichains: Dict[State, List[FrozenSet[State]]] = {}

    def dominated(state: State, subset: FrozenSet[State]) -> bool:
        return any(known <= subset for known in antichains.get(state, ()))

    def insert(state: State, subset: FrozenSet[State]) -> None:
        chain = antichains.setdefault(state, [])
        chain[:] = [known for known in chain if not subset <= known]
        chain.append(subset)

    frontier: List[Tuple[State, FrozenSet[State], List[Symbol]]] = []
    for p in left.initial:
        if p in left.accepting and not (start_v & right.accepting):
            return []
        insert(p, start_v)
        frontier.append((p, start_v, []))

    while frontier:
        p, v, word = frontier.pop(0)
        for symbol in left.alphabet:
            next_v = right.step(v, symbol)
            for q in left.successors(p, symbol):
                if dominated(q, next_v):
                    continue
                next_word = word + [symbol]
                if q in left.accepting and not (next_v & right.accepting):
                    return next_word
                insert(q, next_v)
                frontier.append((q, next_v, next_word))
    return None


def contained_in_union(left: NFA, rights: Sequence[NFA]) -> bool:
    """L(left) subseteq union of the rights (pairwise union, then antichain)."""
    if not rights:
        return left.is_empty()
    combined = rights[0]
    for automaton in rights[1:]:
        combined = combined.union(automaton)
    return contained_in(left, combined)


def equivalent(left: NFA, right: NFA) -> bool:
    """Language equality via mutual containment."""
    return contained_in(left, right) and contained_in(right, left)


def enumerate_words(automaton: NFA, max_length: int,
                    limit: Optional[int] = None) -> List[Tuple[Symbol, ...]]:
    """All accepted words of length <= max_length (up to *limit*).

    Used by tests to compare languages of small automata directly.
    """
    found: List[Tuple[Symbol, ...]] = []
    alphabet = sorted(automaton.alphabet, key=repr)
    frontier: List[Tuple[Tuple[Symbol, ...], FrozenSet[State]]] = [
        ((), frozenset(automaton.initial))
    ]
    while frontier:
        word, subset = frontier.pop(0)
        if subset & automaton.accepting:
            found.append(word)
            if limit is not None and len(found) >= limit:
                return found
        if len(word) >= max_length:
            continue
        for symbol in alphabet:
            target = automaton.step(subset, symbol)
            if target:
                frontier.append((word + (symbol,), target))
    return found
