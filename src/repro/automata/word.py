"""Nondeterministic finite automata on words (Section 4.1).

Implements the substrate results quoted by the paper:

* Proposition 4.1 [RS59]: closure under union, intersection (product,
  polynomial) and complement (subset construction, exponential).
* Proposition 4.2 [Jo75, RS59]: nonemptiness via reachability.
* Proposition 4.3 [MS72]: containment (PSPACE-complete); decided here
  both by the classical complement-and-intersect route and by a forward
  antichain search that avoids materializing the subset automaton.

States may be arbitrary hashable objects; symbols likewise.

The subset-heavy procedures (determinization and the antichain
containment search) run on the bitset kernel of
:mod:`repro.automata.kernel` by default -- right-hand states interned
to dense ids, subsets as int bitmasks, per-(state, symbol) successor
masks memoized -- with the frozenset implementation kept as the
reference path behind :class:`~repro.automata.kernel.KernelConfig`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from ..budget import check_deadline
from .kernel import Interner, KernelConfig, resolve_kernel

State = Hashable
Symbol = Hashable


@dataclass(frozen=True)
class NFA:
    """A nondeterministic finite automaton ``(Sigma, S, S0, delta, F)``."""

    alphabet: FrozenSet[Symbol]
    states: FrozenSet[State]
    initial: FrozenSet[State]
    accepting: FrozenSet[State]
    transitions: Dict[Tuple[State, Symbol], FrozenSet[State]]

    @classmethod
    def build(cls, alphabet: Iterable[Symbol], states: Iterable[State],
              initial: Iterable[State], accepting: Iterable[State],
              transitions: Iterable[Tuple[State, Symbol, State]]) -> "NFA":
        """Construct from an edge list ``(state, symbol, successor)``."""
        table: Dict[Tuple[State, Symbol], Set[State]] = {}
        for source, symbol, target in transitions:
            table.setdefault((source, symbol), set()).add(target)
        return cls(
            alphabet=frozenset(alphabet),
            states=frozenset(states),
            initial=frozenset(initial),
            accepting=frozenset(accepting),
            transitions={key: frozenset(targets) for key, targets in table.items()},
        )

    def successors(self, state: State, symbol: Symbol) -> FrozenSet[State]:
        """delta(state, symbol)."""
        return self.transitions.get((state, symbol), frozenset())

    def step(self, subset: FrozenSet[State], symbol: Symbol) -> FrozenSet[State]:
        """Image of a state set under one symbol."""
        result: Set[State] = set()
        for state in subset:
            result.update(self.successors(state, symbol))
        return frozenset(result)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Membership of *word* in L(A) (on-the-fly subset simulation)."""
        current = frozenset(self.initial)
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self.accepting)

    # ------------------------------------------------------------------
    # Proposition 4.2: nonemptiness via graph reachability.
    # ------------------------------------------------------------------

    def reachable_states(self) -> FrozenSet[State]:
        """States reachable from some initial state."""
        seen: Set[State] = set(self.initial)
        frontier: List[State] = list(self.initial)
        while frontier:
            check_deadline()
            state = frontier.pop()
            for (source, _symbol), targets in self.transitions.items():
                if source != state:
                    continue
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        frontier.append(target)
        return frozenset(seen)

    def is_empty(self) -> bool:
        """True iff L(A) is empty (no accepting state is reachable)."""
        return not (self.reachable_states() & self.accepting)

    def find_word(self) -> Optional[List[Symbol]]:
        """A shortest accepted word, or None when the language is empty."""
        if self.initial & self.accepting:
            return []
        parents: Dict[State, Tuple[Optional[State], Optional[Symbol]]] = {
            state: (None, None) for state in self.initial
        }
        frontier: List[State] = list(self.initial)
        while frontier:
            check_deadline()
            next_frontier: List[State] = []
            for state in frontier:
                for (source, symbol), targets in self.transitions.items():
                    if source != state:
                        continue
                    for target in targets:
                        if target in parents:
                            continue
                        parents[target] = (state, symbol)
                        if target in self.accepting:
                            word: List[Symbol] = []
                            node: Optional[State] = target
                            while node is not None:
                                parent, via = parents[node]
                                if via is not None:
                                    word.append(via)
                                node = parent
                            word.reverse()
                            return word
                        next_frontier.append(target)
            frontier = next_frontier
        return None

    # ------------------------------------------------------------------
    # Proposition 4.1: boolean operations.
    # ------------------------------------------------------------------

    def union(self, other: "NFA") -> "NFA":
        """L(A) | L(B); states are tagged to keep them disjoint."""
        def tag(which, state):
            return (which, state)

        transitions: Dict[Tuple[State, Symbol], FrozenSet[State]] = {}
        for (source, symbol), targets in self.transitions.items():
            transitions[(tag(0, source), symbol)] = frozenset(tag(0, t) for t in targets)
        for (source, symbol), targets in other.transitions.items():
            transitions[(tag(1, source), symbol)] = frozenset(tag(1, t) for t in targets)
        return NFA(
            alphabet=self.alphabet | other.alphabet,
            states=frozenset(tag(0, s) for s in self.states)
            | frozenset(tag(1, s) for s in other.states),
            initial=frozenset(tag(0, s) for s in self.initial)
            | frozenset(tag(1, s) for s in other.initial),
            accepting=frozenset(tag(0, s) for s in self.accepting)
            | frozenset(tag(1, s) for s in other.accepting),
            transitions=transitions,
        )

    def intersection(self, other: "NFA") -> "NFA":
        """L(A) & L(B) by the product construction (polynomial)."""
        alphabet = self.alphabet & other.alphabet
        transitions: Dict[Tuple[State, Symbol], Set[State]] = {}
        states: Set[State] = set()
        frontier: List[Tuple[State, State]] = []
        initial = frozenset(
            (a, b) for a in self.initial for b in other.initial
        )
        states.update(initial)
        frontier.extend(initial)
        while frontier:
            check_deadline()
            pair = frontier.pop()
            a, b = pair
            for symbol in alphabet:
                targets = {
                    (ta, tb)
                    for ta in self.successors(a, symbol)
                    for tb in other.successors(b, symbol)
                }
                if not targets:
                    continue
                transitions[(pair, symbol)] = targets
                for target in targets:
                    if target not in states:
                        states.add(target)
                        frontier.append(target)
        return NFA(
            alphabet=alphabet,
            states=frozenset(states),
            initial=initial,
            accepting=frozenset(
                (a, b) for (a, b) in states if a in self.accepting and b in other.accepting
            ),
            transitions={k: frozenset(v) for k, v in transitions.items()},
        )

    def successor_masks(self, interner: Interner) -> Dict[Tuple[int, Symbol], int]:
        """``(state id, symbol) -> successor bitmask`` over *interner*
        (which is extended with any states it has not seen)."""
        table: Dict[Tuple[int, Symbol], int] = {}
        for (source, symbol), targets in self.transitions.items():
            table[(interner.intern(source), symbol)] = interner.mask_of(targets)
        return table

    def determinize(self, kernel: Optional[KernelConfig] = None) -> "NFA":
        """An equivalent deterministic automaton (subset construction).

        Only subsets reachable from the initial subset are built; the
        empty subset acts as an explicit sink so the result is complete
        over the alphabet (required for complementation).  The bitset
        kernel runs the construction on int masks and thaws them to the
        public frozenset states at the end.
        """
        config = resolve_kernel(kernel)
        if config.bitset:
            return self._determinize_bitset()
        start = frozenset(self.initial)
        subsets: Set[FrozenSet[State]] = {start}
        frontier: List[FrozenSet[State]] = [start]
        transitions: Dict[Tuple[State, Symbol], FrozenSet[State]] = {}
        while frontier:
            check_deadline()
            subset = frontier.pop()
            for symbol in self.alphabet:
                target = self.step(subset, symbol)
                transitions[(subset, symbol)] = frozenset([target])
                if target not in subsets:
                    subsets.add(target)
                    frontier.append(target)
        return NFA(
            alphabet=self.alphabet,
            states=frozenset(subsets),
            initial=frozenset([start]),
            accepting=frozenset(s for s in subsets if s & self.accepting),
            transitions=transitions,
        )

    def _determinize_bitset(self) -> "NFA":
        interner = Interner()
        successors = self.successor_masks(interner)
        start = interner.mask_of(self.initial)
        accepting_mask = interner.mask_of(self.accepting)
        subsets: Set[int] = {start}
        frontier: List[int] = [start]
        mask_transitions: Dict[Tuple[int, Symbol], int] = {}
        while frontier:
            check_deadline()
            mask = frontier.pop()
            remaining = mask
            images: Dict[Symbol, int] = {symbol: 0 for symbol in self.alphabet}
            while remaining:
                low = remaining & -remaining
                sid = low.bit_length() - 1
                remaining ^= low
                for symbol in self.alphabet:
                    succ = successors.get((sid, symbol))
                    if succ:
                        images[symbol] |= succ
            for symbol, target in images.items():
                mask_transitions[(mask, symbol)] = target
                if target not in subsets:
                    subsets.add(target)
                    frontier.append(target)
        thawed: Dict[int, FrozenSet[State]] = {
            mask: interner.subset_of(mask) for mask in subsets
        }
        return NFA(
            alphabet=self.alphabet,
            states=frozenset(thawed.values()),
            initial=frozenset([thawed[start]]),
            accepting=frozenset(
                thawed[mask] for mask in subsets if mask & accepting_mask
            ),
            transitions={
                (thawed[mask], symbol): frozenset([thawed[target]])
                for (mask, symbol), target in mask_transitions.items()
            },
        )

    def complement(self) -> "NFA":
        """Sigma* - L(A) (exponential blowup in the worst case [MF71])."""
        deterministic = self.determinize()
        return NFA(
            alphabet=deterministic.alphabet,
            states=deterministic.states,
            initial=deterministic.initial,
            accepting=deterministic.states - deterministic.accepting,
            transitions=deterministic.transitions,
        )

    def size(self) -> Tuple[int, int]:
        """(number of states, number of transition edges)."""
        edges = sum(len(targets) for targets in self.transitions.values())
        return (len(self.states), edges)


# ----------------------------------------------------------------------
# Proposition 4.3: containment.
# ----------------------------------------------------------------------

def contained_in_via_complement(left: NFA, right: NFA) -> bool:
    """L(left) subseteq L(right) by complementation and product.

    Exercised by the ablation benchmarks; exponential in |right|.
    Symbols of *left* outside *right*'s alphabet witness trivial
    non-containment when usable on an accepting path.
    """
    extra = left.alphabet - right.alphabet
    if extra:
        # Complete right's alphabet: those symbols lead nowhere in right.
        right = NFA(
            alphabet=right.alphabet | extra,
            states=right.states,
            initial=right.initial,
            accepting=right.accepting,
            transitions=right.transitions,
        )
    return left.intersection(right.complement()).is_empty()


def contained_in(left: NFA, right: NFA,
                 kernel: Optional[KernelConfig] = None) -> bool:
    """L(left) subseteq L(right) by forward antichain search.

    Explores pairs ``(p, V)`` where p is a *left* state reachable on
    some word w and V the exact subset of *right* states reachable on
    w.  A pair with p accepting and V disjoint from right's accepting
    states witnesses non-containment.  Pairs whose V is a superset of
    an already-seen V for the same p are pruned (their successors can
    only be larger, hence harder to turn into counterexamples).
    """
    return find_counterexample_word(left, right, kernel=kernel) is None


def find_counterexample_word(left: NFA, right: NFA,
                             kernel: Optional[KernelConfig] = None) -> Optional[List[Symbol]]:
    """A word in L(left) - L(right), or None when contained."""
    config = resolve_kernel(kernel)
    if config.bitset:
        return _find_counterexample_word_bitset(left, right, config.memoize)
    return _find_counterexample_word_reference(left, right)


def _find_counterexample_word_bitset(left: NFA, right: NFA,
                                     memoize: bool) -> Optional[List[Symbol]]:
    interner = Interner()
    successors = right.successor_masks(interner)
    start_v = interner.mask_of(right.initial)
    accepting_mask = interner.mask_of(right.accepting)
    left_accepting = left.accepting

    step_cache: Dict[Tuple[int, Symbol], int] = {}

    def step(mask: int, symbol: Symbol) -> int:
        key = (mask, symbol)
        if memoize:
            cached = step_cache.get(key)
            if cached is not None:
                return cached
        image = 0
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            succ = successors.get((low.bit_length() - 1, symbol))
            if succ:
                image |= succ
        if memoize:
            step_cache[key] = image
        return image

    antichains: Dict[State, List[int]] = {}

    def dominated(state: State, mask: int) -> bool:
        return any(known & mask == known for known in antichains.get(state, ()))

    def insert(state: State, mask: int) -> None:
        chain = antichains.setdefault(state, [])
        chain[:] = [known for known in chain if mask & known != mask]
        chain.append(mask)

    frontier: deque = deque()
    for p in left.initial:
        if p in left_accepting and not (start_v & accepting_mask):
            return []
        insert(p, start_v)
        frontier.append((p, start_v, []))

    while frontier:
        check_deadline()
        p, v, word = frontier.popleft()
        for symbol in left.alphabet:
            next_v = step(v, symbol)
            for q in left.successors(p, symbol):
                if dominated(q, next_v):
                    continue
                next_word = word + [symbol]
                if q in left_accepting and not (next_v & accepting_mask):
                    return next_word
                insert(q, next_v)
                frontier.append((q, next_v, next_word))
    return None


def _find_counterexample_word_reference(left: NFA, right: NFA) -> Optional[List[Symbol]]:
    start_v = frozenset(right.initial)
    antichains: Dict[State, List[FrozenSet[State]]] = {}

    def dominated(state: State, subset: FrozenSet[State]) -> bool:
        return any(known <= subset for known in antichains.get(state, ()))

    def insert(state: State, subset: FrozenSet[State]) -> None:
        chain = antichains.setdefault(state, [])
        chain[:] = [known for known in chain if not subset <= known]
        chain.append(subset)

    frontier: List[Tuple[State, FrozenSet[State], List[Symbol]]] = []
    for p in left.initial:
        if p in left.accepting and not (start_v & right.accepting):
            return []
        insert(p, start_v)
        frontier.append((p, start_v, []))

    while frontier:
        check_deadline()
        p, v, word = frontier.pop(0)
        for symbol in left.alphabet:
            next_v = right.step(v, symbol)
            for q in left.successors(p, symbol):
                if dominated(q, next_v):
                    continue
                next_word = word + [symbol]
                if q in left.accepting and not (next_v & right.accepting):
                    return next_word
                insert(q, next_v)
                frontier.append((q, next_v, next_word))
    return None


def contained_in_union(left: NFA, rights: Sequence[NFA],
                       kernel: Optional[KernelConfig] = None) -> bool:
    """L(left) subseteq union of the rights (pairwise union, then antichain)."""
    if not rights:
        return left.is_empty()
    combined = rights[0]
    for automaton in rights[1:]:
        combined = combined.union(automaton)
    return contained_in(left, combined, kernel=kernel)


def equivalent(left: NFA, right: NFA,
               kernel: Optional[KernelConfig] = None) -> bool:
    """Language equality via mutual containment."""
    return (contained_in(left, right, kernel=kernel)
            and contained_in(right, left, kernel=kernel))


def enumerate_words(automaton: NFA, max_length: int,
                    limit: Optional[int] = None) -> List[Tuple[Symbol, ...]]:
    """All accepted words of length <= max_length (up to *limit*).

    Used by tests to compare languages of small automata directly.
    """
    found: List[Tuple[Symbol, ...]] = []
    alphabet = sorted(automaton.alphabet, key=repr)
    frontier: List[Tuple[Tuple[Symbol, ...], FrozenSet[State]]] = [
        ((), frozenset(automaton.initial))
    ]
    while frontier:
        check_deadline()
        word, subset = frontier.pop(0)
        if subset & automaton.accepting:
            found.append(word)
            if limit is not None and len(found) >= limit:
                return found
        if len(word) >= max_length:
            continue
        for symbol in alphabet:
            target = automaton.step(subset, symbol)
            if target:
                frontier.append((word + (symbol,), target))
    return found
