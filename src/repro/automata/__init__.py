"""Automata substrate (Section 4 of the paper).

Word automata (Propositions 4.1-4.3) and top-down tree automata
(Propositions 4.4-4.6) with boolean operations, emptiness, and
containment; containment is decided by antichain searches that avoid
materializing the exponential subset constructions.
"""

from .kernel import (
    BitAntichain,
    Interner,
    KernelConfig,
    clear_registered_caches,
    default_kernel,
    register_shared_cache,
    registered_caches,
    resolve_kernel,
    set_default_kernel,
)
from .word import NFA
from .word import contained_in as nfa_contained_in
from .word import contained_in_union as nfa_contained_in_union
from .word import contained_in_via_complement as nfa_contained_in_via_complement
from .word import enumerate_words, find_counterexample_word
from .word import equivalent as nfa_equivalent
from .tree import (
    BottomUpDeterministic,
    LabeledTree,
    TreeAutomaton,
    complement,
    find_counterexample_tree,
    path_tree,
)
from .tree import contained_in as tree_contained_in
from .tree import contained_in_union as tree_contained_in_union
from .tree import equivalent as tree_equivalent

__all__ = [
    "BitAntichain",
    "BottomUpDeterministic",
    "Interner",
    "KernelConfig",
    "LabeledTree",
    "NFA",
    "TreeAutomaton",
    "clear_registered_caches",
    "complement",
    "default_kernel",
    "enumerate_words",
    "find_counterexample_tree",
    "find_counterexample_word",
    "nfa_contained_in",
    "nfa_contained_in_union",
    "nfa_contained_in_via_complement",
    "nfa_equivalent",
    "path_tree",
    "register_shared_cache",
    "registered_caches",
    "resolve_kernel",
    "set_default_kernel",
    "tree_contained_in",
    "tree_contained_in_union",
    "tree_equivalent",
]
