"""The bitset automaton kernel: interned states and bitmask subsets.

Every decision procedure in this codebase -- tree-automaton
containment (Proposition 4.6), word-automaton containment
(Proposition 4.3), the proof-tree profile fixpoint (Theorem 5.12) and
the linear word pathway -- spends its time manipulating *subsets of a
finite state space*: profiles, antichain entries, subset-construction
states.  The seed implementation represents those subsets as
``frozenset``s of hashable state objects, so every domination check
hashes and compares whole state objects.

This module provides the shared kernel that makes those loops cheap:

* :class:`Interner` assigns each state a dense integer id on first
  sight, so a subset becomes a Python ``int`` bitmask and subset
  inclusion becomes ``small & large == small`` -- one machine-word
  operation per 64 states instead of a per-element hash probe;
* :class:`BitAntichain` keeps per-key antichains of minimal bitmasks
  with arbitrary witness payloads (the pruning structure of the
  containment searches);
* :class:`KernelConfig` is the knob (mirroring
  :class:`~repro.datalog.engine.EngineConfig`) that selects between
  the bitset kernel and the original frozenset *reference* path, which
  is kept verbatim so differential tests can assert bit-identical
  verdicts.

The kernel is purely representational: both backends explore the same
search space in the same order and return the same results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from ..context import activate as _activate_session
from ..context import current_session as _current_session
from ..datalog.errors import ValidationError

_BACKENDS = ("bitset", "frozenset")


@dataclass(frozen=True)
class KernelConfig:
    """Knobs of the automaton kernel.

    ``backend``
        ``"bitset"`` (interned states, bitmask subsets, memoized
        transition lookups -- the default) or ``"frozenset"`` (the
        original reference implementation, kept for differential
        testing and ablation).
    ``memoize``
        Bitset-path toggle: cache per-``(state, label)`` successor
        masks and per-``(label, child profiles)`` profile images.
        Ignored by the frozenset reference path.
    """

    backend: str = "bitset"
    memoize: bool = True

    def __post_init__(self):
        if self.backend not in _BACKENDS:
            raise ValidationError(
                f"unknown kernel backend {self.backend!r}; "
                f"expected one of {_BACKENDS}"
            )

    @property
    def bitset(self) -> bool:
        return self.backend == "bitset"


#: Pre-session fallback, only consulted while the package is still
#: importing (before ``repro.session`` registers the default-session
#: factory with ``repro.context``).
_SEED_KERNEL = KernelConfig()


def default_kernel() -> KernelConfig:
    """The ambient default kernel configuration.

    Resolution goes through the ambient :class:`~repro.session.Session`
    (a :class:`contextvars.ContextVar`), so the "default" is per-thread
    and per-async-task: two threads configured differently no longer
    race on a module global.
    """
    session = _current_session()
    return session.kernel if session is not None else _SEED_KERNEL


def set_default_kernel(config: KernelConfig) -> KernelConfig:
    """Replace the ambient default kernel; returns the previous one.

    Implemented by swapping the ambient session for a derived one
    (same engine, same caches, new kernel) in the ContextVar, so the
    change is scoped to the current thread/context rather than mutating
    process-global state.
    """
    previous = default_kernel()
    session = _current_session()
    if session is None:
        global _SEED_KERNEL
        _SEED_KERNEL = config
    else:
        _activate_session(session.with_config(kernel=config))
    return previous


def resolve_kernel(kernel: Optional[KernelConfig]) -> KernelConfig:
    """An explicit config wins; None means the ambient default."""
    return kernel if kernel is not None else default_kernel()


# ----------------------------------------------------------------------
# Shared-cache lifecycle.
# ----------------------------------------------------------------------
#
# Several layers keep process-wide memoization keyed on immutable
# inputs: the rule-instance enumerator and the proof-tree / query
# automata in ``repro.core``, and the default engine's compiled plan
# cache in ``repro.datalog``.  Long-running services and benchmark
# harnesses need one switch that returns the process to a cold state
# (fair cold-start timings, memory valve), without this module knowing
# every cache's home.  Modules register a clearer at import time;
# ``clear_registered_caches`` is the single lifecycle hook.

_CACHE_CLEARERS: List[Tuple[str, object]] = []


def register_shared_cache(clear, name: Optional[str] = None):
    """Register *clear* (a zero-argument callable) as a process-wide
    cache clearer.  Returns *clear* so it can be used as a decorator.
    Registration is idempotent per name (bound methods like
    ``lru_cache(...).cache_clear`` are fresh objects on every attribute
    access, so identity cannot key the registry)."""
    label = name or getattr(clear, "__qualname__", repr(clear))
    if all(existing != label for existing, _ in _CACHE_CLEARERS):
        _CACHE_CLEARERS.append((label, clear))
    return clear


def registered_caches() -> Tuple[str, ...]:
    """Names of the registered clearers (diagnostics / docs)."""
    return tuple(label for label, _ in _CACHE_CLEARERS)


def clear_registered_caches() -> None:
    """Run every registered clearer: the process-wide cold-start hook.

    ``repro.core.clear_shared_caches`` delegates here, so either entry
    point drops *all* shared caches (automata, enumerator, compiled
    plans), not just the ones its own layer owns.
    """
    for _, clear in _CACHE_CLEARERS:
        clear()


def thaw_witness(node: Tuple, build) -> object:
    """Materialize a lazy ``(tag, children)`` witness DAG bottom-up.

    The containment searches keep witnesses as plain 2-tuples during
    the search and only build real tree nodes -- via ``build(tag,
    children)`` -- for a returned counterexample.  The walk is
    iterative (witnesses can be deeper than the recursion limit) and
    memoized on node identity, so shared sub-witnesses become shared
    subtrees.
    """
    memo: Dict[int, object] = {}
    stack: List[Tuple] = [node]
    while stack:
        current = stack[-1]
        if id(current) in memo:
            stack.pop()
            continue
        tag, children = current
        pending = [child for child in children if id(child) not in memo]
        if pending:
            stack.extend(pending)
            continue
        memo[id(current)] = build(
            tag, tuple(memo[id(child)] for child in children)
        )
        stack.pop()
    return memo[id(node)]


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of *mask*, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class Interner:
    """Dense integer ids for hashable objects, with bitmask helpers.

    Ids are assigned in first-intern order and never change, so a
    bitmask built at any point stays valid as more objects are
    interned (bits only ever get *added* to the universe).
    """

    __slots__ = ("_ids", "_objects")

    def __init__(self, items: Iterable[Hashable] = ()):
        self._ids: Dict[Hashable, int] = {}
        self._objects: List[Hashable] = []
        for item in items:
            self.intern(item)

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self._ids

    def intern(self, obj: Hashable) -> int:
        """The id of *obj*, assigning the next free id on first sight."""
        ident = self._ids.get(obj)
        if ident is None:
            ident = len(self._objects)
            self._ids[obj] = ident
            self._objects.append(obj)
        return ident

    def id_of(self, obj: Hashable) -> int:
        """The id of an already-interned object (KeyError otherwise)."""
        return self._ids[obj]

    def object_of(self, ident: int) -> Hashable:
        return self._objects[ident]

    def mask_of(self, objs: Iterable[Hashable]) -> int:
        """The bitmask of a collection of objects (interning them)."""
        mask = 0
        for obj in objs:
            mask |= 1 << self.intern(obj)
        return mask

    def members(self, mask: int) -> List[Hashable]:
        """The objects whose bits are set in *mask*, by ascending id."""
        objects = self._objects
        return [objects[i] for i in iter_bits(mask)]

    def subset_of(self, mask: int) -> frozenset:
        """The frozenset view of a bitmask (for results / reference)."""
        return frozenset(self.members(mask))


class BitAntichain:
    """Per-key antichains of minimal bitmasks with witness payloads.

    The bitset counterpart of the frozenset antichains used by the
    containment searches: an entry ``(mask, payload)`` is kept only
    while no other entry's mask is a subset of it.  Subset tests are
    single ``&``/``==`` operations on ints.
    """

    __slots__ = ("_chains",)

    def __init__(self):
        self._chains: Dict[Hashable, List[Tuple[int, object]]] = {}

    def dominated(self, key: Hashable, mask: int) -> bool:
        """Is some kept mask for *key* a subset of *mask*?"""
        return any(
            known & mask == known for known, _ in self._chains.get(key, ())
        )

    def insert(self, key: Hashable, mask: int, payload: object) -> bool:
        """Insert unless dominated; evict entries the new mask
        dominates.  Returns True when the entry was genuinely new."""
        chain = self._chains.get(key)
        if chain is None:
            self._chains[key] = [(mask, payload)]
            return True
        for known, _ in chain:
            if known & mask == known:
                return False
        chain[:] = [
            (known, p) for known, p in chain if mask & known != mask
        ]
        chain.append((mask, payload))
        return True

    def append(self, key: Hashable, mask: int, payload: object) -> None:
        """Append without domination pruning (exact / ablation mode --
        the caller handles its own dedup)."""
        self._chains.setdefault(key, []).append((mask, payload))

    def items(self, key: Hashable) -> List[Tuple[int, object]]:
        return list(self._chains.get(key, ()))

    def keys(self):
        return list(self._chains.keys())

    def total(self) -> int:
        return sum(len(chain) for chain in self._chains.values())
