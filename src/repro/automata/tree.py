"""Nondeterministic top-down automata on finite labeled trees (Section 4.2).

The definitions follow the paper: a tree automaton is a tuple
``(Sigma, S, S0, delta, F)`` where ``delta(s, a)`` is a finite set of
state tuples.  A run labels the root with an initial state and obeys
``delta`` downward; it is accepting when every leaf x admits a tuple in
``delta(r(x), label(x))`` all of whose states are accepting.

Internally the automata are *normalized* to the empty-tuple convention:
a leaf labeled ``a`` in state ``s`` is accepted iff ``() in
delta(s, a)``.  The paper-style constructor with accepting states F is
provided and normalization inserts ``()`` wherever a tuple over F
exists.  Normalization makes the product construction and the
containment search uniform.

Substrate results implemented here:

* Proposition 4.4 [Cos72]: union and intersection (polynomial),
  complement (bottom-up subset determinization, exponential).
* Proposition 4.5 [Do70, TW68]: nonemptiness by the bottom-up
  ``accept(A)`` fixpoint, in time linear in the transition table.
* Proposition 4.6 [Se90] workload: containment, decided by a bottom-up
  *profile* search with antichain pruning (exponential only in the
  right-hand automaton, and only on demand).

The hot loops (productivity fixpoint, profile propagation, antichain
subsumption) run on the bitset kernel of :mod:`repro.automata.kernel`
by default: states are interned to dense ids and profiles are int
bitmasks, so subset checks are single word operations.  The original
frozenset implementation is kept as the reference path, selectable via
:class:`~repro.automata.kernel.KernelConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from ..budget import check_deadline
from ..datalog.errors import ValidationError
from .kernel import BitAntichain, Interner, KernelConfig, resolve_kernel, thaw_witness

State = Hashable
Symbol = Hashable
TransitionTable = Dict[Tuple[State, Symbol], FrozenSet[Tuple[State, ...]]]


@dataclass(frozen=True)
class LabeledTree:
    """A finite ordered tree with a label at every node."""

    label: Symbol
    children: Tuple["LabeledTree", ...] = ()

    def __post_init__(self):
        if not isinstance(self.children, tuple):
            object.__setattr__(self, "children", tuple(self.children))

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def size(self) -> int:
        """Number of nodes (iterative: witness trees can be very deep)."""
        count = 0
        stack: List[LabeledTree] = [self]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

    def depth(self) -> int:
        """Number of nodes on the longest root-to-leaf path."""
        deepest = 0
        stack: List[Tuple[LabeledTree, int]] = [(self, 1)]
        while stack:
            node, level = stack.pop()
            if level > deepest:
                deepest = level
            for child in node.children:
                stack.append((child, level + 1))
        return deepest

    def nodes(self):
        """Preorder traversal (iterative, recursion-safe)."""
        stack: List[LabeledTree] = [self]
        while stack:
            node = stack.pop()
            yield node
            for child in reversed(node.children):
                stack.append(child)

    def __str__(self):
        if not self.children:
            return str(self.label)
        inner = ", ".join(str(child) for child in self.children)
        return f"{self.label}[{inner}]"


def path_tree(labels: Sequence[Symbol]) -> LabeledTree:
    """The unary tree (word) with the given root-to-leaf labels."""
    if not labels:
        raise ValidationError("a tree needs at least one node")
    node = LabeledTree(labels[-1])
    for label in reversed(labels[:-1]):
        node = LabeledTree(label, (node,))
    return node


@dataclass(frozen=True)
class TreeAutomaton:
    """A normalized top-down nondeterministic tree automaton.

    ``transitions[(s, a)]`` is the set of child-state tuples available
    when reading label ``a`` in state ``s``; the empty tuple means "s
    accepts a leaf labeled a".

    Instances are frozen; derived structures (the by-symbol edge index
    and the productive-state set) are computed once and cached on the
    instance.
    """

    alphabet: FrozenSet[Symbol]
    states: FrozenSet[State]
    initial: FrozenSet[State]
    transitions: TransitionTable

    @classmethod
    def build(cls, alphabet: Iterable[Symbol], states: Iterable[State],
              initial: Iterable[State],
              transitions: Iterable[Tuple[State, Symbol, Tuple[State, ...]]],
              accepting: Iterable[State] = ()) -> "TreeAutomaton":
        """Construct from an edge list, normalizing the paper-style
        accepting-state convention into empty-tuple leaf transitions."""
        accepting = frozenset(accepting)
        table: Dict[Tuple[State, Symbol], Set[Tuple[State, ...]]] = {}
        for source, symbol, tuple_ in transitions:
            table.setdefault((source, symbol), set()).add(tuple(tuple_))
        if accepting:
            for key, tuples in list(table.items()):
                if any(tuple_ and set(tuple_) <= accepting for tuple_ in tuples):
                    tuples.add(())
        return cls(
            alphabet=frozenset(alphabet),
            states=frozenset(states),
            initial=frozenset(initial),
            transitions={key: frozenset(v) for key, v in table.items()},
        )

    def tuples(self, state: State, symbol: Symbol) -> FrozenSet[Tuple[State, ...]]:
        """delta(state, symbol)."""
        return self.transitions.get((state, symbol), frozenset())

    def edges_by_symbol(self) -> Dict[Symbol, List[Tuple[State, Tuple[State, ...]]]]:
        """``symbol -> [(state, child tuple)]`` index, cached on the
        (frozen) instance; preserves the transition-table iteration
        order so all pathways explore edges identically."""
        cached = self.__dict__.get("_by_symbol")
        if cached is not None:
            return cached
        by_symbol: Dict[Symbol, List[Tuple[State, Tuple[State, ...]]]] = {}
        for (state, symbol), tuples in self.transitions.items():
            bucket = by_symbol.setdefault(symbol, [])
            for tuple_ in tuples:
                bucket.append((state, tuple_))
        object.__setattr__(self, "_by_symbol", by_symbol)
        return by_symbol

    # ------------------------------------------------------------------
    # Acceptance.
    # ------------------------------------------------------------------

    def _accepting_states(self, tree: LabeledTree) -> FrozenSet[State]:
        """States from which the automaton accepts *tree*.

        Bottom-up, iterative (witness trees from the containment search
        can exceed the recursion limit), memoized over shared subtrees.
        """
        by_symbol = self.edges_by_symbol()
        # Memoized post-order walk (same discipline as thaw_witness):
        # witness trees share subtrees -- the searches below reuse chain
        # entries as children -- so each node is evaluated exactly once.
        memo: Dict[int, FrozenSet[State]] = {}
        stack: List[LabeledTree] = [tree]
        while stack:
            node = stack[-1]
            key = id(node)
            if key in memo:
                stack.pop()
                continue
            pending = [c for c in node.children if id(c) not in memo]
            if pending:
                stack.extend(pending)
                continue
            child_sets = [memo[id(child)] for child in node.children]
            arity = len(child_sets)
            result: Set[State] = set()
            for state, tuple_ in by_symbol.get(node.label, ()):
                if state in result or len(tuple_) != arity:
                    continue
                if all(q in child_set for q, child_set in zip(tuple_, child_sets)):
                    result.add(state)
            memo[key] = frozenset(result)
            stack.pop()
        return memo[id(tree)]

    def accepts(self, tree: LabeledTree) -> bool:
        """Membership of *tree* in T(A)."""
        return bool(self._accepting_states(tree) & self.initial)

    # ------------------------------------------------------------------
    # Proposition 4.5: nonemptiness.
    # ------------------------------------------------------------------

    def productive_states(self, kernel: Optional[KernelConfig] = None) -> FrozenSet[State]:
        """States that root an accepting run on some tree (the paper's
        ``accept(A)`` set), computed as a bottom-up fixpoint.

        Cached on the (frozen) automaton: repeated ``is_empty()`` /
        ``find_tree()`` calls reuse the first computation.  The fixpoint
        runs on interned state ids and an int bitmask under the bitset
        kernel (default), and on the original frozenset loop under the
        reference backend (both produce the same set, so the cache is
        backend-agnostic).
        """
        cached = self.__dict__.get("_productive")
        if cached is not None:
            return cached
        if not resolve_kernel(kernel).bitset:
            productive_ref: Set[State] = set()
            changed_ref = True
            while changed_ref:
                check_deadline()
                changed_ref = False
                for (state, _symbol), tuples in self.transitions.items():
                    if state in productive_ref:
                        continue
                    for tuple_ in tuples:
                        if all(q in productive_ref for q in tuple_):
                            productive_ref.add(state)
                            changed_ref = True
                            break
            result = frozenset(productive_ref)
            object.__setattr__(self, "_productive", result)
            return result
        interner = Interner()
        edges: List[Tuple[int, int]] = []  # (state id, needed-children mask)
        for (state, _symbol), tuples in self.transitions.items():
            sid = interner.intern(state)
            for tuple_ in tuples:
                need = 0
                for q in tuple_:
                    need |= 1 << interner.intern(q)
                edges.append((sid, need))
        productive = 0
        changed = True
        while changed:
            check_deadline()
            changed = False
            remaining: List[Tuple[int, int]] = []
            for sid, need in edges:
                if (productive >> sid) & 1:
                    continue
                if need & productive == need:
                    productive |= 1 << sid
                    changed = True
                else:
                    remaining.append((sid, need))
            edges = remaining
        result = interner.subset_of(productive)
        object.__setattr__(self, "_productive", result)
        return result

    def is_empty(self, kernel: Optional[KernelConfig] = None) -> bool:
        """True iff T(A) is empty (Proposition 4.5, polynomial time)."""
        return not (self.productive_states(kernel=kernel) & self.initial)

    def find_tree(self, kernel: Optional[KernelConfig] = None) -> Optional[LabeledTree]:
        """A smallest witness tree in T(A), or None when empty."""
        if self.is_empty(kernel=kernel):
            return None
        witness: Dict[State, LabeledTree] = {}
        changed = True
        while changed:
            check_deadline()
            changed = False
            for (state, symbol), tuples in self.transitions.items():
                if state in witness:
                    continue
                for tuple_ in tuples:
                    if all(q in witness for q in tuple_):
                        witness[state] = LabeledTree(
                            symbol, tuple(witness[q] for q in tuple_)
                        )
                        changed = True
                        break
        candidates = [witness[s] for s in self.initial if s in witness]
        if not candidates:
            return None
        return min(candidates, key=lambda tree: tree.size())

    # ------------------------------------------------------------------
    # Proposition 4.4: boolean operations.
    # ------------------------------------------------------------------

    def union(self, other: "TreeAutomaton") -> "TreeAutomaton":
        """T(A) | T(B); states are tagged to keep them disjoint."""
        table: Dict[Tuple[State, Symbol], Set[Tuple[State, ...]]] = {}
        for (state, symbol), tuples in self.transitions.items():
            table[((0, state), symbol)] = {tuple((0, q) for q in t) for t in tuples}
        for (state, symbol), tuples in other.transitions.items():
            table[((1, state), symbol)] = {tuple((1, q) for q in t) for t in tuples}
        return TreeAutomaton(
            alphabet=self.alphabet | other.alphabet,
            states=frozenset((0, s) for s in self.states)
            | frozenset((1, s) for s in other.states),
            initial=frozenset((0, s) for s in self.initial)
            | frozenset((1, s) for s in other.initial),
            transitions={key: frozenset(v) for key, v in table.items()},
        )

    def intersection(self, other: "TreeAutomaton") -> "TreeAutomaton":
        """T(A) & T(B) by the product construction (polynomial)."""
        table: Dict[Tuple[State, Symbol], Set[Tuple[State, ...]]] = {}
        states: Set[State] = set()
        frontier: List[Tuple[State, State]] = [
            (a, b) for a in self.initial for b in other.initial
        ]
        initial = frozenset(frontier)
        states.update(frontier)
        while frontier:
            check_deadline()
            a, b = frontier.pop()
            for symbol in self.alphabet & other.alphabet:
                combos: Set[Tuple[State, ...]] = set()
                for ta in self.tuples(a, symbol):
                    for tb in other.tuples(b, symbol):
                        if len(ta) != len(tb):
                            continue
                        combo = tuple(zip(ta, tb))
                        combos.add(combo)
                        for pair in combo:
                            if pair not in states:
                                states.add(pair)
                                frontier.append(pair)
                if combos:
                    table[((a, b), symbol)] = combos
        return TreeAutomaton(
            alphabet=self.alphabet & other.alphabet,
            states=frozenset(states),
            initial=initial,
            transitions={key: frozenset(v) for key, v in table.items()},
        )

    def size(self) -> Tuple[int, int]:
        """(number of states, number of transition tuples)."""
        tuples = sum(len(v) for v in self.transitions.values())
        return (len(self.states), tuples)

    def enumerate_trees(self, max_depth: int,
                        limit: Optional[int] = None) -> List[LabeledTree]:
        """All accepted trees of depth <= max_depth (up to *limit*).

        Exponential; used by tests to compare small tree languages.
        """

        def from_state(state: State, depth: int) -> List[LabeledTree]:
            results: List[LabeledTree] = []
            for (source, symbol), tuples in sorted(
                self.transitions.items(), key=lambda item: repr(item[0])
            ):
                if source != state:
                    continue
                for tuple_ in sorted(tuples, key=repr):
                    if not tuple_:
                        results.append(LabeledTree(symbol))
                        continue
                    if depth <= 1:
                        continue
                    child_options = [from_state(q, depth - 1) for q in tuple_]
                    if any(not options for options in child_options):
                        continue
                    combos: List[Tuple[LabeledTree, ...]] = [()]
                    for options in child_options:
                        combos = [prefix + (t,) for prefix in combos for t in options]
                    results.extend(LabeledTree(symbol, combo) for combo in combos)
            return results

        seen: Set[str] = set()
        found: List[LabeledTree] = []
        for state in sorted(self.initial, key=repr):
            for tree in from_state(state, max_depth):
                key = str(tree)
                if key not in seen:
                    seen.add(key)
                    found.append(tree)
                    if limit is not None and len(found) >= limit:
                        return found
        return found


# ----------------------------------------------------------------------
# Complementation (Proposition 4.4, exponential direction).
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BottomUpDeterministic:
    """The deterministic bottom-up subset automaton of a top-down NTA.

    The state reached on a tree t is exactly the set of NTA states that
    accept t; acceptance requires that set to meet the NTA's initial
    states.  ``complemented`` flips acceptance, yielding the complement
    language without changing the transition structure.
    """

    source: TreeAutomaton
    complemented: bool = False

    def state_of(self, tree: LabeledTree) -> FrozenSet[State]:
        """The subset state reached bottom-up on *tree*."""
        return self.source._accepting_states(tree)

    def accepts(self, tree: LabeledTree) -> bool:
        hit = bool(self.state_of(tree) & self.source.initial)
        return hit != self.complemented

    def complement(self) -> "BottomUpDeterministic":
        return BottomUpDeterministic(self.source, not self.complemented)

    def reachable_subsets(self, max_subsets: Optional[int] = None,
                          kernel: Optional[KernelConfig] = None) -> FrozenSet[FrozenSet[State]]:
        """All subset states reachable on some tree (the materialized
        determinization).  Exponential; *max_subsets* guards runaways.

        Under the bitset kernel (default) subsets live as int masks and
        are thawed to frozensets only in the returned value; the
        frozenset reference path is kept behind the config knob.
        """
        if not resolve_kernel(kernel).bitset:
            return self._reachable_subsets_reference(max_subsets)
        interner = Interner()
        # (symbol, arity) -> [(state id, child-id tuple)]
        edges: Dict[Tuple[Symbol, int], List[Tuple[int, Tuple[int, ...]]]] = {}
        for (state, symbol), tuples in self.source.transitions.items():
            sid = interner.intern(state)
            for tuple_ in tuples:
                childs = tuple(interner.intern(q) for q in tuple_)
                edges.setdefault((symbol, len(tuple_)), []).append((sid, childs))

        subsets: Set[int] = set()
        changed = True
        while changed:
            check_deadline()
            changed = False
            for (symbol, arity), bucket in edges.items():
                pool = sorted(subsets)
                combos: List[Tuple[int, ...]] = [()]
                for _ in range(arity):
                    combos = [prefix + (u,) for prefix in combos for u in pool]
                for combo in combos:
                    target = 0
                    for sid, childs in bucket:
                        if (target >> sid) & 1:
                            continue
                        for q, u in zip(childs, combo):
                            if not (u >> q) & 1:
                                break
                        else:
                            target |= 1 << sid
                    if target not in subsets:
                        subsets.add(target)
                        changed = True
                        if max_subsets is not None and len(subsets) > max_subsets:
                            raise ValidationError(
                                "subset construction exceeded "
                                f"{max_subsets} states"
                            )
        return frozenset(interner.subset_of(mask) for mask in subsets)

    def _reachable_subsets_reference(self, max_subsets: Optional[int]) -> FrozenSet[FrozenSet[State]]:
        by_symbol: Dict[Symbol, List[Tuple[State, Tuple[State, ...]]]] = {}
        for (state, symbol), tuples in self.source.transitions.items():
            for tuple_ in tuples:
                by_symbol.setdefault(symbol, []).append((state, tuple_))

        subsets: Set[FrozenSet[State]] = set()
        changed = True
        while changed:
            check_deadline()
            changed = False
            for symbol, edges in by_symbol.items():
                arities = {len(tuple_) for _, tuple_ in edges}
                for arity in arities:
                    pool = sorted(subsets, key=repr)
                    combos: List[Tuple[FrozenSet[State], ...]] = [()]
                    for _ in range(arity):
                        combos = [prefix + (u,) for prefix in combos for u in pool]
                    for combo in combos:
                        target = frozenset(
                            state
                            for state, tuple_ in edges
                            if len(tuple_) == arity
                            and all(q in u for q, u in zip(tuple_, combo))
                        )
                        if target not in subsets:
                            subsets.add(target)
                            changed = True
                            if max_subsets is not None and len(subsets) > max_subsets:
                                raise ValidationError(
                                    "subset construction exceeded "
                                    f"{max_subsets} states"
                                )
        return frozenset(subsets)


def complement(automaton: TreeAutomaton) -> BottomUpDeterministic:
    """The complement of T(A) as a deterministic bottom-up automaton."""
    return BottomUpDeterministic(automaton).complement()


# ----------------------------------------------------------------------
# Proposition 4.6 workload: containment via bottom-up profiles.
# ----------------------------------------------------------------------

class _Antichain:
    """Per-key antichains of minimal frozensets with witness payloads
    (reference-path pruning structure)."""

    def __init__(self):
        self._chains: Dict[State, List[Tuple[FrozenSet[State], LabeledTree]]] = {}

    def dominated(self, key: State, subset: FrozenSet[State]) -> bool:
        return any(known <= subset for known, _ in self._chains.get(key, ()))

    def insert(self, key: State, subset: FrozenSet[State], witness: LabeledTree) -> bool:
        """Insert unless dominated; evict dominated entries.  Returns
        True when the profile was genuinely new."""
        if self.dominated(key, subset):
            return False
        chain = self._chains.setdefault(key, [])
        chain[:] = [(known, w) for known, w in chain if not subset <= known]
        chain.append((subset, witness))
        return True

    def items(self, key: State):
        return list(self._chains.get(key, ()))

    def keys(self):
        return list(self._chains.keys())

    def total(self) -> int:
        return sum(len(chain) for chain in self._chains.values())


def find_counterexample_tree(left: TreeAutomaton, right: TreeAutomaton,
                             use_antichain: bool = True,
                             kernel: Optional[KernelConfig] = None) -> Optional[LabeledTree]:
    """A tree in T(left) - T(right), or None when contained.

    Works bottom-up over *profiles* ``(p, U)``: p is a left state that
    accepts some witness tree t and U is the exact set of right states
    accepting the same t.  A profile with p initial-in-left and U
    disjoint from right's initial states yields a counterexample.  With
    ``use_antichain`` profiles dominated by a subset profile are pruned
    (sound because the profile successor map is monotone in U); without
    it the full exact profile space is explored (ablation mode).

    ``kernel`` selects the bitset kernel (default) or the frozenset
    reference path; both explore the same space and agree on verdicts.
    """
    config = resolve_kernel(kernel)
    if config.bitset:
        return _find_counterexample_tree_bitset(
            left, right, use_antichain, config.memoize
        )
    return _find_counterexample_tree_reference(left, right, use_antichain)


def _thaw_witness(node: Tuple) -> LabeledTree:
    """Build the LabeledTree of a lazy ``(symbol, children)`` witness."""
    return thaw_witness(node, LabeledTree)


def _find_counterexample_tree_bitset(left: TreeAutomaton, right: TreeAutomaton,
                                     use_antichain: bool,
                                     memoize: bool) -> Optional[LabeledTree]:
    by_symbol_left = left.edges_by_symbol()
    interner = Interner()
    # (symbol, arity) -> [(state bit, child-id tuple)]
    right_edges: Dict[Tuple[Symbol, int], List[Tuple[int, Tuple[int, ...]]]] = {}
    for (state, symbol), tuples in right.transitions.items():
        bit = 1 << interner.intern(state)
        for tuple_ in tuples:
            childs = tuple(interner.intern(q) for q in tuple_)
            right_edges.setdefault((symbol, len(tuple_)), []).append((bit, childs))
    right_initial = interner.mask_of(right.initial)
    left_initial = left.initial

    profile_cache: Dict[Tuple[Symbol, Tuple[int, ...]], int] = {}

    def right_profile(symbol: Symbol, child_masks: Tuple[int, ...]) -> int:
        key = (symbol, child_masks)
        if memoize:
            cached = profile_cache.get(key)
            if cached is not None:
                return cached
        mask = 0
        for bit, childs in right_edges.get((symbol, len(child_masks)), ()):
            if mask & bit:
                continue
            for q, u in zip(childs, child_masks):
                if not (u >> q) & 1:
                    break
            else:
                mask |= bit
        if memoize:
            profile_cache[key] = mask
        return mask

    chains = BitAntichain()
    seen_exact: Set[Tuple[State, int]] = set()

    changed = True
    while changed:
        check_deadline()
        changed = False
        for symbol, edges in by_symbol_left.items():
            for state, tuple_ in edges:
                if tuple_:
                    options = [chains.items(q) for q in tuple_]
                    if any(not opts for opts in options):
                        continue
                    combos: List[Tuple[Tuple[int, Tuple], ...]] = [()]
                    for opts in options:
                        combos = [prefix + (entry,) for prefix in combos for entry in opts]
                else:
                    combos = [()]
                for combo in combos:
                    child_masks = tuple(entry[0] for entry in combo)
                    subset = right_profile(symbol, child_masks)
                    witness = (symbol, tuple(entry[1] for entry in combo))
                    if state in left_initial and not (subset & right_initial):
                        return _thaw_witness(witness)
                    if use_antichain:
                        if chains.insert(state, subset, witness):
                            changed = True
                    else:
                        key = (state, subset)
                        if key not in seen_exact:
                            seen_exact.add(key)
                            chains.append(state, subset, witness)
                            changed = True
    return None


def _find_counterexample_tree_reference(left: TreeAutomaton, right: TreeAutomaton,
                                        use_antichain: bool) -> Optional[LabeledTree]:
    by_symbol_left = left.edges_by_symbol()
    by_symbol_right = right.edges_by_symbol()

    chains = _Antichain()
    seen_exact: Set[Tuple[State, FrozenSet[State]]] = set()

    def right_profile(symbol: Symbol, child_profiles: Tuple[FrozenSet[State], ...]) -> FrozenSet[State]:
        arity = len(child_profiles)
        return frozenset(
            state
            for state, tuple_ in by_symbol_right.get(symbol, ())
            if len(tuple_) == arity
            and all(q in u for q, u in zip(tuple_, child_profiles))
        )

    changed = True
    while changed:
        check_deadline()
        changed = False
        for symbol, edges in by_symbol_left.items():
            for state, tuple_ in edges:
                if tuple_:
                    options = [chains.items(q) for q in tuple_]
                    if any(not opts for opts in options):
                        continue
                    combos: List[Tuple[Tuple[FrozenSet[State], LabeledTree], ...]] = [()]
                    for opts in options:
                        combos = [prefix + (entry,) for prefix in combos for entry in opts]
                else:
                    combos = [()]
                for combo in combos:
                    child_subsets = tuple(entry[0] for entry in combo)
                    child_witnesses = tuple(entry[1] for entry in combo)
                    subset = right_profile(symbol, child_subsets)
                    witness = LabeledTree(symbol, child_witnesses)
                    if state in left.initial and not (subset & right.initial):
                        return witness
                    if use_antichain:
                        if chains.insert(state, subset, witness):
                            changed = True
                    else:
                        key = (state, subset)
                        if key not in seen_exact:
                            seen_exact.add(key)
                            chains._chains.setdefault(state, []).append((subset, witness))
                            changed = True
    return None


def contained_in(left: TreeAutomaton, right: TreeAutomaton,
                 use_antichain: bool = True,
                 kernel: Optional[KernelConfig] = None) -> bool:
    """T(left) subseteq T(right) (Proposition 4.6 workload)."""
    return find_counterexample_tree(
        left, right, use_antichain=use_antichain, kernel=kernel
    ) is None


def contained_in_union(left: TreeAutomaton,
                       rights: Sequence[TreeAutomaton],
                       kernel: Optional[KernelConfig] = None) -> bool:
    """T(left) subseteq union of T(right_i)."""
    if not rights:
        return left.is_empty(kernel=kernel)
    combined = rights[0]
    for automaton in rights[1:]:
        combined = combined.union(automaton)
    return contained_in(left, combined, kernel=kernel)


def equivalent(left: TreeAutomaton, right: TreeAutomaton,
               kernel: Optional[KernelConfig] = None) -> bool:
    """Language equality via mutual containment."""
    return (contained_in(left, right, kernel=kernel)
            and contained_in(right, left, kernel=kernel))
