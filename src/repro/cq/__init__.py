"""Conjunctive queries: representation, homomorphisms, containment.

Implements Section 2.2 of the paper (containment mappings,
Theorem 2.2, and the Sagiv-Yannakakis union theorem 2.3) together with
canonical databases, direct evaluation, and minimization (cores).
"""

from .canonical import canonical_database, evaluate_cq, evaluate_ucq, freeze_variable
from .containment import (
    cq_contained_in,
    cq_contained_in_ucq,
    cq_equivalent,
    minimal_union,
    ucq_contained_in,
    ucq_equivalent,
    witness_mapping,
)
from .homomorphism import (
    containment_mapping,
    enumerate_containment_mappings,
    enumerate_homomorphisms,
    find_homomorphism,
)
from .minimize import is_minimal, minimize
from .query import UCQ, ConjunctiveQuery, UnionOfConjunctiveQueries

__all__ = [
    "ConjunctiveQuery",
    "UCQ",
    "UnionOfConjunctiveQueries",
    "canonical_database",
    "containment_mapping",
    "cq_contained_in",
    "cq_contained_in_ucq",
    "cq_equivalent",
    "enumerate_containment_mappings",
    "enumerate_homomorphisms",
    "evaluate_cq",
    "evaluate_ucq",
    "find_homomorphism",
    "freeze_variable",
    "is_minimal",
    "minimal_union",
    "minimize",
    "ucq_contained_in",
    "ucq_equivalent",
    "witness_mapping",
]
