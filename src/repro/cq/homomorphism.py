"""Containment mappings / homomorphisms between conjunctive queries.

Implements Definition 2.1 of the paper, extended with constants per
Remark 5.14: a containment mapping from psi to theta renames variables
of psi such that (a) the head of psi maps onto the head of theta
argument-wise, (b) nondistinguished variables may map to variables or
constants of theta, and (c) after renaming every body atom of psi is
among the body atoms of theta.

The search is a backtracking constraint solver over the atoms of psi,
with target atoms indexed by predicate and source atoms ordered
most-constrained-first.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..datalog.atoms import Atom
from ..datalog.terms import Term, Variable, is_variable

Mapping = Dict[Variable, Term]


def _index_by_predicate(atoms: Sequence[Atom]) -> Dict[str, List[Atom]]:
    index: Dict[str, List[Atom]] = {}
    for atom in atoms:
        index.setdefault(atom.predicate, []).append(atom)
    return index


def _extend(atom: Atom, target: Atom, mapping: Mapping) -> Optional[Mapping]:
    """Try to extend *mapping* so that *atom* maps onto *target*."""
    if atom.predicate != target.predicate or atom.arity != target.arity:
        return None
    extended = dict(mapping)
    for source_term, target_term in zip(atom.args, target.args):
        if is_variable(source_term):
            bound = extended.get(source_term)
            if bound is None:
                extended[source_term] = target_term
            elif bound != target_term:
                return None
        elif source_term != target_term:
            return None
    return extended


def _order_atoms(atoms: Sequence[Atom], bound: Iterable[Variable]) -> List[Atom]:
    """Order source atoms so that each step shares variables with the
    already-mapped prefix where possible (reduces backtracking)."""
    remaining = list(atoms)
    ordered: List[Atom] = []
    seen = set(bound)
    while remaining:
        def score(atom: Atom):
            variables = atom.variable_set()
            return (len(variables & seen) + len(atom.constants()), -len(variables - seen))

        best = max(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        seen.update(best.variable_set())
    return ordered


def enumerate_homomorphisms(source: Sequence[Atom], target: Sequence[Atom],
                            seed: Optional[Mapping] = None) -> Iterator[Mapping]:
    """Yield every mapping of source variables to target terms under
    which each source atom occurs among the target atoms, extending the
    optional *seed* mapping."""
    seed = dict(seed or {})
    index = _index_by_predicate(target)
    ordered = _order_atoms(source, seed.keys())

    def search(position: int, mapping: Mapping) -> Iterator[Mapping]:
        if position == len(ordered):
            yield dict(mapping)
            return
        atom = ordered[position]
        for candidate in index.get(atom.predicate, ()):
            extended = _extend(atom, candidate, mapping)
            if extended is not None:
                yield from search(position + 1, extended)

    yield from search(0, seed)


def find_homomorphism(source: Sequence[Atom], target: Sequence[Atom],
                      seed: Optional[Mapping] = None) -> Optional[Mapping]:
    """The first homomorphism found, or None."""
    for mapping in enumerate_homomorphisms(source, target, seed):
        return mapping
    return None


def _head_seed(source_head: Atom, target_head: Atom) -> Optional[Mapping]:
    """Seed mapping forcing the source head onto the target head.

    Returns None when the heads are incompatible (different arity, or a
    head constant that does not match).
    """
    if source_head.arity != target_head.arity:
        return None
    seed: Mapping = {}
    for source_term, target_term in zip(source_head.args, target_head.args):
        if is_variable(source_term):
            bound = seed.get(source_term)
            if bound is None:
                seed[source_term] = target_term
            elif bound != target_term:
                return None
        elif source_term != target_term:
            return None
    return seed


def containment_mapping(psi, theta) -> Optional[Mapping]:
    """A containment mapping from query *psi* to query *theta*.

    Per Theorem 2.2 such a mapping exists iff theta is contained in psi.
    Head predicates are not compared (only the argument tuples matter);
    repeated head variables and head constants are handled by the seed.
    """
    seed = _head_seed(psi.head, theta.head)
    if seed is None:
        return None
    return find_homomorphism(psi.body, theta.body, seed)


def enumerate_containment_mappings(psi, theta) -> Iterator[Mapping]:
    """All containment mappings from *psi* to *theta*."""
    seed = _head_seed(psi.head, theta.head)
    if seed is None:
        return
    yield from enumerate_homomorphisms(psi.body, theta.body, seed)
