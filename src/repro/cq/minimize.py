"""Minimization of conjunctive queries (core computation).

A conjunctive query is *minimal* when no body atom can be dropped
without changing its semantics.  The minimal equivalent subquery (the
"core") is unique up to variable renaming; it is computed by repeatedly
removing atoms whose removal preserves equivalence, which by
Theorem 2.2 reduces to a containment-mapping check.
"""

from __future__ import annotations

from typing import Tuple

from ..budget import check_deadline
from .containment import cq_contained_in
from .query import ConjunctiveQuery


def _without(query: ConjunctiveQuery, index: int) -> ConjunctiveQuery:
    body = query.body[:index] + query.body[index + 1 :]
    return ConjunctiveQuery(query.head, body)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of *query*: a minimal equivalent subquery.

    Removing an atom can only enlarge the result, so the subquery always
    contains the original; equivalence therefore reduces to checking
    that the subquery is contained in the original (one homomorphism
    test per candidate removal).
    """
    current = query
    changed = True
    while changed:
        check_deadline()
        changed = False
        for index in range(len(current.body)):
            candidate = _without(current, index)
            if not candidate.is_safe and query.is_safe:
                # Never trade a safe query for an unsafe one; under
                # active-domain semantics they may differ.
                continue
            if cq_contained_in(candidate, current):
                current = candidate
                changed = True
                break
    return current


def is_minimal(query: ConjunctiveQuery) -> bool:
    """True when no single atom can be removed preserving equivalence."""
    for index in range(len(query.body)):
        candidate = _without(query, index)
        if not candidate.is_safe and query.is_safe:
            continue
        if cq_contained_in(candidate, query):
            return False
    return True


def core_body_size(query: ConjunctiveQuery) -> int:
    """Number of atoms in the core of *query* (a renaming-invariant)."""
    return len(minimize(query).body)
