"""Canonical databases and direct evaluation of conjunctive queries.

The canonical (frozen) database of a conjunctive query turns each
variable into a fresh constant; it is the standard tool for reducing
query containment to query evaluation.  In this reproduction it powers
the classical test "CQ contained in Datalog program" (used for the easy
direction of Theorem 6.5): theta is contained in Pi with goal Q iff
evaluating Pi on the canonical database of theta derives the frozen
head of theta [CK86, Sa88b].
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, List, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.errors import ValidationError
from ..datalog.terms import Constant, Variable, is_variable
from .query import ConjunctiveQuery

_FROZEN_PREFIX = "$frozen:"


def freeze_variable(variable: Variable) -> Constant:
    """The reserved constant representing *variable* in canonical DBs."""
    return Constant(f"{_FROZEN_PREFIX}{variable.name}")


def is_frozen_constant(constant: Constant) -> bool:
    """True for constants produced by :func:`freeze_variable`."""
    return isinstance(constant.value, str) and constant.value.startswith(_FROZEN_PREFIX)


def canonical_database(query: ConjunctiveQuery) -> Tuple[Database, Tuple[Constant, ...]]:
    """The canonical database of *query* and its frozen head row.

    Every variable v becomes the reserved constant ``$frozen:v``;
    constants are kept.  Returns ``(database, frozen_head_args)``.
    """
    for constant in query.constants:
        if is_frozen_constant(constant):
            raise ValidationError(f"query already contains reserved constant {constant}")
    freeze: Dict[Variable, Constant] = {v: freeze_variable(v) for v in query.variables}
    db = Database()
    for atom in query.body:
        db.add(atom.predicate, tuple(freeze[t] if is_variable(t) else t for t in atom.args))
    head_row = tuple(freeze[t] if is_variable(t) else t for t in query.head.args)
    return db, head_row


def evaluate_cq(query: ConjunctiveQuery, database: Database) -> FrozenSet[Tuple[Constant, ...]]:
    """The relation defined by *query* on *database*.

    Distinguished variables that do not occur in the body (unsafe
    queries) range over the active domain, matching the engine's
    convention for unsafe rules.
    """
    bindings: List[Dict[Variable, Constant]] = [{}]
    for atom in query.body:
        rows = database.relation(atom.predicate)
        next_bindings: List[Dict[Variable, Constant]] = []
        for binding in bindings:
            for row in rows:
                extended = dict(binding)
                ok = True
                for term, value in zip(atom.args, row):
                    if is_variable(term):
                        bound = extended.get(term)
                        if bound is None:
                            extended[term] = value
                        elif bound != value:
                            ok = False
                            break
                    elif term != value:
                        ok = False
                        break
                if ok:
                    next_bindings.append(extended)
        bindings = next_bindings
        if not bindings:
            return frozenset()

    domain = sorted(database.active_domain(), key=repr)
    results: Set[Tuple[Constant, ...]] = set()
    head = query.head
    for binding in bindings:
        missing = [v for v in head.variable_set() if v not in binding]
        if missing:
            for values in product(domain, repeat=len(missing)):
                full = dict(binding)
                full.update(zip(missing, values))
                results.add(tuple(full[t] if is_variable(t) else t for t in head.args))
        else:
            results.add(tuple(binding[t] if is_variable(t) else t for t in head.args))
    return frozenset(results)


def evaluate_ucq(union, database: Database) -> FrozenSet[Tuple[Constant, ...]]:
    """The relation defined by a union of conjunctive queries."""
    results: Set[Tuple[Constant, ...]] = set()
    for query in union:
        results.update(evaluate_cq(query, database))
    return frozenset(results)
