"""Conjunctive queries and unions of conjunctive queries (Section 2.1).

A conjunctive query is represented rule-like, as a *head atom* (whose
arguments are the distinguished terms, in order) and a tuple of body
atoms.  Repeated variables and constants are allowed in the head: both
arise naturally when unfolding nonrecursive programs (e.g. the
empty-body rule ``dist0(x, x).`` of Example 6.2 unfolds to a query with
head ``dist0(X, X)``).

A union of conjunctive queries (UCQ) is a nonempty-or-empty sequence of
conjunctive queries of the same head arity; the empty union is the
everywhere-empty query (false).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterable, List, Tuple

from ..datalog.atoms import Atom, atoms_constants, atoms_variables
from ..datalog.errors import ValidationError
from ..datalog.rules import Rule
from ..datalog.terms import FreshVariableFactory, Term, Variable, is_variable


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``head :- body`` (all body atoms positive)."""

    head: Atom
    body: Tuple[Atom, ...]

    def __init__(self, head: Atom, body: Iterable[Atom]):
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))

    @classmethod
    def from_rule(cls, rule: Rule) -> "ConjunctiveQuery":
        """View a rule as a conjunctive query."""
        return cls(rule.head, rule.body)

    def as_rule(self) -> Rule:
        """View the query as a Horn rule."""
        return Rule(self.head, self.body)

    @property
    def arity(self) -> int:
        """Number of distinguished positions."""
        return self.head.arity

    @property
    def is_boolean(self) -> bool:
        """True when the query has no distinguished positions."""
        return self.head.arity == 0

    @cached_property
    def distinguished_variables(self) -> frozenset:
        """Variables occurring in the head."""
        return self.head.variable_set()

    @cached_property
    def existential_variables(self) -> frozenset:
        """Body variables that are not distinguished."""
        return atoms_variables(self.body) - self.distinguished_variables

    @cached_property
    def variables(self) -> frozenset:
        """All variables of the query."""
        return self.head.variable_set() | atoms_variables(self.body)

    @cached_property
    def constants(self) -> frozenset:
        """All constants of the query."""
        return self.head.constants() | atoms_constants(self.body)

    @property
    def is_safe(self) -> bool:
        """True when every distinguished variable occurs in the body."""
        return self.distinguished_variables <= atoms_variables(self.body)

    def substitute(self, subst: Dict[Variable, Term]) -> "ConjunctiveQuery":
        """Apply a substitution to head and body."""
        return ConjunctiveQuery(
            self.head.substitute(subst), tuple(a.substitute(subst) for a in self.body)
        )

    def rename_apart(self, avoid=()) -> "ConjunctiveQuery":
        """A variant whose variables avoid *avoid* (and are fresh)."""
        factory = FreshVariableFactory(avoid=set(avoid) | {v.name for v in self.variables})
        mapping = {v: factory.fresh() for v in sorted(self.variables, key=lambda v: v.name)}
        return self.substitute(mapping)

    def rename_canonical(self) -> "ConjunctiveQuery":
        """A deterministic renaming used for heuristic duplicate removal.

        Variables are renamed ``X0, X1, ...`` in order of first
        occurrence after sorting body atoms by a stable structural key.
        Two queries with equal canonical forms are equal up to renaming;
        the converse need not hold (canonicalizing CQs exactly is
        graph-isomorphism-hard), so this is used only to shrink unions,
        never to decide containment.
        """
        ordered = sorted(self.body, key=lambda a: (a.predicate, len(a.args), str(a)))
        mapping: Dict[Variable, Variable] = {}
        counter = 0
        for atom in (self.head, *ordered):
            for term in atom.args:
                if is_variable(term) and term not in mapping:
                    mapping[term] = Variable(f"X{counter}")
                    counter += 1
        renamed = self.substitute(mapping)
        body = tuple(sorted(renamed.body, key=lambda a: (a.predicate, str(a))))
        return ConjunctiveQuery(renamed.head, body)

    def size(self) -> int:
        """Syntactic size: one per atom plus one per argument slot."""
        total = 1 + self.head.arity
        for atom in self.body:
            total += 1 + atom.arity
        return total

    def __str__(self):
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(a) for a in self.body)}."

    def __repr__(self):
        return f"ConjunctiveQuery({str(self)!r})"


@dataclass(frozen=True)
class UnionOfConjunctiveQueries:
    """A finite union (disjunction) of conjunctive queries."""

    disjuncts: Tuple[ConjunctiveQuery, ...]
    arity: int

    def __init__(self, disjuncts: Iterable[ConjunctiveQuery], arity: int = None):
        disjuncts = tuple(disjuncts)
        if arity is None:
            if not disjuncts:
                raise ValidationError("arity is required for an empty union")
            arity = disjuncts[0].arity
        for query in disjuncts:
            if query.arity != arity:
                raise ValidationError(
                    f"disjunct arity {query.arity} differs from union arity {arity}"
                )
        object.__setattr__(self, "disjuncts", disjuncts)
        object.__setattr__(self, "arity", arity)

    def deduplicated(self) -> "UnionOfConjunctiveQueries":
        """Remove duplicates up to the heuristic canonical renaming."""
        seen = set()
        kept: List[ConjunctiveQuery] = []
        for query in self.disjuncts:
            key = str(query.rename_canonical())
            if key not in seen:
                seen.add(key)
                kept.append(query)
        return UnionOfConjunctiveQueries(kept, self.arity)

    def __iter__(self):
        return iter(self.disjuncts)

    def __len__(self):
        return len(self.disjuncts)

    def size(self) -> int:
        """Total syntactic size of all disjuncts."""
        return sum(query.size() for query in self.disjuncts)

    def __str__(self):
        return "\n".join(str(query) for query in self.disjuncts)


UCQ = UnionOfConjunctiveQueries
