"""Containment and equivalence of (unions of) conjunctive queries.

* Theorem 2.2: theta is contained in psi iff there is a containment
  mapping from psi to theta.
* Theorem 2.3 [SY81]: a union Phi is contained in a union Psi iff each
  disjunct of Phi is contained in some disjunct of Psi.

Both are decided exactly (NP-complete in general; the backtracking
search is fast on the query sizes arising in this reproduction).
"""

from __future__ import annotations

from typing import Optional

from .homomorphism import containment_mapping
from .query import ConjunctiveQuery, UnionOfConjunctiveQueries


def cq_contained_in(theta: ConjunctiveQuery, psi: ConjunctiveQuery) -> bool:
    """True iff ``theta(D) subseteq psi(D)`` for every database D."""
    return containment_mapping(psi, theta) is not None


def cq_equivalent(theta: ConjunctiveQuery, psi: ConjunctiveQuery) -> bool:
    """Mutual containment of two conjunctive queries."""
    return cq_contained_in(theta, psi) and cq_contained_in(psi, theta)


def cq_contained_in_ucq(theta: ConjunctiveQuery, union: UnionOfConjunctiveQueries) -> bool:
    """True iff theta is contained in some disjunct of *union*.

    By Theorem 2.3 this is equivalent to containment of theta in the
    union as a whole.
    """
    return any(cq_contained_in(theta, psi) for psi in union)


def ucq_contained_in(phi: UnionOfConjunctiveQueries,
                     psi: UnionOfConjunctiveQueries) -> bool:
    """True iff ``phi(D) subseteq psi(D)`` for every database D (Thm 2.3)."""
    return all(cq_contained_in_ucq(disjunct, psi) for disjunct in phi)


def ucq_equivalent(phi: UnionOfConjunctiveQueries,
                   psi: UnionOfConjunctiveQueries) -> bool:
    """Mutual containment of two unions of conjunctive queries."""
    return ucq_contained_in(phi, psi) and ucq_contained_in(psi, phi)


def witness_mapping(theta: ConjunctiveQuery,
                    psi: ConjunctiveQuery) -> Optional[dict]:
    """The containment mapping witnessing ``theta contained-in psi``
    (a mapping *from psi to theta*), or None."""
    return containment_mapping(psi, theta)


def minimal_union(union: UnionOfConjunctiveQueries) -> UnionOfConjunctiveQueries:
    """Remove disjuncts contained in another disjunct of the union.

    The result is equivalent to the input and contains no disjunct that
    is redundant relative to the others (a single pass suffices because
    containment between the survivors is unchanged).
    """
    disjuncts = list(union.deduplicated())
    removed = set()
    for i, query in enumerate(disjuncts):
        for j, other in enumerate(disjuncts):
            if i == j or j in removed:
                continue
            if cq_contained_in(query, other):
                if j > i and cq_contained_in(other, query):
                    # Equivalent pair: keep the earlier disjunct.
                    continue
                removed.add(i)
                break
    kept = [query for i, query in enumerate(disjuncts) if i not in removed]
    return UnionOfConjunctiveQueries(kept, union.arity)
