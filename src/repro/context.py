"""Ambient-session plumbing: the ContextVar and the cache scopes.

Every decision procedure in this package resolves three ambient
things when the caller does not pass them explicitly: a kernel
configuration, an evaluation engine, and the memoization tables behind
the ``shared_*`` automaton factories and the columnar EDB images.
Historically all three were process-global mutable state
(``set_default_kernel``, the module-level default engine, ``lru_cache``
factories), which races when two threads want different
configurations.

This module is the fix, and it is deliberately the *bottom* of the
import graph (stdlib only) so every layer -- ``automata.kernel``,
``datalog.engine``, ``datalog.columns``, ``repro.core`` -- can consult
it without cycles:

* :class:`CacheScope` is a named bundle of memo tables with hit/miss
  counters -- the unit of cache isolation.  One process-wide
  :data:`GLOBAL_SCOPE` backs the default session; every other
  :class:`~repro.session.Session` owns a private scope.
* the ambient :class:`~repro.session.Session` lives in a
  :class:`contextvars.ContextVar`: per-thread and per-async-task, so
  two threads with different configs no longer share mutable defaults.
  :func:`current_session` resolves it (falling back to the lazily
  created process default session), and :func:`current_scope` resolves
  the cache scope every shared factory writes into.

``repro.session`` registers the default-session factory at import
time; this module never imports it.
"""

from __future__ import annotations

import threading
from contextvars import ContextVar
from typing import Any, Callable, Dict, Optional


class CacheScope:
    """A named bundle of memoization tables with hit/miss counters.

    Tables are keyed by a dotted name (``"core.cq_automaton"``,
    ``"datalog.edb_images"``, ...).  :meth:`memo` is the common path:
    build-on-miss with an optional size limit (the table is dropped
    wholesale when full, mirroring the package's other caches).
    Callers with bespoke entry lifecycles (the weakref'd EDB images)
    take the raw :meth:`table` and report :meth:`hit`/:meth:`miss`
    themselves, so :meth:`stats` stays honest either way.

    Counters are how the test suite proves session isolation: a
    decision run inside one session must move only that session's
    counters, never another scope's.
    """

    __slots__ = ("name", "_tables", "_hits", "_misses", "_limits")

    def __init__(self, name: str = "private"):
        self.name = name
        self._tables: Dict[str, Dict] = {}
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        self._limits: Dict[str, int] = {}

    def table(self, name: str, limit: Optional[int] = None) -> Dict:
        """The raw table *name* (created on first use)."""
        tbl = self._tables.get(name)
        if tbl is None:
            tbl = self._tables[name] = {}
            if limit is not None:
                self._limits[name] = limit
        return tbl

    def hit(self, name: str) -> None:
        self._hits[name] = self._hits.get(name, 0) + 1

    def miss(self, name: str) -> None:
        self._misses[name] = self._misses.get(name, 0) + 1

    def memo(self, name: str, key: Any, build: Callable[[], Any],
             limit: Optional[int] = None) -> Any:
        """The memoized value of *key* in table *name*, building (and
        counting a miss) on first sight.

        Tables with a *limit* evict least-recently-used entries one at
        a time (dict insertion order doubles as the recency order:
        hits reinsert their key), matching the ``lru_cache`` factories
        this replaced -- a long-running session crossing the cap loses
        one cold entry per insert, never its whole warm set.
        """
        tbl = self.table(name, limit)
        try:
            value = tbl.pop(key)
        except KeyError:
            self.miss(name)
            cap = self._limits.get(name)
            if cap is not None and len(tbl) >= cap:
                del tbl[next(iter(tbl))]  # evict the least recent
            value = tbl[key] = build()
            return value
        tbl[key] = value  # reinsert: most recent position
        self.hit(name)
        return value

    def clear(self) -> None:
        """Drop every table (cold-start hook; counters survive so
        before/after deltas stay meaningful, use :meth:`reset_stats`
        to zero them)."""
        for tbl in self._tables.values():
            tbl.clear()

    def reset_stats(self) -> None:
        self._hits.clear()
        self._misses.clear()

    def export_tables(self) -> Dict[str, tuple]:
        """Every table as ``{name: (entries copy, limit or None)}`` --
        the warm-state snapshot's view of this scope.  Counters are
        deliberately excluded: they describe this process's history,
        not reusable state."""
        return {
            name: (dict(table), self._limits.get(name))
            for name, table in self._tables.items()
        }

    def adopt_tables(self, tables: Dict[str, tuple]) -> None:
        """Merge a snapshot's ``{name: (entries, limit)}`` export into
        this scope.  Adopted entries land without touching hit/miss
        counters, so a restored session's first decision shows up as
        pure hits -- the counter delta the snapshot tests assert on."""
        for name, (entries, limit) in tables.items():
            self.table(name, limit).update(entries)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-table ``{"size", "hits", "misses"}`` counters."""
        names = set(self._tables) | set(self._hits) | set(self._misses)
        return {
            name: {
                "size": len(self._tables.get(name, ())),
                "hits": self._hits.get(name, 0),
                "misses": self._misses.get(name, 0),
            }
            for name in sorted(names)
        }

    def total_entries(self) -> int:
        return sum(len(tbl) for tbl in self._tables.values())

    def __repr__(self):
        return f"CacheScope({self.name!r}, entries={self.total_entries()})"


#: The process-wide scope backing the default session (and any session
#: constructed with ``CachePolicy(scope="shared")``).
GLOBAL_SCOPE = CacheScope("global")

#: The ambient session override.  ``None`` means "the default session".
_CURRENT: ContextVar[Optional[Any]] = ContextVar("repro_session", default=None)

_factory: Optional[Callable[[], Any]] = None
_process_default: Optional[Any] = None
_default_lock = threading.Lock()


def register_default_session_factory(factory: Callable[[], Any]) -> None:
    """Install the zero-argument default-session builder.  Called once
    by :mod:`repro.session` at import time."""
    global _factory
    _factory = factory


def default_session() -> Optional[Any]:
    """The process default session, created lazily (and exactly once,
    under a lock) from the registered factory.  ``None`` only during
    package import, before :mod:`repro.session` has registered."""
    global _process_default
    if _process_default is None and _factory is not None:
        with _default_lock:
            if _process_default is None:
                _process_default = _factory()
    return _process_default


def current_session() -> Optional[Any]:
    """The ambient session: the ContextVar override when one is
    active, else the process default."""
    session = _CURRENT.get()
    if session is not None:
        return session
    return default_session()


def activate(session: Any):
    """Make *session* the ambient session for the current context.
    Returns the ContextVar token for :func:`deactivate`."""
    return _CURRENT.set(session)


def deactivate(token) -> None:
    """Undo a matching :func:`activate`."""
    _CURRENT.reset(token)


#: Per-context stack of activation tokens backing ``with session:``.
#: Tokens are context-bound (ContextVar.reset rejects tokens from
#: another context), so the stack must live in a ContextVar too --
#: an instance attribute would make one Session entered from two
#: threads pop the other thread's token.
_TOKENS: ContextVar[tuple] = ContextVar("repro_session_tokens", default=())


def push_session(session: Any) -> None:
    """``activate`` with the token kept on the current context's
    stack (the ``with session:`` protocol)."""
    _TOKENS.set(_TOKENS.get() + (activate(session),))


def pop_session() -> None:
    """Undo the innermost :func:`push_session` of this context."""
    tokens = _TOKENS.get()
    if not tokens:
        raise RuntimeError("no session activation to exit in this context")
    _TOKENS.set(tokens[:-1])
    deactivate(tokens[-1])


def current_scope() -> CacheScope:
    """The ambient session's cache scope (the global scope while the
    package is still importing)."""
    session = current_session()
    if session is None:
        return GLOBAL_SCOPE
    return session.caches
