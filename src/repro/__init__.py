"""repro: reproduction of Chaudhuri & Vardi,
"On the Equivalence of Recursive and Nonrecursive Datalog Programs"
(PODS 1992; JCSS 54(1):61-78, 1997).

The package decides containment of recursive Datalog programs in
unions of conjunctive queries (Theorem 5.12) and equivalence of
recursive programs to nonrecursive programs (Theorem 6.5), using the
paper's proof-tree / tree-automaton machinery, and ships the paper's
lower-bound constructions as executable generators.

Quickstart (a live doctest -- ``tests/test_docs.py`` executes it):

    >>> from repro import parse_program, is_equivalent_to_nonrecursive
    >>> recursive = parse_program('''
    ...     buys(X, Y) :- likes(X, Y).
    ...     buys(X, Y) :- trendy(X), buys(Z, Y).
    ... ''')
    >>> nonrecursive = parse_program('''
    ...     buys(X, Y) :- likes(X, Y).
    ...     buys(X, Y) :- trendy(X), likes(Z, Y).
    ... ''')
    >>> bool(is_equivalent_to_nonrecursive(recursive, nonrecursive, goal="buys"))
    True
"""

from .automata import KernelConfig, default_kernel, set_default_kernel
from .datalog import (
    Atom,
    Constant,
    Database,
    Program,
    Rule,
    Variable,
    evaluate,
    is_linear,
    is_nonrecursive,
    is_recursive,
    make_atom,
    parse_atom,
    parse_program,
    parse_rule,
    query,
    unfold_nonrecursive,
)
from .cq import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    cq_contained_in,
    cq_equivalent,
    evaluate_cq,
    minimize,
    ucq_contained_in,
)
from .core import (
    contained_in_cq,
    contained_in_nonrecursive,
    contained_in_ucq,
    cq_contained_in_datalog,
    decide_boundedness,
    is_equivalent_to_nonrecursive,
    nonrecursive_contained_in_datalog,
    ucq_contained_in_datalog,
)

# Wire the default engine's plan cache and the columnar EDB-image
# cache into the kernel's shared-cache registry here: engine.py and
# columns.py cannot import the registry at module level (kernel <->
# datalog import cycle), and the package root always runs before any
# submodule.
from .automata.kernel import register_shared_cache as _register_shared_cache
from .datalog.columns import clear_edb_images as _clear_edb_images
from .datalog.engine import clear_default_plan_cache as _clear_default_plan_cache

_register_shared_cache(_clear_default_plan_cache, "datalog.default_plan_cache")
_register_shared_cache(_clear_edb_images, "datalog.columnar_edb_images")

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Constant",
    "Database",
    "KernelConfig",
    "Program",
    "Rule",
    "UnionOfConjunctiveQueries",
    "Variable",
    "contained_in_cq",
    "contained_in_nonrecursive",
    "contained_in_ucq",
    "cq_contained_in",
    "cq_contained_in_datalog",
    "cq_equivalent",
    "decide_boundedness",
    "default_kernel",
    "evaluate",
    "evaluate_cq",
    "is_equivalent_to_nonrecursive",
    "is_linear",
    "is_nonrecursive",
    "is_recursive",
    "make_atom",
    "minimize",
    "nonrecursive_contained_in_datalog",
    "parse_atom",
    "parse_program",
    "parse_rule",
    "query",
    "set_default_kernel",
    "ucq_contained_in",
    "ucq_contained_in_datalog",
    "unfold_nonrecursive",
]
