"""repro: reproduction of Chaudhuri & Vardi,
"On the Equivalence of Recursive and Nonrecursive Datalog Programs"
(PODS 1992; JCSS 54(1):61-78, 1997).

The package decides containment of recursive Datalog programs in
unions of conjunctive queries (Theorem 5.12) and equivalence of
recursive programs to nonrecursive programs (Theorem 6.5), using the
paper's proof-tree / tree-automaton machinery, and ships the paper's
lower-bound constructions as executable generators.

Quickstart (a live doctest -- ``tests/test_docs.py`` executes it):

    >>> from repro import parse_program, is_equivalent_to_nonrecursive
    >>> recursive = parse_program('''
    ...     buys(X, Y) :- likes(X, Y).
    ...     buys(X, Y) :- trendy(X), buys(Z, Y).
    ... ''')
    >>> nonrecursive = parse_program('''
    ...     buys(X, Y) :- likes(X, Y).
    ...     buys(X, Y) :- trendy(X), likes(Z, Y).
    ... ''')
    >>> bool(is_equivalent_to_nonrecursive(recursive, nonrecursive, goal="buys"))
    True

The same decision through the session facade (every decision
procedure is a :class:`~repro.session.Session` method returning a
uniform :class:`~repro.session.Decision`; the free functions above are
shims onto the default session):

    >>> from repro import Session
    >>> decision = Session().equivalent_to_nonrecursive(
    ...     recursive, nonrecursive, goal="buys")
    >>> decision.kind, decision.verdict["equivalent"]
    ('equivalence', True)
"""

from .automata import KernelConfig, default_kernel, set_default_kernel
from .datalog import (
    Atom,
    Constant,
    Database,
    Program,
    Rule,
    Variable,
    evaluate,
    is_linear,
    is_nonrecursive,
    is_recursive,
    make_atom,
    parse_atom,
    parse_program,
    parse_rule,
    query,
    unfold_nonrecursive,
)
from .cq import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    cq_contained_in,
    cq_equivalent,
    evaluate_cq,
    minimize,
    ucq_contained_in,
)
from .core import (
    contained_in_cq,
    contained_in_nonrecursive,
    contained_in_ucq,
    cq_contained_in_datalog,
    decide_boundedness,
    is_equivalent_to_nonrecursive,
    nonrecursive_contained_in_datalog,
    ucq_contained_in_datalog,
)

from .session import (
    CachePolicy,
    Decision,
    Session,
    current_session,
    default_session,
    use_session,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "CachePolicy",
    "ConjunctiveQuery",
    "Constant",
    "Database",
    "Decision",
    "KernelConfig",
    "Program",
    "Rule",
    "Session",
    "UnionOfConjunctiveQueries",
    "Variable",
    "contained_in_cq",
    "contained_in_nonrecursive",
    "contained_in_ucq",
    "cq_contained_in",
    "cq_contained_in_datalog",
    "cq_equivalent",
    "current_session",
    "decide_boundedness",
    "default_kernel",
    "default_session",
    "evaluate",
    "evaluate_cq",
    "is_equivalent_to_nonrecursive",
    "is_linear",
    "is_nonrecursive",
    "is_recursive",
    "make_atom",
    "minimize",
    "nonrecursive_contained_in_datalog",
    "parse_atom",
    "parse_program",
    "parse_rule",
    "query",
    "set_default_kernel",
    "ucq_contained_in",
    "ucq_contained_in_datalog",
    "unfold_nonrecursive",
    "use_session",
]
