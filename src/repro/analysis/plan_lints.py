"""Join-plan lints: cost hazards the fused kernels silently absorb.

Each rule is compiled to its naive-variant :class:`JoinPlan`
(``delta_index=None``) and the step stream is inspected:

* **W005 cross-product-join** — a non-first step with no usable index
  position.  Because the compiler indexes the first constant or
  prefix-bound argument, ``index_spec is None`` on a later step means
  the atom shares *nothing* with the join prefix: the step enumerates
  the full relation per prefix row (a cartesian product).
* **W004 unindexed-probe** — a full-scan step whose ops include a
  register check.  With no constant or prefix-bound position this can
  only be an intra-atom repeated variable (``e(X, X)``): the filter
  runs row-at-a-time over the whole relation instead of probing an
  index.
* **W002 dead-register** — a register bound by ``OP_BIND`` that no
  later check, index probe, or head projection ever reads: a body
  variable joined on nothing and projected away.  The fused kernels
  eliminate these at execution time; the lint surfaces them so the
  rule author can too.

The lints are advisory (warnings): every flagged plan still executes
correctly, it just does more work than the rule needed to.
"""

from __future__ import annotations

from typing import List

from ..datalog.plan import JoinPlan, OP_BIND, OP_CHECK
from ..datalog.program import Program
from .diagnostics import Diagnostic, diagnostic

__all__ = ["plan_diagnostics"]


def plan_diagnostics(program: Program) -> List[Diagnostic]:
    found: List[Diagnostic] = []
    for index, rule in enumerate(program.rules):
        if not rule.body:
            continue
        plan = JoinPlan(rule, None)
        bound_regs: set = set()
        read_regs: set = set()
        bind_sites = {}
        for step_index, step in enumerate(plan.steps):
            predicate, _use_delta, index_spec, ops = step
            has_check = any(op == OP_CHECK for _pos, op, _payload in ops)
            if index_spec is None and step_index > 0:
                found.append(diagnostic(
                    "W005",
                    f"join step {step_index} scans all of {predicate!r} "
                    f"with no bound or constant position",
                    predicate=rule.head.predicate, rule=str(rule),
                    rule_index=index))
            elif index_spec is None and has_check:
                found.append(diagnostic(
                    "W004",
                    f"repeated-variable filter on {predicate!r} forces a "
                    f"full scan",
                    predicate=rule.head.predicate, rule=str(rule),
                    rule_index=index))
            if index_spec is not None:
                _pos, is_reg, payload = index_spec
                if is_reg:
                    read_regs.add(payload)
            for pos, op, payload in ops:
                if op == OP_BIND:
                    bound_regs.add(payload)
                    bind_sites.setdefault(payload, (predicate, pos))
                elif op == OP_CHECK:
                    read_regs.add(payload)
        for is_reg, payload in plan.head_ops:
            if is_reg:
                read_regs.add(payload)
        dead = sorted(bound_regs - read_regs)
        if dead:
            sites = ", ".join(
                f"{bind_sites[reg][0]}[{bind_sites[reg][1]}]"
                for reg in dead)
            found.append(diagnostic(
                "W002",
                f"{len(dead)} register(s) bound but never read "
                f"(from {sites})",
                predicate=rule.head.predicate, rule=str(rule),
                rule_index=index))
    return found
