"""Typed diagnostics: stable codes, severities, and the report shape.

Every finding the analyzer emits is a :class:`Diagnostic` carrying a
stable code from :data:`CODES`.  Codes are part of the public contract:
the CLI exit status, the service's ``bad-request`` payloads, and the
fuzz harness's soundness differential all key on them, so codes are
never renumbered or reused.

Severity tiers:

* ``error`` (``E``-codes) — the program is outside the contract the
  decision procedures assume; ``EngineConfig(validate=True)`` refuses
  to evaluate it and ``python -m repro analyze`` exits 1.
* ``warning`` (``W``-codes) — legal but suspicious: duplicated or
  unreachable rules, join plans with cost hazards.
* ``hint`` (``H``-codes) — positive certificates: the program falls in
  a syntactic class (nonrecursive, linear, sirup, chain, syntactically
  bounded) with cheaper decision procedures.

>>> diagnostic("E001", "head variable Y is not bound in the body").severity
'error'
>>> diagnostic("H005", "every rule has at most one IDB body atom").name
'chain-rule'
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "AnalysisReport",
    "CODES",
    "Diagnostic",
    "SEVERITIES",
    "diagnostic",
]

SEVERITIES = ("error", "warning", "hint")

# code -> (name, severity, fix hint).  Append-only; never renumber.
CODES: Dict[str, Tuple[str, str, str]] = {
    "E001": ("unsafe-rule", "error",
             "bind every head variable in a positive body atom "
             "(range restriction)"),
    "E002": ("undefined-predicate", "error",
             "add at least one rule or fact for the predicate, or query "
             "one that exists"),
    "E003": ("arity-mismatch", "error",
             "use one consistent arity for every predicate"),
    "E004": ("parse-error", "error",
             "fix the Datalog syntax at the reported position"),
    "W001": ("duplicate-rule", "warning",
             "delete the duplicate rule; it cannot change the fixpoint"),
    "W002": ("dead-register", "warning",
             "drop the body variable that is bound but never read, or "
             "project it into the head"),
    "W003": ("unreachable-rule", "warning",
             "the rule cannot contribute to the goal; delete it or "
             "re-target the query"),
    "W004": ("unindexed-probe", "warning",
             "the repeated-variable filter forces a full scan; bind one "
             "position earlier so the probe can use an index"),
    "W005": ("cross-product-join", "warning",
             "share a variable or constant with an earlier body atom to "
             "avoid the cartesian product"),
    "H001": ("syntactically-bounded", "hint",
             "Session.bounded certifies this goal at the reported depth"),
    "H002": ("nonrecursive", "hint",
             "equivalent to a union of conjunctive queries; containment "
             "is NP-complete instead of undecidable"),
    "H003": ("linear-rules", "hint",
             "at most one recursive body atom per rule; the linear "
             "fragment keeps equivalence decidable"),
    "H004": ("sirup", "hint",
             "single recursive rule: the sirup fragment of the paper"),
    "H005": ("chain-rule", "hint",
             "at most one IDB body atom per rule; containment runs on "
             "the word-automaton fast path"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, locatable and machine-readable."""

    code: str
    severity: str
    name: str
    message: str
    hint: str
    predicate: Optional[str] = None
    rule: Optional[str] = None
    rule_index: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "name": self.name,
            "message": self.message,
            "hint": self.hint,
        }
        if self.predicate is not None:
            record["predicate"] = self.predicate
        if self.rule is not None:
            record["rule"] = self.rule
        if self.rule_index is not None:
            record["rule_index"] = self.rule_index
        return record

    def render(self) -> str:
        location = ""
        if self.rule_index is not None:
            location = f" [rule {self.rule_index}]"
        elif self.predicate is not None:
            location = f" [{self.predicate}]"
        return (f"{self.code} {self.name}{location}: {self.message}"
                f" (hint: {self.hint})")


def diagnostic(code: str, message: str, *, predicate: Optional[str] = None,
               rule: Optional[str] = None,
               rule_index: Optional[int] = None) -> Diagnostic:
    """Build a :class:`Diagnostic`, filling severity/name/hint from
    :data:`CODES` (unknown codes are rejected)."""
    if code not in CODES:
        raise KeyError(f"unknown diagnostic code {code!r}")
    name, severity, hint = CODES[code]
    return Diagnostic(code=code, severity=severity, name=name,
                      message=message, hint=hint, predicate=predicate,
                      rule=rule, rule_index=rule_index)


@dataclass(frozen=True)
class AnalysisReport:
    """The full result of analyzing one program (plus optional goal).

    ``diagnostics`` is ordered: errors first, then warnings, then
    hints, each in discovery order.  ``classes`` lists the syntactic
    classes the program (or its goal slice) certifiably belongs to;
    ``certificates`` carries the machine-readable evidence fast paths
    consult (see :mod:`repro.analysis.checks`).
    """

    diagnostics: Tuple[Diagnostic, ...] = ()
    classes: Tuple[str, ...] = ()
    certificates: Dict[str, object] = field(default_factory=dict)
    goal: Optional[str] = None

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    @property
    def hints(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "hint")

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics were found."""
        return not self.errors

    def codes(self) -> Tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics)

    def boundedness_certificate(self) -> Optional[Dict[str, object]]:
        cert = self.certificates.get("bounded")
        return cert if isinstance(cert, dict) else None

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "goal": self.goal,
            "classes": list(self.classes),
            "certificates": self.certificates,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def render(self) -> str:
        lines = []
        for diag in self.diagnostics:
            lines.append(diag.render())
        counts = (f"{len(self.errors)} error(s), "
                  f"{len(self.warnings)} warning(s), "
                  f"{len(self.hints)} hint(s)")
        if self.classes:
            counts += "; classes: " + ", ".join(self.classes)
        lines.append(counts)
        return "\n".join(lines)
