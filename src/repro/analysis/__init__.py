"""Static program analysis: typed diagnostics and class certificates.

The analyzer inspects a :class:`~repro.datalog.program.Program` (no
database, no evaluation) and returns an
:class:`~repro.analysis.diagnostics.AnalysisReport`: a structured list
of typed :class:`~repro.analysis.diagnostics.Diagnostic` records with
stable codes, severities, locations, and fix hints, plus
machine-readable certificates of syntactic-class membership that
``Session.bounded``/``Session.contains`` can consult for fast paths.

Entry points: :func:`analyze_program` / :func:`analyze_source` here,
``Session.analyze`` on the facade, and ``python -m repro analyze`` on
the command line.

>>> from repro.analysis import analyze_source
>>> report = analyze_source("p(X, Y) :- e(X).", goal="p")
>>> [d.code for d in report.errors]
['E001']
>>> analyze_source("p(X) :- e(X).", goal="p").classes
('nonrecursive', 'linear', 'chain')
"""

from .checks import (
    analyze_program,
    analyze_source,
    boundedness_certificate,
    class_certificates,
    safety_errors,
)
from .diagnostics import CODES, SEVERITIES, AnalysisReport, Diagnostic, diagnostic
from .plan_lints import plan_diagnostics

__all__ = [
    "AnalysisReport",
    "CODES",
    "Diagnostic",
    "SEVERITIES",
    "analyze_program",
    "analyze_source",
    "boundedness_certificate",
    "class_certificates",
    "diagnostic",
    "plan_diagnostics",
    "safety_errors",
]
