"""The static analyzer: safety errors, class certificates, lints.

Three layers, cheapest first:

1. *Safety / well-formedness* — range restriction (E001), undefined
   goal predicates (E002), duplicate rules (W001).  Arity mismatches
   (E003) and parse errors (E004) can only be observed from source
   text, because :class:`~repro.datalog.program.Program` refuses to
   construct inconsistent arities; :func:`analyze_source` converts
   those constructor exceptions into diagnostics.
2. *Class certificates* — nonrecursive / linear / sirup / chain
   classification over the dependence graph (H002–H005), goal
   reachability slicing (W003), and the syntactic-boundedness
   sufficient conditions (H001) described below.
3. *Plan lints* — cost hazards in compiled join plans (W002, W004,
   W005); see :mod:`repro.analysis.plan_lints`.

Certificates are *sound but incomplete*: an emitted H001 must agree
with :func:`repro.core.boundedness.search_boundedness` (the fuzz
harness cross-checks this on every sweep), but plenty of bounded
programs get no certificate.

H001 is emitted under either of two sufficient conditions on the goal
slice, both proved by exhibiting containment homomorphisms between
expansion unions:

* **Nonrecursive slice.**  If no predicate reachable from the goal is
  recursive, every proof tree has height at most ``h(goal)`` where
  ``h(p) = max over rules for p of (1 + max h(q) over IDB body
  atoms)``, so the goal is bounded with depth ``h(goal)``.
* **Guarded self-recursion.**  If the goal is the only reachable IDB
  predicate, it has at least one nonrecursive rule, and every
  recursive rule has exactly one recursive atom whose arguments are
  (a) literally the head argument at a *common* set of pass-through
  positions shared by all recursive rules, or (b) a variable occurring
  exactly once in the rule (a "don't care"), then any proof of depth
  ``d > 2`` maps homomorphically onto a depth-2 proof: recursive
  levels only re-check EDB guards over pass-through arguments, so one
  level subsumes them all.  Depth bound 2.

The common-position requirement in (b) is essential: with two
recursive rules passing through *different* positions, alternating
them threads information through the recursion and the program can be
genuinely unbounded.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..datalog.analysis import (
    is_linear,
    is_nonrecursive,
    reachable_predicates,
    recursive_body_atoms,
    slice_for_goal,
    topological_order,
)
from ..datalog.errors import ArityError, ParseError
from ..datalog.parser import parse_program
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import is_variable
from ..core.word_path import is_chain_program
from .diagnostics import AnalysisReport, Diagnostic, diagnostic
from .plan_lints import plan_diagnostics

__all__ = [
    "analyze_program",
    "analyze_source",
    "boundedness_certificate",
    "class_certificates",
    "safety_errors",
]


def safety_errors(program: Program) -> List[Diagnostic]:
    """E001 diagnostics: rules violating range restriction.

    A rule is *safe* when every head variable occurs in the body;
    unsafe rules are evaluated under active-domain semantics by the
    engines, but fall outside the contract the paper's decision
    procedures assume, so the validate gate treats them as errors.
    """
    found = []
    for index, rule in enumerate(program.rules):
        if rule.is_safe:
            continue
        unbound = sorted(
            v.name for v in rule.head.variable_set() - rule.body_variables())
        found.append(diagnostic(
            "E001",
            f"head variable(s) {', '.join(unbound)} not bound in the body",
            predicate=rule.head.predicate, rule=str(rule), rule_index=index))
    return found


def _duplicate_rules(program: Program) -> List[Diagnostic]:
    seen: Dict[Rule, int] = {}
    found = []
    for index, rule in enumerate(program.rules):
        first = seen.setdefault(rule, index)
        if first != index:
            found.append(diagnostic(
                "W001", f"rule duplicates rule {first}",
                predicate=rule.head.predicate, rule=str(rule),
                rule_index=index))
    return found


def _goal_errors(program: Program, goal: str) -> List[Diagnostic]:
    if program.is_idb(goal):
        return []
    detail = ("only appears in rule bodies"
              if goal in program.predicates else "does not appear at all")
    return [diagnostic(
        "E002", f"goal {goal!r} is not an IDB predicate ({detail})",
        predicate=goal)]


def _unreachable_rules(program: Program, goal: str) -> List[Diagnostic]:
    reachable = reachable_predicates(program, goal)
    found = []
    for index, rule in enumerate(program.rules):
        if rule.head.predicate not in reachable:
            found.append(diagnostic(
                "W003",
                f"rule head {rule.head.predicate!r} is not reachable from "
                f"goal {goal!r}",
                predicate=rule.head.predicate, rule=str(rule),
                rule_index=index))
    return found


def class_certificates(
        program: Program,
        goal: Optional[str] = None) -> Tuple[List[str], List[Diagnostic]]:
    """Syntactic classes the whole program belongs to (H002–H005)."""
    classes: List[str] = []
    hints: List[Diagnostic] = []

    def note(name: str, code: str, message: str) -> None:
        classes.append(name)
        hints.append(diagnostic(code, message, predicate=goal))

    if is_nonrecursive(program):
        note("nonrecursive", "H002",
             "no predicate depends recursively on itself")
    if is_linear(program):
        note("linear", "H003",
             "every rule has at most one recursive body atom")
    recursive_rules = [
        rule for rule in program.rules
        if recursive_body_atoms(program, rule)]
    if len(recursive_rules) == 1:
        note("sirup", "H004",
             f"exactly one recursive rule: {recursive_rules[0]}")
    if program.rules and is_chain_program(program):
        note("chain", "H005",
             "every rule has at most one IDB body atom")
    return classes, hints


def _nonrecursive_depth(program: Program, goal: str) -> int:
    """Max proof-tree height for *goal* in a nonrecursive program."""
    height: Dict[str, int] = {}
    for predicate in topological_order(program):  # callees first
        best = 1
        for rule in program.rules_for(predicate):
            idb = program.idb_atoms_of(rule)
            depth = 1 + max((height[atom.predicate] for atom in idb),
                            default=0)
            best = max(best, depth)
        height[predicate] = best
    return height.get(goal, 1)


def _guarded_recursion_bound(program: Program, goal: str) -> bool:
    """True when the goal slice matches the guarded self-recursion
    pattern (depth bound 2); see the module docstring for the proof
    sketch and why pass-through positions must be common."""
    if set(program.idb_predicates) != {goal}:
        return False
    recursive_rules = []
    for rule in program.rules_for(goal):
        idb = program.idb_atoms_of(rule)
        if not idb:
            continue
        if len(idb) != 1 or idb[0].predicate != goal:
            return False
        recursive_rules.append((rule, idb[0]))
    base_rules = [rule for rule in program.rules_for(goal)
                  if not program.idb_atoms_of(rule)]
    if not recursive_rules or not base_rules:
        return False

    arity = program.arity[goal]
    passthrough = set(range(arity))
    for rule, atom in recursive_rules:
        passthrough &= {pos for pos in range(arity)
                        if atom.args[pos] == rule.head.args[pos]}
    for rule, atom in recursive_rules:
        occurrences: Dict[object, int] = {}
        for term in list(rule.head.args) + [
                arg for body_atom in rule.body for arg in body_atom.args]:
            occurrences[term] = occurrences.get(term, 0) + 1
        for pos in range(arity):
            if pos in passthrough:
                continue
            arg = atom.args[pos]
            if not is_variable(arg) or occurrences[arg] != 1:
                return False
    return True


def boundedness_certificate(
        program: Program, goal: str) -> Optional[Dict[str, object]]:
    """A machine-readable H001 certificate for *goal*, or ``None``.

    Only issued when the goal slice is safety-clean and the goal is
    defined — the certificate promises ``Session.bounded(program,
    goal, max_depth=depth_bound)`` returns ``bounded=True``, which the
    decision procedure only reports for programs inside its contract.
    """
    if not program.is_idb(goal):
        return None
    sliced = slice_for_goal(program, goal)
    if safety_errors(sliced):
        return None
    if is_nonrecursive(sliced):
        return {"code": "H001", "reason": "nonrecursive-slice",
                "depth_bound": _nonrecursive_depth(sliced, goal),
                "goal": goal}
    if _guarded_recursion_bound(sliced, goal):
        return {"code": "H001", "reason": "guarded-self-recursion",
                "depth_bound": 2, "goal": goal}
    return None


def _ordered(diagnostics: Sequence[Diagnostic]) -> Tuple[Diagnostic, ...]:
    rank = {"error": 0, "warning": 1, "hint": 2}
    return tuple(sorted(diagnostics, key=lambda d: rank[d.severity]))


def analyze_program(program: Program, goal: Optional[str] = None, *,
                    plans: bool = True) -> AnalysisReport:
    """Run every applicable check and assemble the report.

    ``plans=False`` skips the join-plan lints (used by hot callers
    such as the fuzz harness and certificate fast paths).
    """
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(safety_errors(program))
    diagnostics.extend(_duplicate_rules(program))
    if goal is not None:
        diagnostics.extend(_goal_errors(program, goal))
        if not any(d.code == "E002" for d in diagnostics):
            diagnostics.extend(_unreachable_rules(program, goal))
    if plans:
        diagnostics.extend(plan_diagnostics(program))

    classes: List[str] = []
    certificates: Dict[str, object] = {}
    if not any(d.severity == "error" for d in diagnostics):
        # Certificates are only trustworthy on well-formed programs.
        classes, hints = class_certificates(program, goal)
        diagnostics.extend(hints)
        if goal is not None:
            certificates["reachable"] = sorted(
                reachable_predicates(program, goal))
            bounded = boundedness_certificate(program, goal)
            if bounded is not None:
                certificates["bounded"] = bounded
                diagnostics.append(diagnostic(
                    "H001",
                    f"goal {goal!r} is syntactically bounded at depth "
                    f"{bounded['depth_bound']} ({bounded['reason']})",
                    predicate=goal))
    if classes:
        certificates["classes"] = list(classes)

    return AnalysisReport(diagnostics=_ordered(diagnostics),
                          classes=tuple(classes),
                          certificates=certificates, goal=goal)


def analyze_source(source: str, goal: Optional[str] = None, *,
                   plans: bool = True) -> AnalysisReport:
    """Analyze Datalog source text; syntax and arity failures become
    E004/E003 diagnostics instead of exceptions."""
    try:
        program = parse_program(source)
    except ParseError as exc:
        return AnalysisReport(
            diagnostics=(diagnostic("E004", str(exc)),), goal=goal)
    except ArityError as exc:
        return AnalysisReport(
            diagnostics=(diagnostic("E003", str(exc)),), goal=goal)
    return analyze_program(program, goal, plans=plans)
