"""The ``tag:stress`` tier: the paper's hardness constructions as
registered workloads.

The happy-path registry (:mod:`repro.workloads.scenarios`) exercises
the decision procedures where they succeed.  This module registers the
opposite regime -- the *lower-bound* instances of Sections 5.3 and 6
(:mod:`repro.lowerbounds`) and the Example 6.1 succinctness family --
so the antichain/bitset kernels are measured exactly where the paper
proves the problems get hard:

* **Decidable edge.** ``stress_space_bounded_probe`` runs the
  boundedness semi-decision at depth 1 on the Section 5.3 EXPSPACE
  encoding (no certificate: the chain program is unbounded), and
  ``stress_dist_equiv_3v2`` decides that ``dist(3)`` (paths of length
  8) is not ``dist(2)`` (length 4) -- both finish in seconds and give
  real verdicts under both kernels.
* **Budgeted wall.** The full containment questions of the encodings
  (Pi in Theta, Theorem 5.13; Pi in the unfolded Pi', Theorem 6.4 on
  the Section 6 pair) are EXPSPACE-hard *by construction*: even the
  minimal machine at n=1 does not finish.  Those scenarios carry a
  ``budget_s`` and register ``{"budget_exhausted": True}`` as their
  **expected** verdict -- the paper-faithful ground truth is "this
  instance is infeasible", and the budget makes that verdict
  deterministic and cheap (see :mod:`repro.budget`).
* **Evaluation blow-up.** ``stress_trace_eval_*_n2`` evaluate the
  Section 6 nonrecursive checker Pi' over trace databases at n=2,
  where the quadratic ``equal``-subprogram dominates -- a worst-case
  join workload for the columnar/row planes with ground truth from
  the trace construction (legal trace: no error derived; corrupted
  counter: exactly one).

Scenarios here are tagged ``stress`` (never ``bench``/``generated``,
so the perf-trajectory suites and the CI smoke matrices don't pick
them up implicitly) and the batch runner drops the interpretive
engine for the evaluation members, as it does for ``tag:scale``.
Select the tier with ``python -m repro scenarios --scenarios
tag:stress``.
"""

from __future__ import annotations

from ..datalog.unfold import unfold_nonrecursive
from ..lowerbounds.encoding_nonrec import encode_nonrecursive, trace_database
from ..lowerbounds.encoding_space import encode_deterministic
from ..lowerbounds.turing import sweeping_machine, tiny_accepting_machine
from ..programs.library import dist
from .scenarios import Scenario, register, rows_checksum

#: Wall-clock budget (seconds) for the provably-infeasible decisions.
#: Any value short of hours yields the same verdict -- the instances
#: are EXPSPACE-hard at n=1 already -- so this only bounds suite time.
STRESS_BUDGET_S = 1.5


def _space_bounded_payload():
    enc = encode_deterministic(sweeping_machine(), 1)
    return {"program": enc.program, "goal": "c", "max_depth": 1}


def _space_containment_payload():
    enc = encode_deterministic(tiny_accepting_machine(), 1)
    return {"program": enc.program, "goal": "c", "union": enc.union}


def _nonrec_containment_payload():
    enc = encode_nonrecursive(tiny_accepting_machine(), 1,
                              include_transition_errors=False)
    return {"program": enc.program, "goal": "c",
            "union": unfold_nonrecursive(enc.nonrecursive, "c")}


def _trace_eval_payload(corrupt_counter_at: int = -1):
    machine = sweeping_machine()
    enc = encode_nonrecursive(machine, 2, include_transition_errors=False)
    # Two configurations of 2^(2^2) = 16 cells each: enough points for
    # the quadratic distance subprograms to dominate, small enough to
    # finish in ~10s on the columnar plane.
    configurations = machine.run_configurations(16)[:2]
    db = trace_database(machine, configurations, 2,
                        corrupt_counter_at=corrupt_counter_at)
    return {"program": enc.nonrecursive, "goal": "c", "database": db}


register(Scenario(
    name="stress_space_bounded_probe",
    kind="boundedness",
    description="Section 5.3 EXPSPACE encoding (sweeping machine, n=1): "
                "the linear chain program is unbounded -- no certificate "
                "at depth 1 (the decidable edge of the hardness family)",
    build=_space_bounded_payload,
    expected={"bounded": None, "depth": None},
    tags=("stress", "lowerbound"), weight=5.0,
))

register(Scenario(
    name="stress_space_containment_n1",
    kind="containment",
    description="Theorem 5.13 instance (tiny machine, n=1): Pi in Theta "
                "is EXPSPACE-hard by construction; exhausting the budget "
                "IS the expected verdict",
    build=_space_containment_payload,
    expected={"budget_exhausted": True},
    tags=("stress", "lowerbound"), weight=10.0,
    budget_s=STRESS_BUDGET_S,
))

register(Scenario(
    name="stress_nonrec_containment_n1",
    kind="containment",
    description="Section 6 pair (tiny machine, n=1): Pi against the "
                "unfolded nonrecursive checker Pi' (Theorem 6.4 pathway); "
                "infeasible by construction, budgeted",
    build=_nonrec_containment_payload,
    expected={"budget_exhausted": True},
    tags=("stress", "lowerbound"), weight=10.0,
    budget_s=STRESS_BUDGET_S,
))

register(Scenario(
    name="stress_dist_equiv_3v2",
    kind="equivalence",
    description="Example 6.1 succinctness wall: dist(3) (paths of length "
                "8) vs dist(2) (length 4) -- decidable but seconds-scale, "
                "the largest dist pair both kernels still finish",
    build=lambda: {"program": dist(3), "nonrecursive": dist(2),
                   "goal": "dist3", "nonrecursive_goal": "dist2"},
    expected={"equivalent": False, "forward": False, "backward": False},
    tags=("stress", "succinctness"), weight=30.0,
))

register(Scenario(
    name="stress_dist_equiv_4v3",
    kind="equivalence",
    description="Example 6.1 one doubling further: dist(4) vs dist(3) "
                "(length-16 paths) crosses the feasibility wall; budgeted",
    build=lambda: {"program": dist(4), "nonrecursive": dist(3),
                   "goal": "dist4", "nonrecursive_goal": "dist3"},
    expected={"budget_exhausted": True},
    tags=("stress", "succinctness"), weight=10.0,
    budget_s=STRESS_BUDGET_S,
))

register(Scenario(
    name="stress_trace_eval_legal_n2",
    kind="evaluation",
    description="Section 6 checker Pi' over a legal 2-configuration "
                "trace at n=2 (quadratic equal-subprogram joins): a "
                "legal trace derives no error, so c is empty",
    build=_trace_eval_payload,
    expected={"count": 0, "checksum": rows_checksum(())},
    # active-domain: the Section 6 encoding uses bodiless variable-head
    # rules (dle0(X, X).) on purpose; the analyzer sweep accepts E001
    # on scenarios carrying this tag.
    tags=("stress", "lowerbound", "active-domain"), weight=200.0,
))

register(Scenario(
    name="stress_trace_eval_corrupt_n2",
    kind="evaluation",
    description="Section 6 checker Pi' over the same n=2 trace with one "
                "corrupted counter bit: exactly the nullary error fact "
                "c() is derived",
    build=lambda: _trace_eval_payload(corrupt_counter_at=0),
    expected={"count": 1, "checksum": rows_checksum([()])},
    tags=("stress", "lowerbound", "active-domain"), weight=200.0,
))
