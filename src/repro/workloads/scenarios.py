"""The scenario registry: named, self-checking decision workloads.

A :class:`Scenario` bundles one decision (or evaluation) job -- its
inputs, its kind, and its **expected ground truth** -- behind a stable
name.  The registry is the single catalogue that the batch runner
(:mod:`repro.runner`), the benchmark suite (``benchmarks/``), the CI
smoke matrix, and the tests all draw from, replacing the ad-hoc
configs that used to live in each ``benchmarks/bench_*.py``.

Kinds and their verdicts
------------------------

===============  ====================================================
kind             verdict (JSON-serializable, process-independent)
===============  ====================================================
``containment``  ``{"contained": bool}``
``equivalence``  ``{"equivalent", "forward", "backward": bool}``
``boundedness``  ``{"bounded": True|None, "depth": int|None}``
``evaluation``   ``{"count": int, "checksum": str}`` (sha1 of the
                 sorted goal rows -- stable across processes, unlike
                 ``hash()`` under ``PYTHONHASHSEED``)
``magic``        ``{"rows": int, "magic_beats_direct": bool}`` (the
                 derived-fact counts land in ``stats``)
===============  ====================================================

``run_scenario(scenario, engine=..., kernel=...)`` executes a scenario
under an explicit :class:`~repro.datalog.engine.Engine` and
:class:`~repro.automata.kernel.KernelConfig` and returns the ambient
session's :class:`~repro.session.Decision` -- dict-compatible, so
``result["verdict"]`` / ``result["ok"]`` / ``result["stats"]`` read as
before; the caller owns cache lifecycle.  Scenarios are rebuilt from
the registry *by name* inside worker processes, so nothing here needs
to pickle beyond the name strings.

    >>> from repro.workloads import get_scenario, run_scenario
    >>> run_scenario(get_scenario("bounded_buys"))["ok"]
    True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from ..automata.kernel import KernelConfig
from ..cq.query import UnionOfConjunctiveQueries
from ..datalog.engine import Engine
from ..datalog.magic import derived_fact_count, magic_query
from ..datalog.unfold import expansion_union
from ..programs.library import (
    buys_bounded,
    buys_bounded_rewriting,
    buys_recursive,
    buys_recursive_rewriting,
    dist,
    plain_transitive_closure,
    same_generation,
    transitive_closure,
    widget_certified,
    widget_certified_rewriting,
)
from ..core.boundedness import search_boundedness
from ..core.containment import decide_containment_in_ucq
from ..core.equivalence import decide_equivalence
from ..session import rows_checksum
from . import generators as gen

KINDS = ("containment", "equivalence", "boundedness", "evaluation", "magic")

#: Kinds decided by the automaton stack (the kernel matters); the
#: remaining kinds run on the evaluation engine (the engine matters).
DECISION_KINDS = ("containment", "equivalence", "boundedness")


@dataclass(frozen=True)
class Scenario:
    """One named, self-checking workload.

    ``build`` returns the scenario payload (programs, unions,
    databases) freshly on every call -- payloads are deterministic, so
    two builds are interchangeable.  ``expected`` is the ground-truth
    verdict computed by construction (see
    :mod:`repro.workloads.generators`), against which every run is
    checked.
    """

    name: str
    kind: str
    description: str
    build: Callable[[], Dict]
    expected: Mapping
    tags: Tuple[str, ...] = ()
    #: Rough relative cost of one run (1.0 = a few ms).  Only a load-
    #: balancing hint for the batch runner's shard dealer -- never
    #: affects verdicts or ordering of results.
    weight: float = 1.0
    #: Wall-clock budget in seconds, or None for unbudgeted.  The
    #: ``tag:stress`` tier runs the paper's lower-bound instances --
    #: EXPSPACE/2EXPTIME-hard *by construction* -- so exhausting the
    #: budget is their expected verdict: when the budget fires,
    #: :meth:`repro.session.Session.run_scenario` reports the verdict
    #: ``{"budget_exhausted": True}``, which such scenarios register
    #: as their ground truth (see :mod:`repro.workloads.stress`).
    budget_s: Optional[float] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown scenario kind {self.kind!r}")


class LazyExpected(Mapping):
    """A ground-truth verdict computed on first use.

    The ``tag:scale`` scenarios' oracles walk 10^5--10^6-fact edge
    lists; computing them eagerly at registration would tax every
    ``import repro.workloads``.  This Mapping defers the thunk until a
    run (or a test) actually compares against the verdict, then caches
    the dict.
    """

    __slots__ = ("_thunk", "_value")

    def __init__(self, thunk: Callable[[], Dict]):
        self._thunk = thunk
        self._value: Optional[Dict] = None

    def _materialize(self) -> Dict:
        if self._value is None:
            self._value = dict(self._thunk())
        return self._value

    def __getitem__(self, key):
        return self._materialize()[key]

    def __iter__(self) -> Iterator:
        return iter(self._materialize())

    def __len__(self) -> int:
        return len(self._materialize())

    def __repr__(self):
        if self._value is None:
            return "LazyExpected(<unevaluated>)"
        return f"LazyExpected({self._value!r})"


REGISTRY: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add *scenario* to the registry (names must be unique)."""
    if scenario.name in REGISTRY:
        raise ValueError(f"duplicate scenario name {scenario.name!r}")
    REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name (raises ``KeyError`` with the known
    names listed when absent)."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(REGISTRY))}"
        ) from None


def scenario_names(kind: Optional[str] = None,
                   tag: Optional[str] = None) -> List[str]:
    """Registered names, sorted, optionally filtered by kind / tag."""
    return sorted(
        name
        for name, s in REGISTRY.items()
        if (kind is None or s.kind == kind) and (tag is None or tag in s.tags)
    )


# ``rows_checksum`` is canonically defined on the session layer (it is
# the ``checksum`` hook of every evaluation Decision); re-exported here
# because the registry's ground-truth builders are its heaviest users.


# ----------------------------------------------------------------------
# Per-kind execution.
#
# The runners call the ``decide_*`` implementations with explicit
# engine/kernel configuration; :meth:`repro.session.Session.run_scenario`
# invokes them inside the session's activation, so the shared caches
# they touch resolve to that session's scope.
# ----------------------------------------------------------------------

def _run_containment(payload, engine, kernel):
    result = decide_containment_in_ucq(payload["program"], payload["goal"],
                                       payload["union"],
                                       method=payload.get("method", "auto"),
                                       kernel=kernel)
    return {"contained": result.contained}, dict(result.stats)


def _run_equivalence(payload, engine, kernel):
    result = decide_equivalence(
        payload["program"], payload["nonrecursive"], payload["goal"],
        nonrecursive_goal=payload.get("nonrecursive_goal"),
        engine=engine, kernel=kernel,
    )
    verdict = {"equivalent": result.equivalent,
               "forward": result.forward_holds,
               "backward": result.backward_holds}
    return verdict, dict(result.stats)


def _run_boundedness(payload, engine, kernel):
    result = search_boundedness(payload["program"], payload["goal"],
                                max_depth=payload.get("max_depth", 3),
                                engine=engine, kernel=kernel)
    return {"bounded": result.bounded, "depth": result.depth}, {}


def _run_evaluation(payload, engine, kernel):
    engine = engine or Engine()
    rows = engine.query(payload["program"], payload["database"],
                        payload["goal"])
    return {"count": len(rows), "checksum": rows_checksum(rows)}, {}


def _run_magic(payload, engine, kernel):
    rows = magic_query(payload["program"], payload["database"],
                       payload["goal"], payload["adornment"],
                       payload["bindings"], engine=engine)
    counts = derived_fact_count(payload["program"], payload["database"],
                                payload["goal"], payload["adornment"],
                                payload["bindings"], engine=engine)
    verdict = {"rows": len(rows),
               "magic_beats_direct": counts["magic"] < counts["direct"]}
    return verdict, dict(counts)


_RUNNERS = {
    "containment": _run_containment,
    "equivalence": _run_equivalence,
    "boundedness": _run_boundedness,
    "evaluation": _run_evaluation,
    "magic": _run_magic,
}


def kind_runner(kind: str) -> Callable:
    """The execution function for *kind*: ``fn(payload, engine, kernel)
    -> (verdict, stats)``.  Exposed for harnesses (``run_bench.py``)
    that time the bare decision call under explicit configurations
    without the :func:`run_scenario` wrapper."""
    return _RUNNERS[kind]


def run_scenario(scenario: Scenario,
                 engine: Optional[Engine] = None,
                 kernel: Optional[KernelConfig] = None):
    """Execute *scenario* and check its verdict against ground truth.

    Delegates to the ambient session
    (:meth:`repro.session.Session.run_scenario`) and returns its
    :class:`~repro.session.Decision` -- dict-compatible, so
    ``result["verdict"]`` / ``result["ok"]`` / ``result["stats"]``
    keep working.  ``engine``/``kernel`` override the session's
    configuration for this run; cache lifecycle belongs to the caller
    (:mod:`repro.runner`).
    """
    from ..session import current_session

    return current_session().run_scenario(scenario, engine=engine,
                                          kernel=kernel)


# ----------------------------------------------------------------------
# The registered catalogue.
#
# Builders are module-level closures over deterministic generator
# calls, so worker processes reconstruct identical payloads by name.
# ----------------------------------------------------------------------

def _containment(name, description, build, contained, tags=(), weight=1.0):
    register(Scenario(name=name, kind="containment",
                      description=description, build=build,
                      expected={"contained": contained}, tags=tuple(tags),
                      weight=weight))


def _equivalence(name, description, build, equivalent, forward, backward,
                 tags=(), weight=1.0):
    register(Scenario(name=name, kind="equivalence",
                      description=description, build=build,
                      expected={"equivalent": equivalent, "forward": forward,
                                "backward": backward},
                      tags=tuple(tags), weight=weight))


def _boundedness(name, description, build, bounded, depth, tags=(),
                 weight=1.0):
    register(Scenario(name=name, kind="boundedness",
                      description=description, build=build,
                      expected={"bounded": bounded, "depth": depth},
                      tags=tuple(tags), weight=weight))


# --- containment ------------------------------------------------------

_containment(
    "contain_chain_w1",
    "guarded chain (width 1) in its covering union (Theorem 5.12, holds)",
    lambda: {"program": gen.guarded_chain(1), "goal": "p",
             "union": gen.covering_union()},
    contained=True, tags=("bench", "chain"),
)

_containment(
    "contain_chain_w2",
    "guarded chain (width 2) in its covering union (wider instance space)",
    lambda: {"program": gen.guarded_chain(2), "goal": "p",
             "union": gen.covering_union()},
    contained=True, tags=("bench", "chain"), weight=3.0,
)

_containment(
    "contain_tc_trunc1",
    "transitive closure in its depth-1 truncation (fails immediately)",
    lambda: {"program": transitive_closure(), "goal": "p",
             "union": expansion_union(transitive_closure(), "p", 1)},
    contained=False, tags=("bench", "truncation"),
)

_containment(
    "contain_tc_trunc2",
    "transitive closure in its depth-2 truncation (fails: unbounded)",
    lambda: {"program": transitive_closure(), "goal": "p",
             "union": expansion_union(transitive_closure(), "p", 2)},
    contained=False, tags=("bench", "truncation"),
)

_containment(
    "contain_tc_trunc3",
    "transitive closure in its depth-3 truncation (fails, deeper search)",
    lambda: {"program": transitive_closure(), "goal": "p",
             "union": expansion_union(transitive_closure(), "p", 3)},
    contained=False, tags=("bench", "truncation"),
)

_containment(
    "contain_tc_trunc2_word",
    "depth-2 truncation via the forced word-automaton pathway "
    "(chain-form program, Proposition 4.3)",
    lambda: {"program": transitive_closure(), "goal": "p",
             "union": expansion_union(transitive_closure(), "p", 2),
             "method": "word"},
    contained=False, tags=("word", "truncation"),
)

_containment(
    "contain_sirup_s7",
    "random sirup (seed 7) in its covering union (holds by construction)",
    lambda: {"program": gen.sirup(2, seed=7), "goal": "p",
             "union": gen.sirup_covering_union(2, seed=7)},
    contained=True, tags=("generated", "sirup"), weight=20.0,
)

_containment(
    "contain_sirup_s11_uncovered",
    "random sirup (seed 11) against a union missing the base disjunct "
    "(fails with a depth-0 witness)",
    lambda: {"program": gen.sirup(2, seed=11), "goal": "p",
             "union": UnionOfConjunctiveQueries(
                 list(gen.sirup_covering_union(2, seed=11))[1:])},
    contained=False, tags=("generated", "sirup"),
)

_containment(
    "contain_alternating_trunc2",
    "alternating p/q recursion in its depth-2 truncation (fails)",
    lambda: {"program": gen.alternating_recursion(), "goal": "p",
             "union": expansion_union(gen.alternating_recursion(), "p", 2)},
    contained=False, tags=("alternating", "truncation"),
)

# --- equivalence ------------------------------------------------------

_equivalence(
    "equiv_buys_bounded",
    "Example 1.1: Pi_1 is equivalent to its nonrecursive rewriting",
    lambda: {"program": buys_bounded(),
             "nonrecursive": buys_bounded_rewriting(), "goal": "buys"},
    equivalent=True, forward=True, backward=True, tags=("paper", "bench"),
)

_equivalence(
    "equiv_buys_recursive",
    "Example 1.1: Pi_2 is inherently recursive (forward containment fails)",
    lambda: {"program": buys_recursive(),
             "nonrecursive": buys_recursive_rewriting(), "goal": "buys"},
    equivalent=False, forward=False, backward=True, tags=("paper", "bench"),
)

_equivalence(
    "equiv_widget",
    "certified-supplier program equals its depth-2 rewriting",
    lambda: {"program": widget_certified(),
             "nonrecursive": widget_certified_rewriting(), "goal": "ok"},
    equivalent=True, forward=True, backward=True, tags=("bench",),
)

_equivalence(
    "equiv_bounded_family_s3",
    "generated bounded program (2 guards, seed 3) equals its rewriting",
    lambda: {"program": gen.bounded_program(2, seed=3),
             "nonrecursive": gen.bounded_rewriting(2, seed=3), "goal": "p"},
    equivalent=True, forward=True, backward=True, tags=("generated",),
)

_equivalence(
    "equiv_dist_mismatch",
    "Example 6.1: dist(2) (paths of length 4) is not dist(1) (length 2)",
    lambda: {"program": dist(2), "nonrecursive": dist(1), "goal": "dist2",
             "nonrecursive_goal": "dist1"},
    equivalent=False, forward=False, backward=False, tags=("paper",),
    weight=3.0,
)

# --- boundedness ------------------------------------------------------

_boundedness(
    "bounded_buys",
    "Example 1.1: Pi_1 certified bounded at depth 2",
    lambda: {"program": buys_bounded(), "goal": "buys", "max_depth": 3},
    bounded=True, depth=2, tags=("paper", "bench"),
)

_boundedness(
    "bounded_widget",
    "certified-supplier program certified bounded at depth 2",
    lambda: {"program": widget_certified(), "goal": "ok", "max_depth": 3},
    bounded=True, depth=2, tags=("bench",),
)

_boundedness(
    "bounded_family_s5",
    "generated bounded program (3 guards, seed 5) certified at depth 2",
    lambda: {"program": gen.bounded_program(3, seed=5), "goal": "p",
             "max_depth": 3},
    bounded=True, depth=2, tags=("generated",), weight=3.0,
)

_boundedness(
    "unbounded_tc",
    "transitive closure: no certificate up to depth 3 (unbounded)",
    lambda: {"program": transitive_closure(), "goal": "p", "max_depth": 3},
    bounded=None, depth=None, tags=("bench",),
)

_boundedness(
    "unbounded_sirup_s9",
    "random sirup (seed 9): no certificate up to depth 3 (unbounded)",
    lambda: {"program": gen.sirup(1, seed=9), "goal": "p", "max_depth": 3},
    bounded=None, depth=None, tags=("generated", "sirup"),
)

# --- evaluation -------------------------------------------------------

def _eval_chain_payload():
    edges = gen.chain_edges(120)
    return {"program": transitive_closure(), "goal": "p",
            "database": gen.edges_database(edges, ("e", "e0"))}


def _eval_grid_payload():
    edges = gen.grid_edges(10, 10)
    return {"program": plain_transitive_closure(), "goal": "p",
            "database": gen.edges_database(edges, ("e",))}


def _eval_random_payload():
    edges = gen.random_graph_edges(60, 180, seed=13)
    return {"program": plain_transitive_closure(), "goal": "p",
            "database": gen.edges_database(edges, ("e",))}


def _eval_sg_payload():
    return {"program": same_generation(), "goal": "sg",
            "database": gen.tree_updown_database(5, 2)}


def _evaluation(name, description, build, expected_rows, tags=()):
    """Register an evaluation scenario whose ground truth (count and
    row checksum) comes from a *structurally* computed row set -- the
    engine's answer is checked against graph walks, not against
    itself."""
    register(Scenario(
        name=name, kind="evaluation", description=description, build=build,
        expected={"count": len(expected_rows),
                  "checksum": rows_checksum(expected_rows)},
        tags=tuple(tags),
    ))


_evaluation(
    "eval_tc_chain_120",
    "transitive closure over a 120-edge chain (7260 paths)",
    _eval_chain_payload,
    gen.reachable_pairs(gen.chain_edges(120)),
    tags=("bench", "chain"),
)

_evaluation(
    "eval_tc_grid_10x10",
    "nonlinear reachability over a 10x10 monotone grid",
    _eval_grid_payload,
    gen.reachable_pairs(gen.grid_edges(10, 10)),
    tags=("bench", "grid"),
)

_evaluation(
    "eval_tc_random_s13",
    "reachability over a random graph (60 nodes, seed 13)",
    _eval_random_payload,
    gen.reachable_pairs(gen.random_graph_edges(60, 180, seed=13)),
    tags=("generated",),
)

_evaluation(
    "eval_sg_tree_d5",
    "same-generation over a binary tree of depth 5 "
    "(equal-depth pairs: sum of 4^d)",
    _eval_sg_payload,
    gen.same_depth_pairs(5, 2),
    tags=("bench", "tree"),
)

# --- the scale tier (tag:scale) ---------------------------------------
#
# Large-EDB evaluation scenarios for the columnar data plane: 10^5-fact
# databases whose answers stay linear in the input (two-hop joins,
# single-source reachability), so the join work -- not the output
# materialization -- is what gets measured.  Ground truth comes from
# single-pass structural oracles and is computed lazily (LazyExpected)
# the first time a run checks its verdict.


def _scale_evaluation(name, description, build, rows_thunk, tags=("scale",),
                      weight=50.0):
    """Register a large-EDB evaluation scenario; *rows_thunk* produces
    the structurally-computed expected row set on demand."""
    register(Scenario(
        name=name, kind="evaluation", description=description, build=build,
        expected=LazyExpected(lambda: {
            "count": len(rows := rows_thunk()),
            "checksum": rows_checksum(rows),
        }),
        tags=tuple(tags), weight=weight,
    ))


def _scale_chain_payload(length):
    return lambda: {"program": gen.two_hop_program(), "goal": "p",
                    "database": gen.edges_database(gen.chain_edges(length),
                                                   ("e",))}


def _scale_random_payload(nodes, edges, seed):
    def build():
        db = gen.edges_database(
            gen.random_graph_edges(nodes, edges, seed=seed), ("e",))
        db.add("src", ("u0",))
        return {"program": gen.single_source_reach(), "goal": "r",
                "database": db}
    return build


def _scale_grid_payload(rows, cols):
    def build():
        db = gen.edges_database(gen.grid_edges(rows, cols), ("e",))
        db.add("src", ("g0_0",))
        return {"program": gen.single_source_reach(), "goal": "r",
                "database": db}
    return build


_scale_evaluation(
    "scale_chain_2hop_100k",
    "two-hop join over a 100k-edge chain (pure join, one stage)",
    _scale_chain_payload(100_000),
    lambda: gen.two_hop_pairs(gen.chain_edges(100_000)),
)

_scale_evaluation(
    "scale_random_reach_120k",
    "single-source reachability over a random graph "
    "(60k nodes, 120k edges, seed 29)",
    _scale_random_payload(60_000, 120_000, 29),
    lambda: {(node,) for node in gen.reachable_from(
        gen.random_graph_edges(60_000, 120_000, seed=29), "u0")},
)

_scale_evaluation(
    "scale_grid_reach_230x230",
    "corner reachability over a 230x230 monotone grid "
    "(105k edges, ~459 semi-naive rounds)",
    _scale_grid_payload(230, 230),
    lambda: {(node,) for node in gen.reachable_from(
        gen.grid_edges(230, 230), "g0_0")},
)

_scale_evaluation(
    "scale_chain_2hop_5k",
    "two-hop join over a 5k-edge chain (smoke-size probe of the scale "
    "tier's shape)",
    _scale_chain_payload(5_000),
    lambda: gen.two_hop_pairs(gen.chain_edges(5_000)),
    tags=("scale", "smoke"), weight=3.0,
)

# --- magic ------------------------------------------------------------

register(Scenario(
    name="magic_star_8x12",
    kind="magic",
    description="bound-first reachability on an 8-ray star: magic "
                "derives an order of magnitude fewer facts",
    build=lambda: {"program": plain_transitive_closure(), "goal": "p",
                   "database": gen.edges_database(gen.star_edges(8, 12),
                                                  ("e",)),
                   "adornment": "bf", "bindings": ("r0_0",)},
    expected={"rows": 12, "magic_beats_direct": True},
    tags=("bench", "magic"),
))
