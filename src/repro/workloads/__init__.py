"""Scenario workloads: generated program/EDB families with known
ground truth, and the named-scenario registry the batch runner, the
benchmark suite, and CI all draw from.

See :mod:`repro.workloads.generators` for the families and
:mod:`repro.workloads.scenarios` for the catalogue;
``docs/BENCHMARKS.md`` is the user-facing reference.

    >>> from repro.workloads import scenario_names
    >>> len(scenario_names()) >= 12
    True
"""

from .generators import (
    alternating_recursion,
    bounded_program,
    bounded_rewriting,
    bounded_unbounded_pairs,
    chain_edges,
    covering_union,
    edges_database,
    grid_edges,
    guarded_chain,
    power_law_edges,
    random_graph_edges,
    random_program,
    reachable_from,
    reachable_pair_count,
    reachable_pairs,
    road_network_edges,
    same_depth_pair_count,
    same_depth_pairs,
    single_source_reach,
    sirup,
    sirup_covering_union,
    star_edges,
    tree_edges,
    tree_updown_database,
    two_hop_pairs,
    two_hop_program,
    unbounded_program,
)
from .scenarios import (
    DECISION_KINDS,
    KINDS,
    LazyExpected,
    REGISTRY,
    Scenario,
    get_scenario,
    kind_runner,
    register,
    rows_checksum,
    run_scenario,
    scenario_names,
)
from . import stress  # noqa: F401,E402  (registers the tag:stress tier)

__all__ = [
    "DECISION_KINDS",
    "KINDS",
    "LazyExpected",
    "REGISTRY",
    "Scenario",
    "alternating_recursion",
    "bounded_program",
    "bounded_rewriting",
    "bounded_unbounded_pairs",
    "chain_edges",
    "covering_union",
    "edges_database",
    "get_scenario",
    "grid_edges",
    "guarded_chain",
    "kind_runner",
    "power_law_edges",
    "random_graph_edges",
    "random_program",
    "reachable_from",
    "reachable_pair_count",
    "reachable_pairs",
    "register",
    "road_network_edges",
    "rows_checksum",
    "run_scenario",
    "same_depth_pair_count",
    "same_depth_pairs",
    "scenario_names",
    "single_source_reach",
    "sirup",
    "sirup_covering_union",
    "star_edges",
    "tree_edges",
    "tree_updown_database",
    "two_hop_pairs",
    "two_hop_program",
    "unbounded_program",
]
