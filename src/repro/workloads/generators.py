"""Seed-deterministic generators for structured workload families.

The paper's decision procedures are exercised in the test suite by
hand-picked programs (:mod:`repro.programs`); this module opens the
*scenario axis*: parameterized families of programs and EDB databases
whose ground-truth verdicts are known **by construction**, so a batch
of thousands of decisions can be checked end-to-end without trusting
the procedures being measured.

Two design rules hold throughout:

* **Determinism** -- every generator that uses randomness takes a
  ``seed`` and draws only from its own ``random.Random(seed)``; the
  same seed always yields the identical program / database / expected
  verdict (tested in ``tests/test_workloads.py``).  Nothing reads
  global RNG state.
* **Independent ground truth** -- expected answers are computed
  structurally (graph walks over the generated edge lists, closed-form
  counts), never by running the engine or the automata under test.

Program families
----------------

==============================  ========================================
family                          shape / known verdict
==============================  ========================================
:func:`guarded_chain`           linear recursion, *width* EDB guards
                                (re-export of
                                :func:`repro.programs.chain_program`);
                                contained in :func:`covering_union`
:func:`sirup`                   single recursive rule over a random
                                EDB chain; contained in its
                                :func:`sirup_covering_union`, unbounded
:func:`alternating_recursion`   two mutually recursive predicates
                                (proof trees alternate p/q labels)
:func:`bounded_program`         Example 1.1's guard pattern with a
                                random guard pool: bounded with
                                certificate depth 2, equivalent to
                                :func:`bounded_rewriting`
:func:`unbounded_program`       transitive closure over random
                                predicate names: no depth-k
                                certificate exists for any k
:func:`bounded_unbounded_pairs` labeled stream mixing the two above
==============================  ========================================

EDB families
------------

:func:`chain_edges`, :func:`tree_edges`, :func:`grid_edges`,
:func:`random_graph_edges`, :func:`star_edges`,
:func:`power_law_edges` (preferential attachment: hub-skewed degree
profiles), and :func:`road_network_edges` (two-way street grids with
closed roads and highway shortcuts) produce edge lists; :func:`edges_database` and :func:`tree_updown_database` turn
them into :class:`~repro.datalog.database.Database` values; the
structural oracles (:func:`reachable_pairs`, :func:`reachable_from`,
:func:`two_hop_pairs`, :func:`same_depth_pairs` and the ``*_count``
forms) supply evaluation ground truth without running the engine.
:func:`two_hop_program`, :func:`single_source_reach`, and
:func:`random_program` are the programs of the ``tag:scale`` tier and
the backend differential fuzz suite (``tests/test_columnar.py``).

Doctest smoke (same seed, same program)::

    >>> from repro.workloads.generators import sirup
    >>> str(sirup(2, seed=7)) == str(sirup(2, seed=7))
    True
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..datalog.database import Database
from ..datalog.parser import parse_atom, parse_program
from ..datalog.program import Program
from ..programs.library import chain_program as guarded_chain  # noqa: F401

Edge = Tuple[str, str]

# Deterministic predicate-name pools the random families draw from.
_EDB_POOL = ("edge", "link", "hop", "wire", "road", "pipe")
_GUARD_POOL = ("trendy", "blanket", "vip", "flag", "mark", "hot")


# ----------------------------------------------------------------------
# Program families.
# ----------------------------------------------------------------------

def sirup(body_length: int, seed: int = 0) -> Program:
    """A *single recursive rule program* (sirup) over a random chain.

    The recursive rule threads *body_length* EDB atoms (predicates
    drawn deterministically from a small pool) from the head variable
    to the recursive call; a single base rule reads ``base``::

        p(X, Y) :- edge(X, V1), hop(V1, V2), p(V2, Y).
        p(X, Y) :- base(X, Y).

    Every sirup of this family is unbounded (each unfolding adds a
    fresh EDB chain) and is contained in
    :func:`sirup_covering_union` by construction.
    """
    if body_length < 1:
        raise ValueError("body_length must be >= 1")
    rng = random.Random(seed)
    preds = [rng.choice(_EDB_POOL) for _ in range(body_length)]
    variables = ["X"] + [f"V{i}" for i in range(1, body_length)] + ["Z"]
    chain = ", ".join(
        f"{pred}({variables[i]}, {variables[i + 1]})"
        for i, pred in enumerate(preds)
    )
    return parse_program(
        f"""
        p(X, Y) :- {chain}, p(Z, Y).
        p(X, Y) :- base(X, Y).
        """
    )


def sirup_first_predicate(body_length: int, seed: int = 0) -> str:
    """The first EDB predicate of :func:`sirup`'s recursive rule (the
    same draw sequence, so it matches the generated program)."""
    rng = random.Random(seed)
    return rng.choice(_EDB_POOL)


def sirup_covering_union(body_length: int, seed: int = 0) -> UnionOfConjunctiveQueries:
    """A union that covers every expansion of ``sirup(body_length, seed)``.

    A depth-0 expansion is ``base(X, Y)``; every deeper expansion
    starts with the recursive rule's first EDB atom out of ``X``.  Both
    shapes appear as disjuncts, so containment holds by construction.
    """
    first = sirup_first_predicate(body_length, seed)
    return UnionOfConjunctiveQueries(
        [
            ConjunctiveQuery(parse_atom("p(X, Y)"), (parse_atom("base(X, Y)"),)),
            ConjunctiveQuery(parse_atom("p(X, Y)"), (parse_atom(f"{first}(X, Z)"),)),
        ]
    )


def covering_union() -> UnionOfConjunctiveQueries:
    """The union covering every :func:`guarded_chain` program:
    'some g0-edge out of X0' or 'a bare e0 edge' (the second disjunct
    is deliberately unsafe -- the head variable X1 does not occur in
    the body -- which the containment procedures must handle)."""
    return UnionOfConjunctiveQueries(
        [
            ConjunctiveQuery(parse_atom("p(X0, X1)"), (parse_atom("e0(X0, X1)"),)),
            ConjunctiveQuery(parse_atom("p(X0, X1)"), (parse_atom("g0(X0, Z)"),)),
        ]
    )


def alternating_recursion() -> Program:
    """Two mutually recursive predicates: proof trees alternate
    ``p``/``q`` nodes, exercising multi-predicate automata alphabets."""
    return parse_program(
        """
        p(X, Y) :- e(X, Z), q(Z, Y).
        q(X, Y) :- f(X, Z), p(Z, Y).
        p(X, Y) :- e0(X, Y).
        q(X, Y) :- f0(X, Y).
        """
    )


def bounded_program(guards: int, seed: int = 0) -> Program:
    """Example 1.1's bounded pattern with a random pool of *guards*.

    Each recursive rule guards on a nullary-ish test of the head
    variable and recurses on a fresh variable::

        p(X, Y) :- base(X, Y).
        p(X, Y) :- trendy(X), p(Z, Y).     # one rule per guard

    Ground truth by the paper's argument for Pi_1: every depth-d
    expansion ``g1(X), g2(Z1), ..., base(Zd, Y)`` admits a
    homomorphism from the depth-2 expansion ``g1(X), base(Z, Y)``, so
    the program is **bounded with certificate depth 2** (depth 1 --
    the base rule alone -- never suffices) and equivalent to
    :func:`bounded_rewriting`.
    """
    if guards < 1:
        raise ValueError("guards must be >= 1")
    rng = random.Random(seed)
    names = rng.sample(_GUARD_POOL, guards)
    rules = ["p(X, Y) :- base(X, Y)."]
    rules += [f"p(X, Y) :- {name}(X), p(Z, Y)." for name in names]
    return parse_program("\n".join(rules))


def bounded_rewriting(guards: int, seed: int = 0) -> Program:
    """The nonrecursive rewriting of :func:`bounded_program` (same
    draw sequence): each recursive rule's ``p(Z, Y)`` is replaced by
    ``base(Z, Y)``."""
    if guards < 1:
        raise ValueError("guards must be >= 1")
    rng = random.Random(seed)
    names = rng.sample(_GUARD_POOL, guards)
    rules = ["p(X, Y) :- base(X, Y)."]
    rules += [f"p(X, Y) :- {name}(X), base(Z, Y)." for name in names]
    return parse_program("\n".join(rules))


def unbounded_program(seed: int = 0) -> Program:
    """Transitive closure over randomly named predicates: unbounded
    (depth-d expansions have ever-longer EDB chains, so no truncation
    union ever contains the program)."""
    rng = random.Random(seed)
    edge = rng.choice(_EDB_POOL)
    return parse_program(
        f"""
        p(X, Y) :- {edge}(X, Z), p(Z, Y).
        p(X, Y) :- base(X, Y).
        """
    )


def two_hop_program() -> Program:
    """``p(X, Y) :- e(X, Z), e(Z, Y).`` -- the nonrecursive two-hop
    join, the scale tier's pure-join workload (output is linear on
    chain EDBs)."""
    return parse_program("p(X, Y) :- e(X, Z), e(Z, Y).")


def single_source_reach() -> Program:
    """Single-source reachability: ``r`` holds the nodes reachable from
    the ``src`` seed(s).  The scale tier's recursive workload -- the
    answer stays linear in the EDB while the semi-naive frontier sweeps
    the whole graph."""
    return parse_program(
        """
        r(X) :- src(X).
        r(Y) :- r(X), e(X, Y).
        """
    )


def random_program(seed: int = 0, max_rules: int = 4) -> Program:
    """A small random positive program for differential fuzzing.

    Draws 2..*max_rules* rules over tiny predicate/variable pools:
    linear-recursive, nonrecursive, constant-carrying, repeated-variable
    and (occasionally) unsafe rules all occur, so the three evaluation
    backends are exercised across the full op vocabulary of the plan
    compiler.  Deterministic in *seed*; always terminates (Datalog).
    """
    rng = random.Random(seed)
    edb = [rng.choice(_EDB_POOL) for _ in range(2)]
    variables = ["X", "Y", "Z", "W"]
    rules = [f"p(X, Y) :- {edb[0]}(X, Y)."]
    for _ in range(rng.randint(1, max_rules - 1)):
        shape = rng.randrange(5)
        if shape == 0:  # linear recursion
            rules.append(f"p(X, Y) :- {rng.choice(edb)}(X, Z), p(Z, Y).")
        elif shape == 1:  # join with repeated variable
            a, b = rng.sample(variables, 2)
            rules.append(f"q({a}) :- {edb[0]}({a}, {b}), {edb[1]}({b}, {b}).")
        elif shape == 2:  # constant in the body
            rules.append(f"p(X, Y) :- {edb[1]}(X, Y), {edb[0]}(v0, X).")
        elif shape == 3:  # unsafe head variable (active-domain semantics)
            rules.append(f"s(X, Y) :- {rng.choice(edb)}(X, X).")
        else:  # nonlinear recursion
            rules.append("p(X, Y) :- p(X, Z), p(Z, Y).")
    return parse_program("\n".join(rules))


def bounded_unbounded_pairs(count: int, seed: int = 0) -> List[Tuple[Program, str, bool]]:
    """A labeled stream of ``(program, goal, is_bounded)`` triples.

    Roughly half the programs are :func:`bounded_program` instances
    (label ``True``: certificate exists at depth 2) and half
    :func:`unbounded_program` instances (label ``False``: no depth-k
    certificate for any k).  The mix and sub-seeds derive from *seed*
    only.
    """
    rng = random.Random(seed)
    out: List[Tuple[Program, str, bool]] = []
    for _ in range(count):
        sub = rng.randrange(1 << 30)
        if rng.random() < 0.5:
            out.append((bounded_program(1 + sub % 3, seed=sub), "p", True))
        else:
            out.append((unbounded_program(seed=sub), "p", False))
    return out


# ----------------------------------------------------------------------
# EDB families (edge lists + Database builders).
# ----------------------------------------------------------------------

def chain_edges(length: int) -> List[Edge]:
    """``v0 -> v1 -> ... -> v<length>``."""
    return [(f"v{i}", f"v{i+1}") for i in range(length)]


def tree_edges(depth: int, branching: int) -> List[Edge]:
    """Parent->child edges of the complete *branching*-ary tree with
    *depth* levels below the root ``n``."""
    edges: List[Edge] = []
    frontier = ["n"]
    for _ in range(depth):
        nxt: List[str] = []
        for node in frontier:
            for child in range(branching):
                name = f"{node}{child}"
                edges.append((node, name))
                nxt.append(name)
        frontier = nxt
    return edges


def grid_edges(rows: int, cols: int) -> List[Edge]:
    """Right/down edges of a *rows* x *cols* grid (monotone paths)."""
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((f"g{r}_{c}", f"g{r}_{c+1}"))
            if r + 1 < rows:
                edges.append((f"g{r}_{c}", f"g{r+1}_{c}"))
    return edges


def random_graph_edges(nodes: int, edges: int, seed: int = 0) -> List[Edge]:
    """*edges* distinct directed edges (no self-loops) over *nodes*
    vertices, drawn deterministically from ``Random(seed)``."""
    rng = random.Random(seed)
    names = [f"u{i}" for i in range(nodes)]
    seen: Set[Edge] = set()
    out: List[Edge] = []
    limit = nodes * (nodes - 1)
    target = min(edges, limit)
    while len(out) < target:
        a, b = rng.choice(names), rng.choice(names)
        if a != b and (a, b) not in seen:
            seen.add((a, b))
            out.append((a, b))
    return out


def star_edges(rays: int, length: int) -> List[Edge]:
    """Disjoint chains ``r<k>_0 -> ... -> r<k>_<length>`` (only one is
    relevant to a bound-first query -- the magic-sets sweet spot)."""
    return [
        (f"r{ray}_{i}", f"r{ray}_{i+1}")
        for ray in range(rays)
        for i in range(length)
    ]


def power_law_edges(nodes: int, edges: int, seed: int = 0) -> List[Edge]:
    """*edges* distinct directed edges over *nodes* vertices with a
    power-law degree profile (preferential attachment: targets are
    drawn from a degree-weighted urn, so a few hubs collect most of
    the in/out-degree).  Deterministic in *seed*; the skewed join
    cardinalities are what the differential fuzz sweep uses to stress
    the batch join kernels against the row-at-a-time reference."""
    if nodes < 2:
        raise ValueError("nodes must be >= 2")
    rng = random.Random(seed)
    names = [f"h{i}" for i in range(nodes)]
    urn: List[int] = [0, 1]  # seed hubs; grows with every endpoint drawn
    seen: Set[Edge] = set()
    out: List[Edge] = []
    target = min(edges, nodes * (nodes - 1))
    attempts = 0
    while len(out) < target and attempts < 50 * target + 100:
        attempts += 1
        a = urn[rng.randrange(len(urn))] if rng.random() < 0.5 else rng.randrange(nodes)
        b = urn[rng.randrange(len(urn))] if rng.random() < 0.8 else rng.randrange(nodes)
        if a == b or (names[a], names[b]) in seen:
            continue
        seen.add((names[a], names[b]))
        out.append((names[a], names[b]))
        urn.extend((a, b))
    return out


def road_network_edges(rows: int, cols: int, seed: int = 0) -> List[Edge]:
    """A road-network-like graph: a *rows* x *cols* grid of two-way
    streets with a deterministic 10% of segments missing (closed
    roads) plus a handful of one-way long-range highways.  Unlike the
    monotone :func:`grid_edges`, the two-way streets create cycles, so
    reachability closures exercise the semi-naive frontier's
    revisiting behaviour."""
    rng = random.Random(seed)
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            here = f"rd{r}_{c}"
            if c + 1 < cols and rng.random() < 0.9:
                edges.append((here, f"rd{r}_{c+1}"))
                edges.append((f"rd{r}_{c+1}", here))
            if r + 1 < rows and rng.random() < 0.9:
                edges.append((here, f"rd{r+1}_{c}"))
                edges.append((f"rd{r+1}_{c}", here))
    for _ in range(max(1, (rows * cols) // 8)):
        a = f"rd{rng.randrange(rows)}_{rng.randrange(cols)}"
        b = f"rd{rng.randrange(rows)}_{rng.randrange(cols)}"
        if a != b:
            edges.append((a, b))
    seen: Set[Edge] = set()
    out: List[Edge] = []
    for edge in edges:
        if edge not in seen:
            seen.add(edge)
            out.append(edge)
    return out


def edges_database(edges: Iterable[Edge],
                   predicates: Sequence[str] = ("e",)) -> Database:
    """A database holding *edges* under each predicate name in
    *predicates* (e.g. ``("e", "e0")`` for the paper's transitive
    closure, which reads both)."""
    db = Database()
    for a, b in edges:
        for predicate in predicates:
            db.add(predicate, (a, b))
    return db


def tree_updown_database(depth: int, branching: int) -> Database:
    """The same-generation EDB over :func:`tree_edges`: ``up`` edges
    child->parent, ``down`` edges parent->child, and ``flat`` as the
    identity on every node (so ``sg`` relates exactly the equal-depth
    node pairs; see :func:`same_depth_pair_count`)."""
    db = Database()
    nodes = {"n"}
    for parent, child in tree_edges(depth, branching):
        db.add("up", (child, parent))
        db.add("down", (parent, child))
        nodes.add(parent)
        nodes.add(child)
    for node in sorted(nodes):
        db.add("flat", (node, node))
    return db


# ----------------------------------------------------------------------
# Structural ground truth (never runs the engine under test).
# ----------------------------------------------------------------------

def reachable_pairs(edges: Sequence[Edge]) -> Set[Edge]:
    """``{(a, b) : a -> b in one or more steps}`` by BFS from every
    node -- the expected rows of a transitive-closure relation."""
    adjacency: Dict[str, List[str]] = {}
    nodes: Set[str] = set()
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
        nodes.add(a)
        nodes.add(b)
    pairs: Set[Edge] = set()
    for source in nodes:
        seen: Set[str] = set()
        queue = deque(adjacency.get(source, ()))
        while queue:
            node = queue.popleft()
            if node in seen:
                continue
            seen.add(node)
            queue.extend(adjacency.get(node, ()))
        pairs.update((source, target) for target in seen)
    return pairs


def reachable_pair_count(edges: Sequence[Edge]) -> int:
    """``len(reachable_pairs(edges))`` (convenience)."""
    return len(reachable_pairs(edges))


def reachable_from(edges: Sequence[Edge], source: str) -> Set[str]:
    """The nodes reachable from *source* (including *source* itself) by
    a single BFS -- linear in the edge list, so it scales to the
    10^5--10^6-fact EDBs of the ``tag:scale`` tier, unlike the
    all-pairs :func:`reachable_pairs` walk.  Expected rows of
    :func:`single_source_reach` when ``src`` holds exactly *source*."""
    adjacency: Dict[str, List[str]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
    seen: Set[str] = {source}
    queue = deque((source,))
    while queue:
        node = queue.popleft()
        for target in adjacency.get(node, ()):
            if target not in seen:
                seen.add(target)
                queue.append(target)
    return seen


def two_hop_pairs(edges: Sequence[Edge]) -> Set[Edge]:
    """``{(a, c) : a -> b -> c}`` -- expected rows of
    :func:`two_hop_program`; linear on chains (each node has one
    successor)."""
    adjacency: Dict[str, List[str]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
    return {
        (a, c)
        for a, b in edges
        for c in adjacency.get(b, ())
    }


def same_depth_pairs(depth: int, branching: int) -> Set[Edge]:
    """Expected ``sg`` rows over :func:`tree_updown_database`: with
    ``flat`` the identity, ``sg`` holds exactly for node pairs at equal
    depth (walk up k levels, cross ``flat``, walk down k), giving
    ``sum_d (branching^d)^2`` rows for d = 0..depth."""
    pairs: Set[Edge] = set()
    frontier = ["n"]
    for _ in range(depth + 1):
        pairs.update((a, b) for a in frontier for b in frontier)
        frontier = [f"{node}{child}" for node in frontier
                    for child in range(branching)]
    return pairs


def same_depth_pair_count(depth: int, branching: int) -> int:
    """``len(same_depth_pairs(depth, branching))`` (convenience)."""
    return sum((branching ** d) ** 2 for d in range(depth + 1))
