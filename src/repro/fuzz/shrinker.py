"""Delta-debugging shrinker for diverging fuzz cases.

:func:`ddmin` is the classic Zeller/Hildebrandt 1-minimal reduction
over any item sequence; :func:`shrink_case` applies it structurally to
a :class:`~repro.fuzz.harness.FuzzCase` -- whole rules first, then per
rule the body atoms, then EDB facts, then union disjuncts -- re-running
the differential after every candidate deletion and keeping only
deletions that preserve the divergence.

Two properties matter for trustworthiness of the minimized artifact:

* **Exceptions are "not failing".**  A candidate that makes the
  harness *crash* (empty body after atom removal, goal predicate
  deleted, arity mismatch) is rejected, not reported -- the shrinker
  only ever returns cases that still exhibit the *original* kind of
  divergence, so the emitted regression scenario really reproduces the
  bug, not an artifact of the reduction.
* **Re-checked ground truth.**  Removing rules or facts changes the
  case's semantics, so a drawn case's constructed ``expected`` verdict
  does not survive shrinking.  The failing-predicate used here is
  *cross-cell disagreement only* (``against="baseline"``); the caller
  re-derives expected values from the reference cell when persisting
  the minimized case (:mod:`repro.fuzz.regressions`).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Sequence, TypeVar

from ..cq.query import UnionOfConjunctiveQueries
from ..datalog.database import Database
from ..datalog.program import Program
from ..datalog.rules import Rule
from .harness import Divergence, FuzzCase, run_case

T = TypeVar("T")


def ddmin(items: Sequence[T],
          failing: Callable[[Sequence[T]], bool]) -> List[T]:
    """The minimal failing subsequence of *items* under *failing*.

    Classic delta debugging: try removing chunks at increasing
    granularity; whenever a reduced sequence still fails, restart from
    it.  The result is 1-minimal -- removing any single remaining item
    makes the failure disappear.  *failing* must be deterministic; it
    is never called on the full input (assumed failing) and never on
    the empty sequence unless a chunk removal produced it.
    """
    items = list(items)
    chunks = 2
    while len(items) >= 2:
        size = max(1, len(items) // chunks)
        reduced = None
        for start in range(0, len(items), size):
            candidate = items[:start] + items[start + size:]
            if candidate and failing(candidate):
                reduced = candidate
                break
        if reduced is not None:
            items = reduced
            chunks = max(2, chunks - 1)
        elif size == 1:
            break
        else:
            chunks = min(len(items), chunks * 2)
    if len(items) == 1 and failing([]):
        items = []
    return items


def _safe(check: Callable[[FuzzCase], bool]) -> Callable[[FuzzCase], bool]:
    def guarded(case: FuzzCase) -> bool:
        try:
            return check(case)
        except Exception:
            return False
    return guarded


def still_diverges(case: FuzzCase, *, matrix: str = "full",
                   mutate=None) -> bool:
    """Whether *case* still shows a cross-cell (baseline) divergence.

    Ground-truth divergences are ignored on purpose: ``expected`` was
    constructed for the original draw and means nothing for a shrunk
    variant (see module docs).
    """
    _verdicts, divergences = run_case(case, matrix=matrix, mutate=mutate)
    return any(d.against == "baseline" for d in divergences)


def shrink_case(case: FuzzCase,
                failing: Optional[Callable[[FuzzCase], bool]] = None,
                *, matrix: str = "full", mutate=None) -> FuzzCase:
    """The 1-minimal variant of *case* that still satisfies *failing*
    (default: :func:`still_diverges` under the same matrix/mutator the
    sweep used).

    Reduction order -- each pass runs :func:`ddmin` over one structural
    axis, feeding its result to the next:

    1. whole program rules,
    2. body atoms of each surviving rule (head kept),
    3. EDB facts (evaluation cases),
    4. union disjuncts (containment cases).
    """
    if failing is None:
        def failing(c: FuzzCase) -> bool:
            return still_diverges(c, matrix=matrix, mutate=mutate)
    check = _safe(failing)
    if not check(case):
        return case

    # Pass 1: whole rules.
    rules = list(case.program.rules)
    rules = ddmin(rules, lambda rs: check(
        replace(case, program=Program(tuple(rs)))))
    case = replace(case, program=Program(tuple(rules)))

    # Pass 2: body atoms, one rule at a time.
    for position in range(len(case.program.rules)):
        def with_body(atoms, position=position):
            rules = list(case.program.rules)
            rules[position] = Rule(rules[position].head, tuple(atoms))
            return replace(case, program=Program(tuple(rules)))
        body = ddmin(list(case.program.rules[position].body),
                     lambda atoms: check(with_body(atoms)))
        case = with_body(body)

    # Pass 3: EDB facts.
    if case.database is not None:
        ordered = sorted(case.database.facts(),
                         key=lambda fact: (fact[0],
                                           [repr(c.value) for c in fact[1]]))
        facts = ddmin(ordered, lambda fs: check(
            replace(case, database=Database.from_facts(fs))))
        case = replace(case, database=Database.from_facts(facts))

    # Pass 4: union disjuncts.
    if case.union is not None and len(case.union) > 1:
        disjuncts = ddmin(list(case.union), lambda ds: check(
            replace(case, union=UnionOfConjunctiveQueries(
                ds, arity=case.union.arity))))
        if disjuncts:
            case = replace(case, union=UnionOfConjunctiveQueries(
                disjuncts, arity=case.union.arity))

    return case


def shrink_divergence(divergence: Divergence, *, matrix: str = "full",
                      mutate=None) -> FuzzCase:
    """Shrink the case behind *divergence* (baseline divergences only;
    a ground-truth mismatch is returned unshrunk -- its expected
    verdict would not survive reduction)."""
    if divergence.against != "baseline":
        return divergence.case
    return shrink_case(divergence.case, matrix=matrix, mutate=mutate)
