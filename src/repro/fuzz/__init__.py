"""``repro.fuzz`` -- the differential fuzz subsystem.

Three layers, one loop:

* :mod:`~repro.fuzz.harness` draws seed-deterministic random cases
  (programs from :mod:`repro.workloads.generators`, EDBs from the six
  edge families) and runs each through the full configuration matrix
  -- every evaluation backend x strategy against the interpretive
  naive oracle, both automaton kernels against the frozenset
  reference and the constructed ground truth;
* :mod:`~repro.fuzz.shrinker` delta-debugs a diverging case to a
  1-minimal reproducer (rules, body atoms, facts, union disjuncts);
* :mod:`~repro.fuzz.regressions` persists the minimized case as a
  self-contained JSON scenario under ``tests/regressions/`` that
  round-trips into the scenario registry as a permanent test.

:func:`~repro.fuzz.sweep.run_fuzz` composes them; ``python -m repro
fuzz`` and the CI fuzz job are thin wrappers around it.  See
``docs/FUZZING.md`` for the operational story.
"""

from .harness import (
    EVAL_BASELINE,
    EVAL_MATRIX,
    EVAL_MATRIX_QUICK,
    KERNEL_BASELINE,
    KERNEL_MATRIX,
    KIND_ROTATION,
    Divergence,
    FuzzCase,
    analysis_divergences,
    baseline_verdict,
    decision_verdict,
    draw_case,
    evaluation_verdict,
    run_case,
)
from .regressions import (
    case_from_dict,
    case_to_dict,
    default_regressions_dir,
    load_regression,
    register_regressions,
    scenario_from_case,
    write_regression,
)
from .shrinker import ddmin, shrink_case, shrink_divergence, still_diverges
from .sweep import FuzzReport, planted_fault, run_fuzz

__all__ = [
    "Divergence",
    "EVAL_BASELINE",
    "EVAL_MATRIX",
    "EVAL_MATRIX_QUICK",
    "FuzzCase",
    "FuzzReport",
    "KERNEL_BASELINE",
    "KERNEL_MATRIX",
    "KIND_ROTATION",
    "analysis_divergences",
    "baseline_verdict",
    "case_from_dict",
    "case_to_dict",
    "ddmin",
    "decision_verdict",
    "default_regressions_dir",
    "draw_case",
    "evaluation_verdict",
    "load_regression",
    "planted_fault",
    "register_regressions",
    "run_case",
    "run_fuzz",
    "scenario_from_case",
    "shrink_case",
    "shrink_divergence",
    "still_diverges",
    "write_regression",
]
