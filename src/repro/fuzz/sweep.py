"""The fuzz sweep driver: draw, run, shrink, persist.

:func:`run_fuzz` is what CI and ``python -m repro fuzz`` invoke: it
draws ``iterations`` seed-deterministic cases, runs each through its
full configuration matrix, and on the first divergences delta-debugs
the failing case down to a minimal reproducer and writes it under
``tests/regressions/`` (see :mod:`repro.fuzz.regressions`).  The
returned :class:`FuzzReport` is plain data -- the CLI renders it and
picks the exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional

from .harness import Divergence, FuzzCase, Mutator, draw_case, run_case
from .regressions import write_regression
from .shrinker import shrink_case, still_diverges


@dataclass
class FuzzReport:
    """Outcome of one sweep: counts, per-kind breakdown, and for every
    surviving divergence the (possibly minimized) case and where its
    regression file went."""

    seed: int
    iterations: int
    matrix: str
    cases_run: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    divergences: List[Divergence] = field(default_factory=list)
    minimized: List[FuzzCase] = field(default_factory=list)
    written: List[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _evaluation_goal(divergence: Divergence) -> Optional[str]:
    """The first IDB predicate whose (count, checksum) differs between
    the diverging cell and its reference -- the narrowest relation to
    pin the regression scenario to."""
    for key in sorted(set(divergence.verdict) | set(divergence.reference)):
        if key == "fixpoint":
            continue
        if divergence.verdict.get(key) != divergence.reference.get(key):
            return key
    return None


def run_fuzz(seed: int = 0, iterations: int = 50, *,
             matrix: str = "full", shrink: bool = True,
             out_dir: Optional[Path] = None,
             mutate: Optional[Mutator] = None,
             max_failures: int = 1) -> FuzzReport:
    """Sweep ``iterations`` cases drawn from *seed* through the
    differential matrix.

    Stops after ``max_failures`` diverging cases (each divergence is
    expensive to shrink, and one minimized reproducer is what a CI
    failure needs); ``shrink=False`` records the raw failing case
    instead.  ``mutate`` injects verdict corruption for the harness's
    own planted-divergence test -- it is threaded through shrinking
    too, so the minimized case still reproduces under the same
    corruption.
    """
    report = FuzzReport(seed=seed, iterations=iterations, matrix=matrix)
    failures = 0
    for index in range(iterations):
        case = draw_case(seed, index)
        report.cases_run += 1
        report.by_kind[case.kind] = report.by_kind.get(case.kind, 0) + 1
        _verdicts, divergences = run_case(case, matrix=matrix, mutate=mutate)
        if not divergences:
            continue
        report.divergences.extend(divergences)
        failures += 1

        # Shrink (baseline divergences only -- a ground-truth mismatch
        # keeps its original drawn form, since its constructed expected
        # verdict would not survive reduction).
        lead = next((d for d in divergences if d.against == "baseline"),
                    divergences[0])
        minimized = case
        if shrink and lead.against == "baseline":
            minimized = shrink_case(case, matrix=matrix, mutate=mutate)
        minimized = replace(minimized, name=f"regression_{case.name}")
        if minimized.kind == "evaluation" and lead.against == "baseline":
            _mv, m_divs = run_case(minimized, matrix=matrix, mutate=mutate)
            m_lead = next((d for d in m_divs if d.against == "baseline"),
                          lead)
            goal = _evaluation_goal(m_lead)
            if goal:
                minimized = replace(minimized, goal=goal)
        report.minimized.append(minimized)
        report.written.append(write_regression(minimized, lead,
                                               out_dir=out_dir))
        if failures >= max_failures:
            break
    return report


__all__ = ["FuzzReport", "run_fuzz", "still_diverges"]
