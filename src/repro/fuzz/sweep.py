"""The fuzz sweep driver: draw, run, shrink, persist.

:func:`run_fuzz` is what CI and ``python -m repro fuzz`` invoke: it
draws ``iterations`` seed-deterministic cases, runs each through its
full configuration matrix, and on the first divergences delta-debugs
the failing case down to a minimal reproducer and writes it under
``tests/regressions/`` (see :mod:`repro.fuzz.regressions`).  The
returned :class:`FuzzReport` is plain data -- the CLI renders it and
picks the exit code.

Chaos mode (``chaos_seed``) additionally plants a deterministic fault
-- ``MemoryError``, a cooperative hang cut by a deadline, or a
corrupted payload, drawn from :mod:`repro.resilience.chaos` -- on the
first try of roughly a third of the cases.  Each fault must fire, be
caught, and the case then rerun clean, proving the sweep recovers
from the whole error taxonomy without changing a single verdict: a
chaos sweep reports the same divergences as a clean sweep of the same
seed, plus the ``faults_injected``/``faults_recovered`` counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional

from ..budget import BudgetExhausted, time_budget
from ..resilience.chaos import (
    ChaosSchedule,
    Fault,
    PayloadCorruption,
    SimulatedWorkerCrash,
    inject,
)
from .harness import Divergence, FuzzCase, Mutator, draw_case, run_case
from .regressions import write_regression
from .shrinker import shrink_case, still_diverges

#: Fault kinds chaos mode rotates through (``crash`` is excluded: in
#: the in-process sweep it would raise like any other fault, proving
#: nothing the others don't; the process-pool crash path is the
#: runner supervisor's test).
CHAOS_KINDS = ("memory", "hang", "corrupt")

#: Deadline that cuts a planted hang (the hang loop calls
#: ``check_deadline()``, so this bounds chaos-mode wall time).
CHAOS_HANG_DEADLINE_S = 0.25


@dataclass
class FuzzReport:
    """Outcome of one sweep: counts, per-kind breakdown, and for every
    surviving divergence the (possibly minimized) case and where its
    regression file went."""

    seed: int
    iterations: int
    matrix: str
    cases_run: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    divergences: List[Divergence] = field(default_factory=list)
    minimized: List[FuzzCase] = field(default_factory=list)
    written: List[Path] = field(default_factory=list)
    chaos_seed: Optional[int] = None
    faults_injected: int = 0
    faults_recovered: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences


def _evaluation_goal(divergence: Divergence) -> Optional[str]:
    """The first IDB predicate whose (count, checksum) differs between
    the diverging cell and its reference -- the narrowest relation to
    pin the regression scenario to."""
    for key in sorted(set(divergence.verdict) | set(divergence.reference)):
        if key == "fixpoint":
            continue
        if divergence.verdict.get(key) != divergence.reference.get(key):
            return key
    return None


def planted_fault(chaos_seed: int, seed: int, index: int,
                  scenario: str) -> Optional[Fault]:
    """The fault (or None) chaos mode plants on case ``(seed, index)``.

    Deterministic in ``(chaos_seed, seed, index)``: the same chaos
    sweep on any machine injects the same faults at the same cases.
    Roughly one case in three draws a fault, rotating through
    :data:`CHAOS_KINDS`.
    """
    rng = random.Random((chaos_seed * 1_000_003 + seed) * 1_000_003 + index)
    if rng.random() >= 1.0 / 3.0:
        return None
    kind = rng.choice(CHAOS_KINDS)
    return Fault(kind, scenario=scenario, attempt=1, seconds=30.0)


def _fire_fault(fault: Fault, scenario: str) -> None:
    """Inject *fault* on this (first) try and swallow the resulting
    failure -- the caller then reruns the case clean, which is the
    sweep-level analogue of the runner's retry.  A fault that fails to
    fire or raises outside the taxonomy propagates: chaos mode must
    never silently degrade into a plain sweep."""
    with time_budget(CHAOS_HANG_DEADLINE_S):
        inject(scenario, nth=None, attempt=1,
               schedule=ChaosSchedule((fault,)))
    raise AssertionError(
        f"chaos fault {fault.spec()!r} did not fire for {scenario}")


def run_fuzz(seed: int = 0, iterations: int = 50, *,
             matrix: str = "full", shrink: bool = True,
             out_dir: Optional[Path] = None,
             mutate: Optional[Mutator] = None,
             max_failures: int = 1,
             chaos_seed: Optional[int] = None) -> FuzzReport:
    """Sweep ``iterations`` cases drawn from *seed* through the
    differential matrix.

    Stops after ``max_failures`` diverging cases (each divergence is
    expensive to shrink, and one minimized reproducer is what a CI
    failure needs); ``shrink=False`` records the raw failing case
    instead.  ``mutate`` injects verdict corruption for the harness's
    own planted-divergence test -- it is threaded through shrinking
    too, so the minimized case still reproduces under the same
    corruption.  ``chaos_seed`` turns on chaos mode: deterministic
    planted faults on first tries, each recovered by a clean rerun
    (see the module docstring).
    """
    report = FuzzReport(seed=seed, iterations=iterations, matrix=matrix,
                        chaos_seed=chaos_seed)
    failures = 0
    for index in range(iterations):
        case = draw_case(seed, index)
        report.cases_run += 1
        report.by_kind[case.kind] = report.by_kind.get(case.kind, 0) + 1
        if chaos_seed is not None:
            fault = planted_fault(chaos_seed, seed, index, case.name)
            if fault is not None:
                report.faults_injected += 1
                try:
                    _fire_fault(fault, case.name)
                except (MemoryError, PayloadCorruption,
                        SimulatedWorkerCrash, BudgetExhausted):
                    report.faults_recovered += 1
        _verdicts, divergences = run_case(case, matrix=matrix, mutate=mutate)
        if not divergences:
            continue
        report.divergences.extend(divergences)
        failures += 1

        # Shrink (baseline divergences only -- a ground-truth mismatch
        # keeps its original drawn form, since its constructed expected
        # verdict would not survive reduction).
        lead = next((d for d in divergences if d.against == "baseline"),
                    divergences[0])
        minimized = case
        if shrink and lead.against == "baseline":
            minimized = shrink_case(case, matrix=matrix, mutate=mutate)
        minimized = replace(minimized, name=f"regression_{case.name}")
        if minimized.kind == "evaluation" and lead.against == "baseline":
            _mv, m_divs = run_case(minimized, matrix=matrix, mutate=mutate)
            m_lead = next((d for d in m_divs if d.against == "baseline"),
                          lead)
            goal = _evaluation_goal(m_lead)
            if goal:
                minimized = replace(minimized, goal=goal)
        report.minimized.append(minimized)
        report.written.append(write_regression(minimized, lead,
                                               out_dir=out_dir))
        if failures >= max_failures:
            break
    return report


__all__ = ["FuzzReport", "planted_fault", "run_fuzz", "still_diverges"]
