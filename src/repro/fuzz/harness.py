"""The differential fuzz harness: seed-deterministic cases, full
config matrix, reference oracles.

A :class:`FuzzCase` is one drawn workload: a random program
(:func:`repro.workloads.generators.random_program` and the labeled
decision families) plus, for evaluation cases, an EDB drawn from the
six edge families (chain / grid / star / random / power-law /
road-network).  :func:`run_case` executes the case through the full
configuration matrix and reports every :class:`Divergence`:

* **evaluation** cases run every engine cell of :data:`EVAL_MATRIX`
  (backend x strategy) and compare the complete fixpoint -- per-IDB
  row counts and process-independent row checksums -- against the
  interpretive naive engine, the repo's reference semantics;
* **decision** cases (containment / boundedness / equivalence) run
  both automaton kernels and compare verdicts against the frozenset
  reference kernel *and* against the ground truth the generator
  attached by construction;
* every case additionally runs the **analyzer soundness
  differential** (:func:`analysis_divergences`): the static analyzer
  (:mod:`repro.analysis`) is cross-checked against the real
  procedures -- E001-clean iff the ``validate`` gate accepts, drawn
  hazards (unsafe heads, undefined goals) flagged and rejected with
  typed errors, and every H001 boundedness certificate confirmed by
  the search-based decision procedure.

Everything is deterministic in ``(seed, index)``: the same draw on any
machine yields byte-identical programs, databases, and expected
verdicts, so a CI failure replays locally from its seed alone.

The ``mutate`` hook exists for the harness's own test: it intercepts
each computed verdict (``mutate(case, label, verdict) -> verdict``),
so a planted corruption must be caught as a divergence and must
survive shrinking (``tests/test_fuzz.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..automata.kernel import KernelConfig
from ..cq.query import UnionOfConjunctiveQueries
from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.engine import Engine, EngineConfig
from ..datalog.errors import UnsafeProgramError, ValidationError
from ..datalog.parser import parse_program
from ..datalog.program import Program
from ..datalog.rules import Rule
from ..datalog.terms import Variable
from ..datalog.unfold import expansion_union
from ..session import rows_checksum
from ..workloads import generators as gen
from ..workloads.scenarios import kind_runner

#: Engine cells of the evaluation differential (label -> config).
#: ``interpretive-naive`` is the oracle: the per-tuple evaluator
#: running plain naive rounds -- the most elementary semantics in the
#: repo, against which every compiled/columnar/semi-naive cell must
#: agree bit-for-bit.
EVAL_MATRIX: Dict[str, EngineConfig] = {
    "interpretive-naive": EngineConfig(compiled=False, strategy="naive"),
    "interpretive-seminaive": EngineConfig(compiled=False,
                                           strategy="seminaive"),
    "rows-naive": EngineConfig(compiled=True, backend="rows",
                               strategy="naive"),
    "rows-seminaive": EngineConfig(compiled=True, backend="rows",
                                   strategy="seminaive"),
    "columnar-naive": EngineConfig(compiled=True, backend="columnar",
                                   joins="basic", strategy="naive"),
    "columnar-seminaive": EngineConfig(compiled=True, backend="columnar",
                                       joins="basic", strategy="seminaive"),
    # The fused batch kernels (radix hash joins, bitmap semijoin
    # pre-filters, fused filter+project) as their own cells, so every
    # random program sweeps them against the interpretive oracle and
    # the basic columnar reference.
    "fused-naive": EngineConfig(compiled=True, backend="columnar",
                                joins="fused", strategy="naive"),
    "fused-seminaive": EngineConfig(compiled=True, backend="columnar",
                                    joins="fused", strategy="seminaive"),
}

EVAL_BASELINE = "interpretive-naive"

#: The quick matrix: one strategy per backend (what ``--matrix quick``
#: selects; the full matrix is the default).
EVAL_MATRIX_QUICK = {
    label: config for label, config in EVAL_MATRIX.items()
    if label.endswith("-seminaive") or label == EVAL_BASELINE
}

#: Kernel cells of the decision differential.  ``frozenset`` is the
#: reference kernel and the baseline.
KERNEL_MATRIX: Dict[str, KernelConfig] = {
    "frozenset": KernelConfig(backend="frozenset"),
    "bitset": KernelConfig(backend="bitset"),
}

KERNEL_BASELINE = "frozenset"

#: Case kinds in draw rotation: evaluation every other draw (it has
#: the widest config matrix), the three decision kinds interleaved.
KIND_ROTATION = ("evaluation", "containment", "evaluation",
                 "boundedness", "evaluation", "equivalence")


@dataclass
class FuzzCase:
    """One drawn differential workload (self-describing and
    reconstructible: ``seed``/``index`` replay the draw)."""

    name: str
    kind: str
    seed: int
    index: int
    program: Program
    goal: str
    database: Optional[Database] = None
    union: Optional[UnionOfConjunctiveQueries] = None
    nonrecursive: Optional[Program] = None
    nonrecursive_goal: Optional[str] = None
    max_depth: int = 3
    #: Ground truth attached by the generator's construction, or None
    #: when only cross-cell agreement is checkable (evaluation cases).
    expected: Optional[Dict] = None
    meta: Dict = field(default_factory=dict)


@dataclass
class Divergence:
    """One observed mismatch: a matrix cell whose verdict differs from
    the baseline cell (``against="baseline"``), a baseline verdict
    contradicting the constructed ground truth
    (``against="expected"``), or a static-analyzer claim contradicted
    by the real procedures (``against="analyzer"``)."""

    case: FuzzCase
    label: str
    against: str
    verdict: Dict
    reference: Dict

    def describe(self) -> str:
        return (f"{self.case.name}: cell {self.label!r} diverges from "
                f"{self.against} ({_verdict_diff(self.verdict, self.reference)})")


def _verdict_diff(verdict: Dict, reference: Dict) -> str:
    keys = sorted(set(verdict) | set(reference))
    parts = [f"{key}: {verdict.get(key)!r} != {reference.get(key)!r}"
             for key in keys if verdict.get(key) != reference.get(key)]
    return "; ".join(parts) or "identical (?)"


# ----------------------------------------------------------------------
# Case drawing.
# ----------------------------------------------------------------------

def _case_rng(seed: int, index: int) -> Tuple[int, random.Random]:
    sub = (seed * 1_000_003 + index) & 0x7FFFFFFF
    return sub, random.Random(sub)


def _draw_edges(rng: random.Random, sub: int) -> List[Tuple[str, str]]:
    family = rng.randrange(6)
    if family == 0:
        return gen.chain_edges(rng.randint(3, 24))
    if family == 1:
        return gen.grid_edges(rng.randint(2, 5), rng.randint(2, 5))
    if family == 2:
        return gen.star_edges(rng.randint(2, 4), rng.randint(2, 5))
    if family == 3:
        return gen.random_graph_edges(rng.randint(4, 12),
                                      rng.randint(6, 30), seed=sub)
    if family == 4:
        return gen.power_law_edges(rng.randint(5, 14),
                                   rng.randint(8, 40), seed=sub)
    return gen.road_network_edges(rng.randint(2, 4), rng.randint(2, 4),
                                  seed=sub)


#: XOR salt separating the hazard draw stream from the main case
#: stream: hazards consume their own :class:`random.Random`, so adding
#: (or re-weighting) hazards never perturbs the byte-identical
#: program/EDB draws that existing regression seeds pin.
_HAZARD_SALT = 0x5AFE_C0DE


def _draw_hazard(sub: int, program: Program, meta: Dict) -> Program:
    """Occasionally plant a deliberate static-analysis hazard in an
    evaluation draw: an unsafe rule (unbound head variable -> E001) or
    a probe for a goal predicate the program never defines (-> E002).
    The analyzer must flag these and the engines must reject them with
    a *typed* error -- :func:`analysis_divergences` asserts both."""
    hazard_rng = random.Random(sub ^ _HAZARD_SALT)
    roll = hazard_rng.random()
    if roll < 0.12:
        anchors = sorted(program.edb_predicates)
        if not anchors:
            return program
        anchor = anchors[hazard_rng.randrange(len(anchors))]
        bound = Variable("HzBound")
        body = Atom(anchor, (bound,) * program.arity[anchor])
        head = Atom("hazard_unsafe", (bound, Variable("HzFree")))
        meta["hazard"] = "unsafe-head"
        return program.extend([Rule(head, (body,))])
    if roll < 0.24:
        goal = "hazard_missing"
        while goal in program.predicates:
            goal += "_x"
        meta["hazard"] = "undefined-goal"
        meta["hazard_goal"] = goal
    return program


def _truncation_rewriting(program: Program) -> Program:
    """The depth-2 truncation of an :func:`unbounded_program` instance
    (its recursive call replaced by the base relation): backward
    containment holds (every disjunct is an expansion), forward fails
    (length-2 chains are not covered) -- ground truth by the
    transitive-closure argument of the paper's Example 1.1 analysis."""
    edge = next(
        atom.predicate
        for rule in program.rules
        for atom in rule.body
        if atom.predicate not in program.idb_predicates
        and atom.predicate != "base"
    )
    return parse_program(
        f"""
        p(X, Y) :- base(X, Y).
        p(X, Y) :- {edge}(X, Z), base(Z, Y).
        """
    )


def draw_case(seed: int, index: int) -> FuzzCase:
    """The deterministic case for ``(seed, index)``.

    Kinds rotate through :data:`KIND_ROTATION`; every random draw
    comes from ``Random(seed * 1_000_003 + index)``, so the case --
    program, EDB, expected verdict -- is identical on every machine
    and Python version.
    """
    sub, rng = _case_rng(seed, index)
    kind = KIND_ROTATION[index % len(KIND_ROTATION)]
    name = f"fuzz_{kind}_s{seed}_i{index}"

    if kind == "evaluation":
        program = gen.random_program(sub, max_rules=4)
        edges = _draw_edges(rng, sub)
        predicates = tuple(sorted(program.edb_predicates)) or ("edge",)
        database = gen.edges_database(edges, predicates)
        meta = {"edges": len(edges), "predicates": list(predicates)}
        program = _draw_hazard(sub, program, meta)
        return FuzzCase(name=name, kind=kind, seed=seed, index=index,
                        program=program, goal="p", database=database,
                        meta=meta)

    if kind == "containment":
        shape = rng.randrange(3)
        if shape == 0:
            body = rng.randint(1, 2)
            program = gen.sirup(body, seed=sub)
            union = gen.sirup_covering_union(body, seed=sub)
            expected = {"contained": True}
        elif shape == 1:
            body = rng.randint(1, 2)
            program = gen.sirup(body, seed=sub)
            covering = list(gen.sirup_covering_union(body, seed=sub))
            union = UnionOfConjunctiveQueries(covering[1:])
            expected = {"contained": False}
        else:
            program = gen.unbounded_program(seed=sub)
            union = expansion_union(program, "p", rng.randint(1, 2))
            expected = {"contained": False}
        return FuzzCase(name=name, kind=kind, seed=seed, index=index,
                        program=program, goal="p", union=union,
                        expected=expected, meta={"shape": shape})

    if kind == "boundedness":
        if rng.random() < 0.5:
            program = gen.bounded_program(rng.randint(1, 3), seed=sub)
            expected = {"bounded": True, "depth": 2}
        else:
            program = gen.unbounded_program(seed=sub)
            expected = {"bounded": None, "depth": None}
        return FuzzCase(name=name, kind=kind, seed=seed, index=index,
                        program=program, goal="p", max_depth=3,
                        expected=expected)

    # equivalence
    if rng.random() < 0.5:
        guards = rng.randint(1, 3)
        program = gen.bounded_program(guards, seed=sub)
        nonrecursive = gen.bounded_rewriting(guards, seed=sub)
        expected = {"equivalent": True, "forward": True, "backward": True}
    else:
        program = gen.unbounded_program(seed=sub)
        nonrecursive = _truncation_rewriting(program)
        expected = {"equivalent": False, "forward": False, "backward": True}
    return FuzzCase(name=name, kind=kind, seed=seed, index=index,
                    program=program, goal="p", nonrecursive=nonrecursive,
                    expected=expected)


# ----------------------------------------------------------------------
# Differential execution.
# ----------------------------------------------------------------------

#: One shared engine for the decision kinds' evaluation probes (the
#: kernel is the differential axis there, not the engine).
_PROBE_ENGINE = Engine(EngineConfig())


def evaluation_verdict(case: FuzzCase, config: EngineConfig) -> Dict:
    """The complete-fixpoint verdict of *case* on one engine cell:
    per-IDB-predicate row counts and checksums, plus the fixpoint
    flag.  A fresh engine per call keeps plan caches from leaking
    state between cells."""
    result = Engine(config).evaluate(case.program, case.database)
    verdict: Dict = {"fixpoint": result.fixpoint}
    for predicate in sorted(case.program.idb_predicates):
        rows = result.facts(predicate)
        verdict[predicate] = {"count": len(rows),
                              "checksum": rows_checksum(rows)}
    return verdict


def decision_verdict(case: FuzzCase, kernel: KernelConfig) -> Dict:
    """The verdict of a decision case on one kernel cell, via the same
    kind runners the scenario registry uses."""
    payload: Dict = {"program": case.program, "goal": case.goal}
    if case.kind == "containment":
        payload["union"] = case.union
    elif case.kind == "equivalence":
        payload["nonrecursive"] = case.nonrecursive
        payload["nonrecursive_goal"] = case.nonrecursive_goal
    elif case.kind == "boundedness":
        payload["max_depth"] = case.max_depth
    verdict, _stats = kind_runner(case.kind)(payload, _PROBE_ENGINE, kernel)
    return verdict


def analysis_divergences(case: FuzzCase) -> List[Divergence]:
    """The analyzer soundness differential for *case*
    (``against="analyzer"`` divergences).

    Three cross-checks tie :mod:`repro.analysis` to the real decision
    procedures:

    * **validate-gate biconditional** (evaluation cases): the analyzer
      reports E001 *iff* an engine with ``EngineConfig(validate=True)``
      rejects the program with :class:`UnsafeProgramError`; every
      E001-clean program must evaluate without an engine-level
      validation error.
    * **hazard assertions**: a deliberately drawn hazard
      (:func:`_draw_hazard`) must be flagged -- E001 for an unbound
      head variable, E002 for an undefined goal -- and the engine-side
      rejection must be a *typed* :class:`ValidationError`, never an
      untyped crash.
    * **certificate soundness**: when the analyzer issues an H001
      syntactic-boundedness certificate, the search-based boundedness
      procedure must confirm ``bounded`` at the certified depth bound.
    """
    from ..analysis import analyze_program

    report = analyze_program(case.program, case.goal, plans=False)
    codes = sorted(set(report.codes()))
    unsafe = any(diag.code == "E001" for diag in report.errors)
    divergences: List[Divergence] = []

    if case.database is not None:
        rejected = False
        try:
            Engine(EngineConfig(validate=True)).evaluate(case.program,
                                                         case.database)
        except UnsafeProgramError:
            rejected = True
        if rejected != unsafe:
            divergences.append(Divergence(
                case=case, label="validate-gate", against="analyzer",
                verdict={"rejected": rejected},
                reference={"unsafe": unsafe, "codes": codes}))

    hazard = case.meta.get("hazard")
    if hazard == "unsafe-head" and not unsafe:
        divergences.append(Divergence(
            case=case, label="hazard-unsafe-head", against="analyzer",
            verdict={"codes": codes}, reference={"expected": "E001"}))
    elif hazard == "undefined-goal":
        hazard_goal = case.meta["hazard_goal"]
        hazard_report = analyze_program(case.program, hazard_goal,
                                        plans=False)
        flagged = "E002" in hazard_report.codes()
        try:
            case.program.require_goal(hazard_goal)
            typed_rejection = False
        except ValidationError:
            typed_rejection = True
        if not (flagged and typed_rejection):
            divergences.append(Divergence(
                case=case, label="hazard-undefined-goal",
                against="analyzer",
                verdict={"flagged": flagged,
                         "typed_rejection": typed_rejection},
                reference={"expected": "E002 + ValidationError"}))

    certificate = report.boundedness_certificate()
    if certificate is not None:
        payload = {"program": case.program, "goal": case.goal,
                   "max_depth": certificate["depth_bound"]}
        verdict, _stats = kind_runner("boundedness")(
            payload, _PROBE_ENGINE, KERNEL_MATRIX[KERNEL_BASELINE])
        if verdict.get("bounded") is not True:
            divergences.append(Divergence(
                case=case, label="bounded-certificate", against="analyzer",
                verdict=dict(verdict), reference=dict(certificate)))
    return divergences


Mutator = Callable[[FuzzCase, str, Dict], Dict]


def run_case(case: FuzzCase, *, matrix: str = "full",
             mutate: Optional[Mutator] = None,
             ) -> Tuple[Dict[str, Dict], List[Divergence]]:
    """Run *case* through its configuration matrix.

    Returns ``(verdicts, divergences)``: the per-cell verdicts and
    every mismatch -- cells against the baseline cell, the baseline
    against the case's constructed ground truth when the generator
    attached one, and the analyzer soundness differential
    (:func:`analysis_divergences`).
    """
    verdicts: Dict[str, Dict] = {}
    if case.kind == "evaluation":
        cells = EVAL_MATRIX if matrix == "full" else EVAL_MATRIX_QUICK
        baseline_label = EVAL_BASELINE
        for label, config in cells.items():
            verdict = evaluation_verdict(case, config)
            verdicts[label] = mutate(case, label, verdict) if mutate else verdict
    else:
        baseline_label = KERNEL_BASELINE
        for label, kernel in KERNEL_MATRIX.items():
            verdict = decision_verdict(case, kernel)
            verdicts[label] = mutate(case, label, verdict) if mutate else verdict

    divergences: List[Divergence] = []
    baseline = verdicts[baseline_label]
    for label, verdict in verdicts.items():
        if label != baseline_label and verdict != baseline:
            divergences.append(Divergence(case=case, label=label,
                                          against="baseline",
                                          verdict=verdict,
                                          reference=baseline))
    if case.expected is not None and baseline != case.expected:
        divergences.append(Divergence(case=case, label=baseline_label,
                                      against="expected",
                                      verdict=baseline,
                                      reference=dict(case.expected)))
    divergences.extend(analysis_divergences(case))
    return verdicts, divergences


def baseline_verdict(case: FuzzCase) -> Dict:
    """The reference cell's verdict for *case* (used as the recorded
    ground truth of minimized regression scenarios)."""
    if case.kind == "evaluation":
        return evaluation_verdict(case, EVAL_MATRIX[EVAL_BASELINE])
    return decision_verdict(case, KERNEL_MATRIX[KERNEL_BASELINE])


def with_program(case: FuzzCase, program: Program) -> FuzzCase:
    """A copy of *case* with *program* swapped in (shrinker hook)."""
    return replace(case, program=program)
