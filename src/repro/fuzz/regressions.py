"""Persistence of minimized fuzz failures as permanent regressions.

A shrunk :class:`~repro.fuzz.harness.FuzzCase` is written as one
self-contained JSON file under ``tests/regressions/`` -- program in
concrete Datalog syntax, EDB facts, expected verdict re-derived from
the reference cell, plus the divergence that was observed -- and every
committed file **round-trips into the scenario registry**
(:func:`register_regressions`), where the test suite and the batch
runner pick it up like any hand-written scenario.  The lifecycle:

1. a fuzz sweep (CI or ``python -m repro fuzz``) finds a divergence,
2. the shrinker minimizes it and :func:`write_regression` emits the
   file (CI uploads it as an artifact and fails the build),
3. the file is committed, so ``tests/test_fuzz.py`` re-runs the exact
   minimized input through the full matrix forever after.

Expected verdicts are **recorded from the reference cell at write
time** (interpretive-naive engine / frozenset kernel): the regression
asserts "every cell agrees with the reference on this input", which is
precisely the differential property that was violated.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from ..cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..datalog.database import Database
from ..datalog.parser import parse_program, parse_rule
from ..datalog.printer import program_to_source, rule_to_source
from ..runner.trajectory import find_repo_root
from ..workloads.scenarios import REGISTRY, Scenario, register
from .harness import Divergence, FuzzCase, baseline_verdict

FORMAT_VERSION = 1


def default_regressions_dir() -> Path:
    """``tests/regressions/`` of the enclosing checkout."""
    return find_repo_root() / "tests" / "regressions"


def case_to_dict(case: FuzzCase,
                 divergence: Optional[Divergence] = None) -> Dict:
    """The JSON-serializable form of *case*.

    The expected verdict is re-derived from the reference cell *now*
    (the drawn case's constructed ``expected`` is stale after
    shrinking); ``divergence`` documents what was observed when the
    case was captured -- context for the human reading the file, not
    an input to the replay.
    """
    record: Dict = {
        "format": FORMAT_VERSION,
        "name": case.name,
        "kind": case.kind,
        "goal": case.goal,
        "seed": case.seed,
        "index": case.index,
        "program": program_to_source(case.program),
        "expected": baseline_verdict(case),
    }
    if case.database is not None:
        record["facts"] = sorted(
            [predicate, [constant.value for constant in row]]
            for predicate, row in case.database.facts()
        )
    if case.union is not None:
        record["union"] = [rule_to_source(query.as_rule())
                           for query in case.union]
        record["union_arity"] = case.union.arity
    if case.nonrecursive is not None:
        record["nonrecursive"] = program_to_source(case.nonrecursive)
        if case.nonrecursive_goal:
            record["nonrecursive_goal"] = case.nonrecursive_goal
    if case.kind == "boundedness":
        record["max_depth"] = case.max_depth
    if divergence is not None:
        record["divergence"] = {
            "label": divergence.label,
            "against": divergence.against,
            "verdict": divergence.verdict,
            "reference": divergence.reference,
        }
    return record


def case_from_dict(record: Dict) -> FuzzCase:
    """Reconstruct the replayable :class:`FuzzCase` of *record*."""
    database = None
    if "facts" in record:
        database = Database.from_facts(
            (predicate, tuple(values))
            for predicate, values in record["facts"])
    union = None
    if "union" in record:
        union = UnionOfConjunctiveQueries(
            [ConjunctiveQuery.from_rule(parse_rule(source))
             for source in record["union"]],
            arity=record.get("union_arity"))
    nonrecursive = None
    if "nonrecursive" in record:
        nonrecursive = parse_program(record["nonrecursive"])
    return FuzzCase(
        name=record["name"],
        kind=record["kind"],
        seed=record.get("seed", 0),
        index=record.get("index", 0),
        program=parse_program(record["program"]),
        goal=record["goal"],
        database=database,
        union=union,
        nonrecursive=nonrecursive,
        nonrecursive_goal=record.get("nonrecursive_goal"),
        max_depth=record.get("max_depth", 3),
        expected=record.get("expected"),
        meta={"regression": True},
    )


def write_regression(case: FuzzCase,
                     divergence: Optional[Divergence] = None,
                     out_dir: Optional[Path] = None) -> Path:
    """Write *case* as ``<out_dir>/<name>.json`` and return the path."""
    out_dir = Path(out_dir) if out_dir else default_regressions_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{case.name}.json"
    path.write_text(json.dumps(case_to_dict(case, divergence), indent=2,
                               sort_keys=True) + "\n")
    return path


def load_regression(path: Path) -> FuzzCase:
    """The :class:`FuzzCase` stored at *path*."""
    return case_from_dict(json.loads(Path(path).read_text()))


def _scenario_payload(case: FuzzCase) -> Dict:
    payload: Dict = {"program": case.program, "goal": case.goal}
    if case.kind == "evaluation":
        payload["database"] = case.database
    elif case.kind == "containment":
        payload["union"] = case.union
    elif case.kind == "equivalence":
        payload["nonrecursive"] = case.nonrecursive
        payload["nonrecursive_goal"] = case.nonrecursive_goal
    elif case.kind == "boundedness":
        payload["max_depth"] = case.max_depth
    return payload


def scenario_from_case(case: FuzzCase, source: str = "") -> Scenario:
    """*case* as a registrable :class:`Scenario` (tag ``regression``).

    Evaluation regressions register the scenario-kind verdict shape --
    the goal relation's ``{count, checksum}`` -- sliced out of the
    recorded full-fixpoint verdict, so they run under the standard
    evaluation runner unchanged.
    """
    expected = dict(case.expected or {})
    if case.kind == "evaluation" and case.goal in expected:
        expected = dict(expected[case.goal])
    return Scenario(
        name=case.name,
        kind=case.kind,
        description=(f"minimized fuzz regression (seed {case.seed}, "
                     f"index {case.index}){source}"),
        build=lambda case=case: _scenario_payload(case),
        expected=expected,
        tags=("regression", "generated-regression"),
    )


def register_regressions(directory: Optional[Path] = None) -> List[str]:
    """Register every ``*.json`` under *directory* (default:
    ``tests/regressions/``) as a scenario; idempotent -- names already
    in the registry are skipped.  Returns the registered names."""
    directory = Path(directory) if directory else default_regressions_dir()
    if not directory.is_dir():
        return []
    registered: List[str] = []
    for path in sorted(directory.glob("*.json")):
        case = load_regression(path)
        if case.name in REGISTRY:
            continue
        register(scenario_from_case(case, source=f" -- {path.name}"))
        registered.append(case.name)
    return registered
