"""``python -m repro`` -- the unified CLI over the Session API.

One entry point for every paper decision procedure and harness,
replacing the scattered ``python -m repro.runner`` / bench-script
invocations (which remain as thin aliases):

=============  ========================================================
subcommand     what it does
=============  ========================================================
``decide``     one decision from the shell: ``containment``,
               ``equivalence`` (the README quickstart), or
               ``boundedness``; prints the uniform ``Decision`` record
``analyze``    the static analyzer (:mod:`repro.analysis`): typed
               diagnostics (E/W/H codes), class certificates, plan
               lints; text or JSON output, exit 1 on error diagnostics
``eval``       bottom-up evaluation of a program over a facts file
``serve``      the long-lived decision service daemon
               (:mod:`repro.service`): newline-delimited JSON over a
               unix socket (and/or TCP), request coalescing, bounded
               admission, per-worker Sessions
``request``    send one JSON request line to a running daemon and
               print its response (the CI/docs smoke client)
``scenarios``  the scenario-matrix batch runner (the former
               ``python -m repro.runner`` CLI, unchanged flags)
``fuzz``       the differential fuzz sweep (:mod:`repro.fuzz`): random
               programs/EDBs through every backend x strategy x kernel,
               divergences delta-debugged to minimized regression files
``bench``      the trajectory benchmark suites
               (``benchmarks/run_bench.py``)
``bench-check``  the perf-regression smoke guard
               (``benchmarks/check_regression.py``)
=============  ========================================================

Examples::

    python -m repro decide equivalence \\
        --program "buys(X, Y) :- likes(X, Y). \\
                   buys(X, Y) :- trendy(X), buys(Z, Y)." \\
        --nonrecursive "buys(X, Y) :- likes(X, Y). \\
                        buys(X, Y) :- trendy(X), likes(Z, Y)." \\
        --goal buys
    python -m repro decide boundedness --program prog.dl --goal p
    python -m repro decide containment --program prog.dl --goal p \\
        --union-depth 2
    python -m repro analyze --program prog.dl --goal p --format json
    python -m repro analyze --all-scenarios
    python -m repro eval --program tc.dl --db facts.dl --goal p
    python -m repro serve --socket /tmp/repro.sock --workers 2
    python -m repro request --socket /tmp/repro.sock \\
        '{"op": "scenario", "scenario": "bounded_buys"}'
    python -m repro scenarios --scenarios tag:bench --workers 4
    python -m repro fuzz --seed 0 --iterations 50
    python -m repro bench --smoke --out /tmp/bench-smoke
    python -m repro bench-check --baseline BENCH_plans.json \\
        --candidate /tmp/bench-smoke/BENCH_plans.json

``--program`` / ``--nonrecursive`` / ``--union`` / ``--db`` accept a
file path or inline Datalog source.  Exit status: 0 on a completed
decision (whatever the verdict), 1 when ``--expect`` was given and the
verdict's truth value did not match it, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import runpy
import sys
from pathlib import Path
from typing import List, Optional

from .automata.kernel import KernelConfig
from .budget import BudgetExhausted
from .datalog.database import Database
from .datalog.errors import ReproError
from .datalog.parser import parse_program
from .datalog.program import Program
from .datalog.unfold import expansion_union, unfold_nonrecursive
from .runner.batch import ENGINE_CONFIGS, KERNEL_CONFIGS
from .runner.trajectory import find_repo_root
from .session import Decision, Session


def _read_source(spec: str) -> str:
    """*spec* is a path (read it) or inline Datalog source (use it)."""
    path = Path(spec)
    try:
        if path.exists() and path.is_file():
            return path.read_text()
    except OSError:
        pass
    return spec


def _read_program(spec: str) -> Program:
    return parse_program(_read_source(spec))


def _read_database(spec: str) -> Database:
    """A facts file/literal: ground, body-less rules (``e(a, b).``)."""
    program = parse_program(_read_source(spec))
    atoms = []
    for rule in program.rules:
        if rule.body or rule.head.variable_set():
            raise ReproError(
                f"--db expects ground facts only, got rule {rule}")
        atoms.append(rule.head)
    return Database.from_atoms(atoms)


def _session(args) -> Session:
    engine = ENGINE_CONFIGS[args.engine]
    kernel = KERNEL_CONFIGS[args.kernel]
    return Session(engine=engine, kernel=kernel, name="cli")


def _emit(decision: Decision, as_json: bool) -> None:
    record = decision.record()
    if as_json:
        print(json.dumps(record, indent=2, sort_keys=True, default=str))
        return
    print(f"kind        {record['kind']}")
    print(f"verdict     {json.dumps(record['verdict'], default=str)}")
    if decision.checksum:
        print(f"checksum    {decision.checksum}")
    if record["stats"]:
        print(f"stats       {json.dumps(record['stats'], default=str)}")
    print(f"timings     {json.dumps(record['timings'])}")
    print(f"fingerprint {record['fingerprint']}")


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", choices=sorted(ENGINE_CONFIGS),
                        default="columnar",
                        help="evaluation engine config (default: columnar)")
    parser.add_argument("--kernel", choices=sorted(KERNEL_CONFIGS),
                        default="bitset",
                        help="automaton kernel backend (default: bitset)")
    parser.add_argument("--json", action="store_true",
                        help="print the full Decision record as JSON")
    parser.add_argument("--deadline", type=float, default=None,
                        help="wall-clock deadline in seconds for the "
                             "decision (exit 2 when it fires)")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Unified CLI over the repro Session API.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    decide = sub.add_parser(
        "decide", help="run one decision procedure from the shell")
    decide.add_argument("kind",
                        choices=("containment", "equivalence", "boundedness"))
    decide.add_argument("--program", required=True,
                        help="path or inline Datalog source of Pi")
    decide.add_argument("--goal", required=True,
                        help="goal predicate of Pi")
    decide.add_argument("--method", choices=("auto", "tree", "word"),
                        default="auto",
                        help="containment pathway (default: auto)")
    decide.add_argument("--nonrecursive", default=None,
                        help="[equivalence] path/source of nonrecursive Pi'")
    decide.add_argument("--nonrecursive-goal", default=None,
                        help="[equivalence] Pi' goal (default: --goal)")
    decide.add_argument("--union", default=None,
                        help="[containment] path/source of a nonrecursive "
                             "program unfolded into the target UCQ")
    decide.add_argument("--union-goal", default=None,
                        help="[containment] goal of --union (default: --goal)")
    decide.add_argument("--union-depth", type=int, default=None,
                        help="[containment] use Pi's own depth-k expansion "
                             "union as the target (truncation test)")
    decide.add_argument("--max-depth", type=int, default=4,
                        help="[boundedness] search depth bound (default: 4)")
    decide.add_argument("--expect", choices=("true", "false"), default=None,
                        help="exit 1 unless the verdict matches")
    _add_config_flags(decide)

    analyze = sub.add_parser(
        "analyze",
        help="static analysis: typed diagnostics and class certificates")
    analyze.add_argument("--program", default=None,
                         help="path or inline Datalog source to analyze")
    analyze.add_argument("--goal", default=None,
                         help="goal predicate (enables reachability and "
                              "boundedness certificates)")
    analyze.add_argument("--format", choices=("text", "json"),
                         default="text",
                         help="report format (default: text)")
    analyze.add_argument("--scenario", default=None,
                         help="analyze one registry scenario's program")
    analyze.add_argument("--all-scenarios", action="store_true",
                         help="analyze every registry scenario program; "
                              "exit 1 if any carries error diagnostics")

    evalp = sub.add_parser(
        "eval", help="bottom-up evaluation of a program over facts")
    evalp.add_argument("--program", required=True,
                       help="path or inline Datalog source")
    evalp.add_argument("--db", required=True,
                       help="path or inline ground facts (e(a, b). ...)")
    evalp.add_argument("--goal", required=True, help="goal predicate")
    evalp.add_argument("--max-stages", type=int, default=None,
                       help="stage bound (the paper's Q^i semantics)")
    _add_config_flags(evalp)

    serve = sub.add_parser(
        "serve", help="run the decision service daemon (repro.service)")
    serve.add_argument("--socket", default=None,
                       help="unix socket path to bind")
    serve.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="TCP endpoint to bind (port 0 picks a free "
                            "one; printed on the ready line)")
    serve.add_argument("--workers", type=int, default=2,
                       help="pool workers (default: 2)")
    serve.add_argument("--executor", choices=("process", "thread"),
                       default="process",
                       help="worker executor (default: process)")
    serve.add_argument("--queue", type=int, default=64,
                       help="admission capacity: max requests in service "
                            "at once (default: 64)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="tries per request before a typed quarantine "
                            "error (default: 3)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="default per-request deadline in seconds "
                            "(a request's own deadline_s overrides)")
    serve.add_argument("--chaos", default=None,
                       help="fault-schedule spec for drills (same grammar "
                            "as REPRO_CHAOS)")
    serve.add_argument("--snapshot-dir", default=None, metavar="DIR",
                       help="warm-state snapshot directory: respawned "
                            "workers restore plans/images/automata from "
                            "it instead of cold-starting (defaults to "
                            "REPRO_SNAPSHOT_DIR)")
    serve.add_argument("--result-cache", type=int, default=0, metavar="N",
                       help="served-decision result cache capacity "
                            "(entries; default 0 = off).  Hits replay "
                            "the stored record without an admission "
                            "slot or a worker dispatch")
    serve.add_argument("--result-cache-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="expire result-cache entries after this "
                            "many seconds (default: no expiry)")

    request = sub.add_parser(
        "request", help="send one JSON request to a running daemon")
    request.add_argument("line",
                         help="the request JSON object, e.g. "
                              "'{\"op\": \"status\"}'")
    request.add_argument("--socket", default=None,
                         help="unix socket path of the daemon")
    request.add_argument("--tcp", default=None, metavar="HOST:PORT",
                         help="TCP endpoint of the daemon")
    request.add_argument("--timeout", type=float, default=60.0,
                         help="client timeout in seconds (default: 60)")

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzz sweep; exits 1 on any divergence")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="base seed of the deterministic case stream "
                           "(default: 0)")
    fuzz.add_argument("--iterations", type=int, default=50,
                      help="number of cases to draw (default: 50)")
    fuzz.add_argument("--matrix", choices=("full", "quick"), default="full",
                      help="evaluation matrix: full = every backend x "
                           "strategy, quick = one strategy per backend")
    fuzz.add_argument("--shrink", dest="shrink", action="store_true",
                      default=True,
                      help="delta-debug failures to minimal reproducers "
                           "(default)")
    fuzz.add_argument("--no-shrink", dest="shrink", action="store_false",
                      help="record raw failing cases without minimizing")
    fuzz.add_argument("--max-failures", type=int, default=1,
                      help="stop after this many diverging cases "
                           "(default: 1)")
    fuzz.add_argument("--out", type=Path, default=None,
                      help="directory for minimized regression files "
                           "(default: tests/regressions/ of the checkout)")
    fuzz.add_argument("--chaos-seed", type=int, default=None,
                      help="chaos mode: deterministically plant "
                           "memory/hang/corrupt faults on first tries "
                           "and prove the sweep recovers from each")

    sub.add_parser(
        "scenarios", add_help=False,
        help="scenario-matrix batch runner (flags of python -m "
             "repro.runner; try: scenarios --help)")
    sub.add_parser(
        "bench", add_help=False,
        help="trajectory benchmark suites (flags of "
             "benchmarks/run_bench.py)")
    sub.add_parser(
        "bench-check", add_help=False,
        help="perf-regression smoke guard (flags of "
             "benchmarks/check_regression.py)")
    return parser


def _cmd_decide(args) -> int:
    session = _session(args)
    program = _read_program(args.program)
    if args.kind == "equivalence":
        if args.nonrecursive is None:
            print("decide equivalence requires --nonrecursive",
                  file=sys.stderr)
            return 2
        decision = session.equivalent_to_nonrecursive(
            program, _read_program(args.nonrecursive), args.goal,
            nonrecursive_goal=args.nonrecursive_goal, method=args.method,
            deadline=args.deadline)
    elif args.kind == "containment":
        if (args.union is None) == (args.union_depth is None):
            print("decide containment requires exactly one of --union / "
                  "--union-depth", file=sys.stderr)
            return 2
        if args.union is not None:
            union = unfold_nonrecursive(_read_program(args.union),
                                        args.union_goal or args.goal)
        else:
            union = expansion_union(program, args.goal, args.union_depth)
        decision = session.contains(program, args.goal, union,
                                    method=args.method,
                                    deadline=args.deadline)
    else:  # boundedness
        decision = session.bounded(program, args.goal,
                                   max_depth=args.max_depth,
                                   method=args.method,
                                   deadline=args.deadline)
    _emit(decision, args.json)
    if args.expect is not None:
        if bool(decision) != (args.expect == "true"):
            print(f"FAIL: expected {args.expect}, verdict says "
                  f"{bool(decision)}", file=sys.stderr)
            return 1
    return 0


def _emit_report(name: Optional[str], report, as_json: bool) -> None:
    if as_json:
        record = report.as_dict()
        if name is not None:
            record = {"scenario": name, **record}
        print(json.dumps(record, indent=2, sort_keys=True))
        return
    if name is not None:
        print(f"=== {name}")
    print(report.render())


def _cmd_analyze(args) -> int:
    from .analysis import analyze_program, analyze_source

    targets = []
    if args.all_scenarios or args.scenario:
        from .workloads.scenarios import REGISTRY, get_scenario

        names = (sorted(REGISTRY) if args.all_scenarios
                 else [args.scenario])
        for name in names:
            scenario = get_scenario(name)
            payload = scenario.build()
            targets.append((name, payload["program"], payload.get("goal"),
                            "active-domain" in scenario.tags))
    elif args.program is not None:
        targets.append((None, _read_source(args.program), args.goal, False))
    else:
        print("analyze requires --program, --scenario, or "
              "--all-scenarios", file=sys.stderr)
        return 2

    failed = 0
    for name, program, goal, allow_unsafe in targets:
        if isinstance(program, str):
            report = analyze_source(program, goal)
        else:
            report = analyze_program(program, goal)
        _emit_report(name, report, args.format == "json")
        if report.ok:
            continue
        if allow_unsafe and all(d.code == "E001" for d in report.errors):
            # Scenarios tagged active-domain opt into unsafe rules
            # (the Section 5.3/6 lower-bound encodings); E001 is
            # expected there, anything else still fails the sweep.
            print(f"note: {name}: E001 accepted (active-domain scenario)")
            continue
        failed += 1
    if len(targets) > 1:
        print(f"analyzed {len(targets)} program(s), "
              f"{failed} with error diagnostics")
    return 1 if failed else 0


def _cmd_eval(args) -> int:
    session = _session(args)
    decision = session.query(_read_program(args.program),
                             _read_database(args.db), args.goal,
                             max_stages=args.max_stages,
                             deadline=args.deadline)
    _emit(decision, args.json)
    if not args.json:
        rows = sorted(tuple(str(constant.value) for constant in row)
                      for row in decision.raw)
        for row in rows:
            print(f"  {args.goal}({', '.join(row)})")
    return 0


def _parse_tcp(spec: Optional[str]):
    if spec is None:
        return None
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ReproError(f"--tcp expects HOST:PORT, got {spec!r}")
    return (host or "127.0.0.1", int(port))


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from .service import PoolConfig, ServiceConfig, ServiceServer

    try:
        config = ServiceConfig(
            socket_path=args.socket,
            tcp=_parse_tcp(args.tcp),
            capacity=args.queue,
            result_cache=args.result_cache,
            result_cache_ttl_s=args.result_cache_ttl,
            pool=PoolConfig(workers=args.workers, executor=args.executor,
                            max_attempts=args.max_attempts,
                            deadline_s=args.deadline, chaos=args.chaos,
                            snapshot_dir=args.snapshot_dir))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    async def run() -> None:
        server = ServiceServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, server.request_stop)
        # The ready line: flushed so wrappers (CI, the load driver)
        # can wait for it before connecting.
        print(f"repro-service ready on {' '.join(server.endpoints)} "
              f"(workers={config.pool.workers} "
              f"executor={config.pool.executor} "
              f"queue={config.capacity})", flush=True)
        await server.serve_until_stopped()

    asyncio.run(run())
    return 0


def _cmd_request(args) -> int:
    from .service.client import ServiceClient

    if (args.socket is None) == (args.tcp is None):
        print("request requires exactly one of --socket / --tcp",
              file=sys.stderr)
        return 2
    try:
        fields = json.loads(args.line)
    except json.JSONDecodeError as exc:
        print(f"error: request is not valid JSON: {exc}", file=sys.stderr)
        return 2
    with ServiceClient(socket_path=args.socket, tcp=_parse_tcp(args.tcp),
                       timeout=args.timeout) as client:
        response = client.request(fields)
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("type") in ("decision", "status", "ok") else 1


def _cmd_fuzz(args) -> int:
    from .fuzz import run_fuzz

    report = run_fuzz(seed=args.seed, iterations=args.iterations,
                      matrix=args.matrix, shrink=args.shrink,
                      out_dir=args.out, max_failures=args.max_failures,
                      chaos_seed=args.chaos_seed)
    kinds = ", ".join(f"{kind}={count}"
                      for kind, count in sorted(report.by_kind.items()))
    print(f"fuzz: seed={report.seed} cases={report.cases_run} "
          f"matrix={report.matrix} ({kinds})")
    if report.chaos_seed is not None:
        print(f"fuzz: chaos seed {report.chaos_seed}: "
              f"{report.faults_injected} fault(s) injected, "
              f"{report.faults_recovered} recovered")
    if report.ok:
        print("fuzz: all cells agree on every case")
        return 0
    for divergence in report.divergences:
        print(f"fuzz: DIVERGENCE {divergence.describe()}", file=sys.stderr)
    for case, path in zip(report.minimized, report.written):
        print(f"fuzz: minimized reproducer ({len(case.program.rules)} "
              f"rules) written to {path}", file=sys.stderr)
    return 1


def _run_bench_script(script: str, argv: List[str]) -> int:
    """Execute a benchmarks/ harness script in-process (they live in
    the checkout, not the package -- located via the repo root)."""
    path = find_repo_root() / "benchmarks" / script
    if not path.is_file():
        print(f"cannot find {path} -- the bench subcommands need a repo "
              f"checkout (benchmarks/ is not installed)", file=sys.stderr)
        return 2
    saved_argv = sys.argv
    sys.argv = [str(path)] + argv
    try:
        runpy.run_path(str(path), run_name="__main__")
    except SystemExit as status:
        code = status.code
        return code if isinstance(code, int) else (0 if code is None else 1)
    finally:
        sys.argv = saved_argv
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Pass-through subcommands keep their own argparse (and --help).
    if argv and argv[0] == "scenarios":
        from .runner.__main__ import main as runner_main

        return runner_main(argv[1:])
    if argv and argv[0] == "bench":
        return _run_bench_script("run_bench.py", argv[1:])
    if argv and argv[0] == "bench-check":
        return _run_bench_script("check_regression.py", argv[1:])

    args = _parser().parse_args(argv)
    try:
        if args.command == "decide":
            return _cmd_decide(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "eval":
            return _cmd_eval(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "request":
            return _cmd_request(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
    except BudgetExhausted as exc:
        print(f"error: {exc} (raise --deadline or drop it)",
              file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 2  # unreachable: argparse enforces the subcommand set


if __name__ == "__main__":
    sys.exit(main())
