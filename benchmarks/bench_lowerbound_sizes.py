"""E8/E13 -- Sections 5.3 and 6: lower-bound instance generators.

Paper claim: the reductions are polynomial -- the generated program and
query sizes grow polynomially in n (the space parameter is 2^n resp.
2^(2^n), but the *instances* stay small; that is what makes the bounds
"real" intractability).  Regenerates the instance-size series and
validates the encodings' trace semantics.
"""

import pytest

from repro.datalog.engine import evaluate
from repro.lowerbounds import (
    encode_deterministic,
    encode_nonrecursive,
    sweeping_machine,
    trace_database,
)


@pytest.mark.parametrize("n", [1, 2, 3])
def test_section_5_3_generation(benchmark, n):
    machine = sweeping_machine()
    enc = benchmark.pedantic(
        lambda: encode_deterministic(machine, n, include_transition_errors=(n <= 2)),
        rounds=2, iterations=1,
    )
    sizes = enc.sizes()
    benchmark.extra_info.update(sizes)
    # Address rules: 4 per level below n; queries grow polynomially.
    assert sizes["program_rules"] >= 4 * (n - 1)
    from repro.datalog.analysis import is_linear

    assert is_linear(enc.program)


@pytest.mark.parametrize("n", [1, 2, 3])
def test_section_6_generation(benchmark, n):
    machine = sweeping_machine()
    enc = benchmark.pedantic(
        lambda: encode_nonrecursive(machine, n, include_transition_errors=(n == 1)),
        rounds=2, iterations=1,
    )
    sizes = enc.sizes()
    benchmark.extra_info.update(sizes)
    from repro.datalog.analysis import is_nonrecursive

    assert is_nonrecursive(enc.nonrecursive)


def test_section_6_trace_validation(benchmark):
    machine = sweeping_machine()
    enc = encode_nonrecursive(machine, 1)
    trace = machine.run_configurations(4)

    def validate():
        legal = trace_database(machine, trace, 1)
        # Point 3 is an address point (points 0-1 address, 2 symbol).
        corrupted = trace_database(machine, trace, 1, corrupt_counter_at=3)
        return (
            bool(evaluate(enc.nonrecursive, legal).facts("c")),
            bool(evaluate(enc.nonrecursive, corrupted).facts("c")),
            bool(evaluate(enc.program, legal).facts("c")),
        )

    flags_legal, flags_corrupted, accepts = benchmark.pedantic(
        validate, rounds=1, iterations=1
    )
    assert not flags_legal and flags_corrupted and accepts
