"""Benchmark-suite configuration.

Each benchmark file regenerates one experiment of the paper's implied
experiment set.  The benchmarks assert the *shape* of the paper's
claims (who wins, growth rates, crossover locations) and record
measured series in ``benchmark.extra_info`` so the numbers land in the
saved JSON.

Cache lifecycle: every benchmark test starts from a **cold** process
-- the autouse fixture below routes through the same registered
cache-lifecycle hook the batch runner uses
(:func:`repro.core.clear_shared_caches`, which also drops the default
engine's compiled plans).  Without it, earlier tests warm the
process-wide shared caches for later ones and the numbers depend on
file ordering.
"""

import pytest

from repro.core.instances import clear_shared_caches


@pytest.fixture(autouse=True)
def cold_start_caches():
    """Start every benchmark from a cold cache state (fair cold-start
    numbers; pytest-benchmark's warmup rounds then measure the warm
    steady state explicitly)."""
    clear_shared_caches()
    yield


def series_info(benchmark, **series):
    """Attach measured series to the benchmark record (visible with
    --benchmark-verbose / in the JSON output)."""
    for key, value in series.items():
        benchmark.extra_info[key] = value
