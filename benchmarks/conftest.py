"""Benchmark-suite configuration.

Each benchmark file regenerates one experiment of EXPERIMENTS.md.  The
benchmarks assert the *shape* of the paper's claims (who wins, growth
rates, crossover locations) and record measured series in
``benchmark.extra_info`` so the numbers land in the saved JSON.
"""

import pytest


def series_info(benchmark, **series):
    """Attach measured series to the benchmark record (visible with
    --benchmark-verbose / in the JSON output)."""
    for key, value in series.items():
        benchmark.extra_info[key] = value
