"""E14 -- boundedness semi-decision via truncation equivalence.

Regenerates the certificates: Example 1.1's Pi_1 is certified bounded
at depth 2; transitive closure receives no certificate at any depth
(it is unbounded).
"""

import pytest

from repro.core.boundedness import bounded_at_depth, decide_boundedness
from repro.programs import buys_bounded, transitive_closure, widget_certified


def test_certify_pi1(benchmark):
    program = buys_bounded()
    result = benchmark(lambda: decide_boundedness(program, "buys", max_depth=3))
    assert result.bounded and result.depth == 2


def test_certify_widget(benchmark):
    program = widget_certified()
    result = benchmark(lambda: decide_boundedness(program, "ok", max_depth=3))
    assert result.bounded and result.depth == 2


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_tc_refutation_per_depth(benchmark, depth):
    program = transitive_closure()
    verdict = benchmark(lambda: bounded_at_depth(program, "p", depth))
    assert not verdict
