"""E14 -- boundedness semi-decision via truncation equivalence.

Regenerates the certificates over registry scenarios: Example 1.1's
Pi_1 is certified bounded at depth 2; transitive closure receives no
certificate at any depth (it is unbounded).
"""

import pytest

from repro.core.boundedness import bounded_at_depth, decide_boundedness
from repro.programs import transitive_closure
from repro.workloads import get_scenario


@pytest.mark.parametrize("name", ["bounded_buys", "bounded_widget"])
def test_certify_bounded_scenarios(benchmark, name):
    scenario = get_scenario(name)
    payload = scenario.build()
    result = benchmark(lambda: decide_boundedness(
        payload["program"], payload["goal"],
        max_depth=payload.get("max_depth", 3)))
    assert result.bounded == scenario.expected["bounded"]
    assert result.depth == scenario.expected["depth"]


def test_no_certificate_for_unbounded_tc(benchmark):
    scenario = get_scenario("unbounded_tc")
    payload = scenario.build()
    result = benchmark(lambda: decide_boundedness(
        payload["program"], payload["goal"],
        max_depth=payload.get("max_depth", 3)))
    assert result.bounded is None


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_tc_refutation_per_depth(benchmark, depth):
    program = transitive_closure()
    verdict = benchmark(lambda: bounded_at_depth(program, "p", depth))
    assert not verdict
