"""E1 -- Example 1.1: the flagship equivalence decisions.

Paper claim: Pi_1 is equivalent to its nonrecursive rewriting; Pi_2 is
not (it is inherently recursive).  Regenerates both verdicts and times
the full Theorem 6.5 decision.
"""

from repro.core import is_equivalent_to_nonrecursive
from repro.programs import (
    buys_bounded,
    buys_bounded_rewriting,
    buys_recursive,
    buys_recursive_rewriting,
)


def test_pi1_equivalence_decision(benchmark):
    pi1, rewrite = buys_bounded(), buys_bounded_rewriting()
    result = benchmark(
        lambda: is_equivalent_to_nonrecursive(pi1, rewrite, goal="buys")
    )
    assert result.equivalent
    benchmark.extra_info["verdict"] = "equivalent (matches paper)"


def test_pi2_equivalence_decision(benchmark):
    pi2, rewrite = buys_recursive(), buys_recursive_rewriting()
    result = benchmark(
        lambda: is_equivalent_to_nonrecursive(pi2, rewrite, goal="buys")
    )
    assert not result.equivalent
    assert result.backward_holds and not result.forward_holds
    benchmark.extra_info["verdict"] = "not equivalent (matches paper)"
    benchmark.extra_info["witness_height"] = result.forward_witness.height()


def test_pi2_word_pathway(benchmark):
    pi2, rewrite = buys_recursive(), buys_recursive_rewriting()
    result = benchmark(
        lambda: is_equivalent_to_nonrecursive(pi2, rewrite, goal="buys", method="word")
    )
    assert not result.equivalent
