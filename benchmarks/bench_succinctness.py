"""E9/E10/E11 -- Examples 6.1, 6.2, 6.3, 6.6: the succinctness of
nonrecursive programs, measured.

Paper claims regenerated here:

* dist_n (Example 6.1) unfolds to a single conjunctive query with
  exactly 2^n atoms, and that query is already minimal (its core has
  2^n atoms) -- "the smallest conjunctive query equivalent to dist_n
  is of exponential size";
* word_n (Example 6.6) unfolds to exactly 2^n disjuncts, each of size
  O(n);
* equal_n (Example 6.3) unfolds to 2^(2^n)-shaped unions (measured for
  tiny n).
"""

import pytest

from repro.cq.minimize import minimize
from repro.datalog.unfold import unfold_nonrecursive
from repro.programs import dist, equal, word


@pytest.mark.parametrize("n", [2, 4, 6])
def test_dist_unfolding_blowup(benchmark, n):
    program = dist(n)
    union = benchmark(lambda: unfold_nonrecursive(program, f"dist{n}"))
    assert len(union) == 1
    assert len(union.disjuncts[0].body) == 2 ** n
    benchmark.extra_info["program_size"] = program.size()
    benchmark.extra_info["cq_atoms"] = 2 ** n


@pytest.mark.parametrize("n", [2, 3])
def test_dist_core_is_exponential(benchmark, n):
    # The paper's point: no smaller CQ is equivalent.  The core of the
    # unfolding keeps all 2^n atoms (a path query is its own core).
    union = unfold_nonrecursive(dist(n), f"dist{n}")
    query = union.disjuncts[0]
    core = benchmark.pedantic(lambda: minimize(query), rounds=2, iterations=1)
    assert len(core.body) == 2 ** n


@pytest.mark.parametrize("n", [2, 4, 6])
def test_word_unfolding_many_small_disjuncts(benchmark, n):
    program = word(n)
    union = benchmark(lambda: unfold_nonrecursive(program, f"word{n}"))
    assert len(union) == 2 ** n
    assert max(len(q.body) for q in union) <= 2 * n
    benchmark.extra_info["disjuncts"] = len(union)
    benchmark.extra_info["largest_cq"] = max(len(q.body) for q in union)


@pytest.mark.parametrize("n", [1, 2])
def test_equal_unfolding(benchmark, n):
    program = equal(n)
    union = benchmark(lambda: unfold_nonrecursive(program, f"equal{n}"))
    # 2^(2^n) label patterns.
    assert len(union) == 2 ** (2 ** n)
    benchmark.extra_info["disjuncts"] = len(union)
