#!/usr/bin/env python
"""Perf-regression smoke guard for the benchmark trajectories.

Compares a freshly produced ``BENCH_plans.json`` (the *candidate*,
normally written by ``run_bench.py --smoke --out DIR``) against the
committed trajectory (the *baseline*) and exits nonzero when any
shared per-scenario median regresses by more than ``--threshold``.

Deliberately tolerant -- this is a tripwire for order-of-magnitude
regressions (a join kernel falling back to per-row interpretation),
not a microbenchmark gate:

* only records with the same ``smoke`` flag are compared;
* the baseline value per entry is the **maximum over the last three**
  matching records, so one lucky fast run cannot tighten the gate
  (one slow run loosens it instead -- the tolerant direction);
* timings under ``--min-ms`` are ignored (pure jitter at smoke sizes);
* throughput fields (``*_per_s``, e.g. the service's
  ``decisions_per_s``) are gated in the opposite direction -- the
  candidate fails when it falls below the *minimum* over the baseline
  window by more than the threshold;
* rate fields (``*_rate``, e.g. the service's ``cache_hit_rate``)
  **warn without failing** when they drop more than 20% below the
  weakest recent baseline -- hit rates depend on traffic shape, so a
  drop deserves a log line, not a blocked merge;
* the check is **skipped** (exit 0, with a message) when the baseline
  was recorded on a different machine architecture or Python
  major.minor, since cross-machine medians are not comparable.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py --smoke --out /tmp/bench
    python benchmarks/check_regression.py \
        --baseline BENCH_plans.json --candidate /tmp/bench/BENCH_plans.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Dict, List

#: Entry fields treated as timings (seconds).  Footprint fields
#: (``*_peak_kb``) are tracked in the trajectory but not gated.
TIMING_SUFFIX = "_s"

#: Entry fields treated as throughputs (per second) -- gated in the
#: opposite direction: lower is worse.  Checked *before* the timing
#: suffix (``decisions_per_s`` also ends with ``_s``).
THROUGHPUT_SUFFIX = "_per_s"

#: Entry fields treated as ratios in [0, 1] where higher is better
#: (e.g. the service's ``cache_hit_rate``).  These **warn, never
#: fail**: a hit rate is a property of the traffic shape as much as
#: the server, so a drop is worth a loud line in the log but must not
#: block a merge.
RATE_SUFFIX = "_rate"

#: Warn when a rate drops below this fraction of the weakest recent
#: baseline (0.8 = a more-than-20% drop).
RATE_WARN_FRACTION = 0.8


def load_records(path: Path, smoke: bool) -> List[Dict]:
    if not path.exists():
        return []
    try:
        trajectory = json.loads(path.read_text())
    except json.JSONDecodeError:
        return []
    return [r for r in trajectory if bool(r.get("smoke")) == smoke]


def comparable(baseline: Dict, candidate: Dict) -> bool:
    """Same architecture and Python major.minor?"""
    if baseline.get("machine") != candidate.get("machine"):
        return False
    minor = lambda v: ".".join(str(v).split(".")[:2])  # noqa: E731
    return minor(baseline.get("python", "")) == minor(candidate.get("python", ""))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_plans.json trajectory")
    parser.add_argument("--candidate", type=Path, required=True,
                        help="freshly written trajectory to check")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when candidate/baseline exceeds this "
                             "ratio (default: 2.0)")
    parser.add_argument("--min-ms", type=float, default=5.0,
                        help="ignore timings below this many milliseconds "
                             "(default: 5.0)")
    parser.add_argument("--history", type=int, default=3,
                        help="baseline = max over this many most recent "
                             "matching records (default: 3)")
    args = parser.parse_args()

    # A missing/empty candidate is a broken pipeline, not a pass: the
    # preceding CI step is contractually supposed to have written it.
    candidates = load_records(args.candidate, smoke=True)
    if not candidates:
        print(f"check_regression: ERROR -- no smoke record in "
              f"{args.candidate} (was the smoke suite run with --out?)")
        return 2
    candidate = candidates[-1]

    baselines = load_records(args.baseline, smoke=True)
    baselines = [r for r in baselines if comparable(r, candidate)]
    if not baselines:
        print("check_regression: SKIP -- no committed smoke baseline for "
              f"machine={candidate.get('machine')} "
              f"python={platform.python_version()} "
              "(cross-machine medians are not comparable)")
        return 0
    baselines = baselines[-args.history:]

    # name -> field -> reference value across the baseline window, in
    # the tolerant direction per field kind: max seconds for timings
    # (the slowest recent accepted run), min rate for throughputs (the
    # weakest recent accepted run).
    floor: Dict[str, Dict[str, float]] = {}
    for record in baselines:
        for entry in record.get("entries", []):
            fields = floor.setdefault(entry["name"], {})
            for key, value in entry.items():
                if not isinstance(value, (int, float)):
                    continue
                if key.endswith(THROUGHPUT_SUFFIX):
                    fields[key] = min(fields.get(key, value), value)
                elif key.endswith(RATE_SUFFIX):
                    fields[key] = min(fields.get(key, value), value)
                elif key.endswith(TIMING_SUFFIX):
                    fields[key] = max(fields.get(key, value), value)

    failures = []
    warnings = 0
    checked = 0
    min_seconds = args.min_ms / 1000.0
    for entry in candidate.get("entries", []):
        base_fields = floor.get(entry["name"], {})
        for key, base in base_fields.items():
            value = entry.get(key)
            if not isinstance(value, (int, float)):
                continue
            if key.endswith(RATE_SUFFIX):
                # Rates warn only: traffic-shape-dependent, not a
                # merge blocker.
                checked += 1
                dropped = value < base * RATE_WARN_FRACTION
                marker = "WARN" if dropped else "ok  "
                print(f"  {marker} {entry['name']:42s} {key:16s} "
                      f"{base:9.1%} -> {value:9.1%}")
                if dropped:
                    warnings += 1
                continue
            if key.endswith(THROUGHPUT_SUFFIX):
                # Throughput: regression is the candidate dropping
                # below the weakest recent baseline by the threshold.
                checked += 1
                ratio = base / value if value else float("inf")
                marker = "FAIL" if ratio > args.threshold else "ok  "
                print(f"  {marker} {entry['name']:42s} {key:16s} "
                      f"{base:9.1f}/s -> {value:9.1f}/s "
                      f"({ratio:.2f}x slower)")
                if ratio > args.threshold:
                    failures.append((entry["name"], key, ratio))
                continue
            if base < min_seconds and value < min_seconds:
                continue
            checked += 1
            ratio = value / base if base else float("inf")
            marker = "FAIL" if ratio > args.threshold else "ok  "
            print(f"  {marker} {entry['name']:42s} {key:16s} "
                  f"{base*1000:9.2f}ms -> {value*1000:9.2f}ms "
                  f"({ratio:.2f}x)")
            if ratio > args.threshold:
                failures.append((entry["name"], key, ratio))

    if warnings:
        print(f"check_regression: WARNING -- {warnings} rate metric(s) "
              f"dropped more than "
              f"{1 - RATE_WARN_FRACTION:.0%} below the baseline window "
              f"(not a failure)")
    if failures:
        print(f"check_regression: {len(failures)} metric(s) regressed "
              f">{args.threshold}x against {args.baseline}")
        return 1
    print(f"check_regression: {checked} metric(s) within {args.threshold}x "
          f"of the committed baseline ({len(baselines)} record window)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
