"""E15 -- automata substrate (Propositions 4.2, 4.3, 4.5, 4.6).

Regenerates the substrate cost model the upper bounds rely on:

* word/tree emptiness is cheap (reachability / bottom-up fixpoint);
* containment is the expensive operation, with the antichain search
  beating the complement-then-intersect route (ablation).
"""

import random

import pytest

from repro.automata.tree import TreeAutomaton
from repro.automata.tree import contained_in as tree_contained_in
from repro.automata.word import NFA
from repro.automata.word import contained_in as nfa_contained_in
from repro.automata.word import contained_in_via_complement


def ladder_nfa(size: int) -> NFA:
    """Accepts words over {a, b} whose length is a multiple of size."""
    states = [f"s{i}" for i in range(size)]
    transitions = []
    for i, state in enumerate(states):
        target = states[(i + 1) % size]
        transitions.append((state, "a", target))
        transitions.append((state, "b", target))
    return NFA.build("ab", states, [states[0]], [states[0]], transitions)


def random_tree_automaton(rng: random.Random, size: int) -> TreeAutomaton:
    states = [f"s{i}" for i in range(size)]
    transitions = [(s, "a", ()) for s in states]
    for state in states:
        for _ in range(3):
            transitions.append(
                (state, "f", (rng.choice(states), rng.choice(states)))
            )
    return TreeAutomaton.build(["f", "a"], states, [states[0]], transitions)


@pytest.mark.parametrize("size", [8, 32])
def test_nfa_emptiness(benchmark, size):
    automaton = ladder_nfa(size)
    assert not benchmark(automaton.is_empty)


@pytest.mark.parametrize("size", [4, 6])
def test_nfa_containment_antichain(benchmark, size):
    left, right = ladder_nfa(size), ladder_nfa(2 * size)
    verdict = benchmark(lambda: nfa_contained_in(right, left))
    assert verdict  # multiples of 2k are multiples of k


@pytest.mark.parametrize("size", [4, 6])
def test_nfa_containment_complement_ablation(benchmark, size):
    left, right = ladder_nfa(size), ladder_nfa(2 * size)
    verdict = benchmark(lambda: contained_in_via_complement(right, left))
    assert verdict


@pytest.mark.parametrize("size", [4, 8])
def test_tree_emptiness(benchmark, size):
    automaton = random_tree_automaton(random.Random(size), size)
    assert not benchmark(automaton.is_empty)


@pytest.mark.parametrize("size", [3, 5])
def test_tree_containment(benchmark, size):
    rng = random.Random(size)
    left = random_tree_automaton(rng, size)
    verdict = benchmark(lambda: tree_contained_in(left, left))
    assert verdict
