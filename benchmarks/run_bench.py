#!/usr/bin/env python
"""Standalone benchmark runner with a machine-readable trajectory.

Times the performance-critical workloads of the repository -- the
decision stack over registry scenarios, the generic automata
substrate, and compiled join plans -- and appends a run record
(median-of-N timings plus derived speedups) to
``BENCH_automata.json`` / ``BENCH_plans.json`` so performance can be
tracked across commits.

The decision-stack and plans suites draw their configurations from the
**scenario registry** (:mod:`repro.workloads.scenarios`) -- the same
catalogue the batch runner (``python -m repro.runner``) and CI use --
rather than ad-hoc per-file configs.  Each decision case is timed in
three modes:

* ``seed_like``  -- frozenset reference kernel with the process-wide
  shared caches cleared before every iteration (via the registered
  cache-lifecycle hooks, so compiled plans drop too): approximates the
  pre-kernel implementation;
* ``reference``  -- frozenset kernel, warm shared caches (isolates the
  bitmask representation from the memoization);
* ``bitset``     -- the default bitset kernel, warm shared caches (the
  shipped configuration).

``speedup`` is ``seed_like / bitset`` -- what the kernel rework buys
on the steady-state (repeated-query) workload the benchmarks model.

The plans suite ranges over the three engine data planes (columnar /
row-compiled / interpretive) and the **scale suite** times the
columnar batch kernels against the row-at-a-time compiled reference on
``tag:scale`` scenarios (10^5-fact EDBs).  Every entry also records a
tracemalloc ``*_peak_kb`` footprint, measured outside the timing loops
(see ``docs/BENCHMARKS.md`` for the schema).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run, repo-root JSON
    PYTHONPATH=src python benchmarks/run_bench.py --smoke    # tiny sizes, no JSON write
    PYTHONPATH=src python benchmarks/run_bench.py --out DIR  # write JSON elsewhere
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.automata.kernel import KernelConfig  # noqa: E402
from repro.automata.tree import TreeAutomaton, find_counterexample_tree  # noqa: E402
from repro.automata.word import NFA, find_counterexample_word  # noqa: E402
from repro.core.instances import clear_shared_caches  # noqa: E402
from repro.datalog.engine import Engine, EngineConfig  # noqa: E402
from repro.runner.trajectory import (  # noqa: E402
    AUTOMATA_TRAJECTORY,
    PLANS_TRAJECTORY,
    append_trajectory,
    run_metadata,
)
from repro.workloads.scenarios import (  # noqa: E402
    get_scenario,
    kind_runner,
    scenario_names,
)

BITSET = KernelConfig(backend="bitset")
REFERENCE = KernelConfig(backend="frozenset")

# Registry scenarios timed by the decision-stack suite (kernel ablation).
DECISION_CASES = [
    "contain_chain_w1",
    "contain_chain_w2",
    "contain_tc_trunc1",
    "contain_tc_trunc2",
    "contain_tc_trunc3",
    "bounded_buys",
    "bounded_widget",
    "unbounded_tc",
]
DECISION_CASES_SMOKE = ["contain_chain_w1", "contain_tc_trunc1", "bounded_buys"]

# Evaluation scenarios timed by the plans suite (engine ablation).
PLANS_CASES = ["eval_tc_chain_120", "eval_tc_grid_10x10", "eval_sg_tree_d5"]
PLANS_CASES_SMOKE = ["eval_sg_tree_d5"]

# Large-EDB scenarios timed by the scale suite (columnar vs row-at-a-
# time data plane; 10^5 facts each).
SCALE_CASES = ["scale_chain_2hop_100k", "scale_random_reach_120k",
               "scale_grid_reach_230x230"]
SCALE_CASES_SMOKE = ["scale_chain_2hop_5k"]


def median_seconds(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def peak_kb(fn) -> float:
    """Peak traced allocation of one *fn* call, in KiB.

    Measured once, outside the timing loops -- tracemalloc slows the
    interpreter severalfold, so footprint and wall time come from
    separate runs of the same callable.
    """
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return round(peak / 1024, 1)


def time_kernel_case(name: str, fn, repeats: int):
    """Time one decision-stack case in the three kernel modes.

    ``fn(kernel)`` runs the decision once; cache lifecycle goes through
    the registered hooks (:func:`clear_shared_caches`), so 'cold'
    really is cold -- enumerators, automata, and compiled plans all
    drop together.
    """

    def seed_like():
        clear_shared_caches()
        fn(REFERENCE)

    clear_shared_caches()
    seed = median_seconds(seed_like, repeats)
    fn(REFERENCE)  # warm the shared caches
    reference = median_seconds(lambda: fn(REFERENCE), repeats)
    fn(BITSET)
    bitset = median_seconds(lambda: fn(BITSET), repeats)
    entry = {
        "name": name,
        "repeats": repeats,
        "seed_like_s": round(seed, 6),
        "reference_s": round(reference, 6),
        "bitset_s": round(bitset, 6),
        "speedup": round(seed / bitset, 2) if bitset else None,
        "bitset_peak_kb": peak_kb(lambda: fn(BITSET)),
    }
    print(f"  {name:42s} seed {seed*1000:8.2f}ms  "
          f"ref {reference*1000:8.2f}ms  bitset {bitset*1000:8.2f}ms  "
          f"speedup {entry['speedup']}x")
    return entry


def scenario_kernel_fn(name: str):
    """A ``fn(kernel)`` closure for one registry scenario: build the
    payload once, run the scenario's decision procedure under the given
    kernel, and assert the ground-truth verdict every time."""
    scenario = get_scenario(name)
    payload = scenario.build()
    runner = kind_runner(scenario.kind)
    expected = dict(scenario.expected)

    def fn(kernel):
        verdict, _ = runner(payload, None, kernel)
        assert verdict == expected, (name, verdict, expected)

    return fn


def decision_suite(repeats: int, smoke: bool):
    print("decision stack (registry scenarios):")
    cases = DECISION_CASES_SMOKE if smoke else DECISION_CASES
    return [time_kernel_case(name, scenario_kernel_fn(name), repeats)
            for name in cases]


def _random_nta(rng) -> TreeAutomaton:
    states = [f"s{i}" for i in range(5)]
    transitions = []
    for state in states:
        if rng.random() < 0.8:
            transitions.append((state, "a", ()))
        for _ in range(rng.randint(0, 4)):
            transitions.append(
                (state, "f", (rng.choice(states), rng.choice(states)))
            )
        if rng.random() < 0.5:
            transitions.append((state, "g", (rng.choice(states),)))
    return TreeAutomaton.build(
        ["f", "g", "a"], states, [rng.choice(states)], transitions
    )


def _random_nfa(rng, states: int, density: float = 0.3,
                symbols: str = "ab") -> NFA:
    names = [f"s{i}" for i in range(states)]
    transitions = []
    for source in names:
        for symbol in symbols:
            for target in names:
                if rng.random() < density:
                    transitions.append((source, symbol, target))
    return NFA.build(
        symbols, names, [names[0]],
        [n for n in names if rng.random() < 0.4] or [names[-1]],
        transitions,
    )


def automata_suite(repeats: int, smoke: bool):
    import random

    print("automata substrate:")
    entries = []
    pairs = 4 if smoke else 16
    rng = random.Random(2024)
    tree_pairs = [(_random_nta(rng), _random_nta(rng)) for _ in range(pairs)]

    def tree_batch(kernel):
        for left, right in tree_pairs:
            find_counterexample_tree(left, right, kernel=kernel)

    entries.append(time_kernel_case("tree_containment_batch", tree_batch, repeats))

    size = 4 if smoke else 16
    nfa_pairs = [(_random_nfa(rng, size), _random_nfa(rng, size)) for _ in range(pairs)]

    def word_batch(kernel):
        for left, right in nfa_pairs:
            find_counterexample_word(left, right, kernel=kernel)

    entries.append(time_kernel_case("word_containment_batch", word_batch, repeats))

    # Sparse, wider-alphabet NFAs: the reachable subset space is large
    # (hundreds of subset states), which is where the mask-based
    # construction pays off.
    det_size = 4 if smoke else 18
    det_nfas = [_random_nfa(rng, det_size, density=0.1, symbols="abc")
                for _ in range(4 if smoke else 8)]

    def determinize_batch(kernel):
        for automaton in det_nfas:
            automaton.determinize(kernel=kernel)

    entries.append(time_kernel_case("nfa_determinize_batch", determinize_batch, repeats))
    return entries


def plans_suite(repeats: int, smoke: bool):
    """Columnar vs row-compiled vs interpretive engine over registry
    evaluation scenarios (each run's verdict is checked against the
    structural ground truth)."""
    print("evaluation plans (registry scenarios):")
    columnar = Engine(EngineConfig(backend="columnar"))
    compiled = Engine(EngineConfig(backend="rows"))
    interpretive = Engine(EngineConfig(compiled=False))
    entries = []
    cases = PLANS_CASES_SMOKE if smoke else PLANS_CASES
    for name in cases:
        scenario = get_scenario(name)
        payload = scenario.build()
        runner = kind_runner(scenario.kind)
        expected = dict(scenario.expected)

        def run(engine):
            verdict, _ = runner(payload, engine, None)
            assert verdict == expected, (name, verdict, expected)

        columnar_s = median_seconds(lambda: run(columnar), repeats)
        compiled_s = median_seconds(lambda: run(compiled), repeats)
        interpretive_s = median_seconds(lambda: run(interpretive), repeats)
        entry = {
            "name": name,
            "repeats": repeats,
            "columnar_s": round(columnar_s, 6),
            "compiled_s": round(compiled_s, 6),
            "interpretive_s": round(interpretive_s, 6),
            "speedup": (round(interpretive_s / compiled_s, 2)
                        if compiled_s else None),
            "columnar_speedup": (round(compiled_s / columnar_s, 2)
                                 if columnar_s else None),
            "columnar_peak_kb": peak_kb(lambda: run(columnar)),
            "compiled_peak_kb": peak_kb(lambda: run(compiled)),
        }
        print(f"  {name:42s} columnar {columnar_s*1000:8.2f}ms  "
              f"compiled {compiled_s*1000:8.2f}ms  "
              f"interpretive {interpretive_s*1000:8.2f}ms  "
              f"speedup {entry['speedup']}x")
        entries.append(entry)
    return entries


def scale_suite(repeats: int, smoke: bool):
    """The large-EDB tier: columnar batch kernels vs the row-at-a-time
    compiled reference on ``tag:scale`` scenarios (10^5-fact EDBs).

    Times the bare ``Engine.evaluate`` fixpoint (ground truth --
    including the row checksum over 10^5 rows -- is asserted once per
    engine outside the timing loops) and records tracemalloc peaks so
    the columnar footprint win lands in the trajectory too.
    """
    print("scale tier (columnar data plane):")
    # "columnar" is the shipped default -- the fused batch kernels
    # (radix-partitioned joins, bitmap semijoins, fused
    # filter+project).  "basic" pins the pre-kernel columnar path so
    # the kernel win itself is a gated trajectory number (fused_s vs
    # basic_s), not folded invisibly into columnar_s.
    columnar = Engine(EngineConfig(backend="columnar"))
    basic = Engine(EngineConfig(backend="columnar", joins="basic"))
    compiled = Engine(EngineConfig(backend="rows"))
    entries = []
    cases = SCALE_CASES_SMOKE if smoke else SCALE_CASES
    runner = kind_runner("evaluation")
    for name in cases:
        scenario = get_scenario(name)
        payload = scenario.build()
        expected = dict(scenario.expected)
        for engine in (columnar, basic, compiled):
            verdict, _ = runner(payload, engine, None)
            assert verdict == expected, (name, verdict, expected)
        program, database = payload["program"], payload["database"]

        columnar_s = median_seconds(
            lambda: columnar.evaluate(program, database), repeats)
        basic_s = median_seconds(
            lambda: basic.evaluate(program, database), repeats)
        compiled_s = median_seconds(
            lambda: compiled.evaluate(program, database), repeats)
        entry = {
            "name": name,
            "repeats": repeats,
            "edb_facts": len(database),
            "columnar_s": round(columnar_s, 6),
            "basic_s": round(basic_s, 6),
            "compiled_s": round(compiled_s, 6),
            "speedup": (round(compiled_s / columnar_s, 2)
                        if columnar_s else None),
            "fused_speedup": (round(basic_s / columnar_s, 2)
                              if columnar_s else None),
            "columnar_peak_kb": peak_kb(
                lambda: columnar.evaluate(program, database)),
            "compiled_peak_kb": peak_kb(
                lambda: compiled.evaluate(program, database)),
        }
        print(f"  {name:42s} fused {columnar_s*1000:8.2f}ms  "
              f"basic {basic_s*1000:8.2f}ms  "
              f"compiled {compiled_s*1000:8.2f}ms  "
              f"fused/basic {entry['fused_speedup']}x  "
              f"peak {entry['columnar_peak_kb']:.0f}/"
              f"{entry['compiled_peak_kb']:.0f}KiB")
        entries.append(entry)
    return entries


def analyze_suite(repeats: int, smoke: bool):
    """The static analyzer swept over every registry scenario program
    (diagnostics + class certificates + plan lints).  Budget: the
    analyzer must stay interactive, < 50 ms per program."""
    from repro.analysis import analyze_program

    print("static analyzer (registry scenarios):")
    targets = []
    for name in scenario_names():
        scenario = get_scenario(name)
        payload = scenario.build()
        targets.append((payload["program"], payload.get("goal")))

    def sweep():
        for program, goal in targets:
            analyze_program(program, goal)

    analyze_s = median_seconds(sweep, repeats)
    per_program_s = analyze_s / max(1, len(targets))
    entry = {
        "name": "analyze_registry",
        "repeats": repeats,
        "programs": len(targets),
        "analyze_s": round(analyze_s, 6),
        "analyze_per_program_s": round(per_program_s, 6),
    }
    budget_note = "" if per_program_s < 0.050 else \
        "  !! exceeds the 50ms/program budget"
    print(f"  {'analyze_registry':42s} sweep    {analyze_s*1000:8.2f}ms  "
          f"per-program {per_program_s*1000:8.3f}ms "
          f"({len(targets)} programs){budget_note}")
    return [entry]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5,
                        help="iterations per timing (median is recorded)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes, median of 3, no JSON write "
                             "unless --out is given")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for the BENCH_*.json trajectories "
                             "(default: repo root; with --smoke: no write)")
    parser.add_argument("--suite",
                        choices=["all", "automata", "plans", "scale"],
                        default="all")
    args = parser.parse_args()

    # Smoke still takes a median (of 3): the CI regression guard
    # compares smoke records, and single-iteration ms-scale timings
    # jitter well past its 2x threshold.
    repeats = 3 if args.smoke else args.repeats
    meta = run_metadata(REPO_ROOT)
    print(f"run_bench: commit {meta['commit']}, python {meta['python']}, "
          f"repeats {repeats}{' (smoke)' if args.smoke else ''}; "
          f"{len(scenario_names())} scenarios registered")

    automata_entries = []
    plans_entries = []
    if args.suite in ("all", "automata"):
        automata_entries += decision_suite(repeats, args.smoke)
        automata_entries += automata_suite(repeats, args.smoke)
    if args.suite in ("all", "plans"):
        plans_entries += plans_suite(repeats, args.smoke)
        plans_entries += analyze_suite(repeats, args.smoke)
    if args.suite in ("all", "scale"):
        plans_entries += scale_suite(repeats, args.smoke)

    out_dir = args.out
    if out_dir is None:
        if args.smoke:
            return 0
        out_dir = REPO_ROOT
    out_dir.mkdir(parents=True, exist_ok=True)
    if automata_entries:
        append_trajectory(out_dir / AUTOMATA_TRAJECTORY,
                          {**meta, "smoke": args.smoke, "entries": automata_entries})
    if plans_entries:
        append_trajectory(out_dir / PLANS_TRAJECTORY,
                          {**meta, "smoke": args.smoke, "entries": plans_entries})
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
