#!/usr/bin/env python
"""Standalone benchmark runner with a machine-readable trajectory.

Runs the performance-critical workloads of the repository -- compiled
join plans, containment scaling, boundedness, and the generic automata
substrate -- and appends a run record (median-of-N timings plus
derived speedups) to ``BENCH_automata.json`` / ``BENCH_plans.json`` so
performance can be tracked across commits.

Each decision-stack case is timed in three modes:

* ``seed_like``  -- frozenset reference kernel with the process-wide
  shared caches cleared before every iteration: approximates the
  pre-kernel implementation (cold enumeration, frozenset subsets);
* ``reference``  -- frozenset kernel, warm shared caches (isolates the
  bitmask representation from the memoization);
* ``bitset``     -- the default bitset kernel, warm shared caches (the
  shipped configuration).

``speedup`` is ``seed_like / bitset`` -- what the kernel rework buys
on the steady-state (repeated-query) workload the benchmarks model.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run, repo-root JSON
    PYTHONPATH=src python benchmarks/run_bench.py --smoke    # tiny sizes, no JSON write
    PYTHONPATH=src python benchmarks/run_bench.py --out DIR  # write JSON elsewhere
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.automata.kernel import KernelConfig  # noqa: E402
from repro.automata.tree import TreeAutomaton, find_counterexample_tree  # noqa: E402
from repro.automata.word import NFA, find_counterexample_word  # noqa: E402
from repro.core.boundedness import bounded_at_depth, decide_boundedness  # noqa: E402
from repro.core.instances import clear_shared_caches  # noqa: E402
from repro.core.tree_containment import datalog_contained_in_ucq  # noqa: E402
from repro.cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries  # noqa: E402
from repro.datalog.database import Database  # noqa: E402
from repro.datalog.engine import Engine, EngineConfig  # noqa: E402
from repro.datalog.parser import parse_atom  # noqa: E402
from repro.datalog.unfold import expansion_union  # noqa: E402
from repro.programs import (  # noqa: E402
    buys_bounded,
    chain_program,
    transitive_closure,
    widget_certified,
)

BITSET = KernelConfig(backend="bitset")
REFERENCE = KernelConfig(backend="frozenset")


def median_seconds(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def time_kernel_case(name: str, fn, repeats: int):
    """Time one decision-stack case in the three kernel modes."""

    def seed_like():
        clear_shared_caches()
        fn(REFERENCE)

    clear_shared_caches()
    seed = median_seconds(seed_like, repeats)
    fn(REFERENCE)  # warm the shared caches
    reference = median_seconds(lambda: fn(REFERENCE), repeats)
    fn(BITSET)
    bitset = median_seconds(lambda: fn(BITSET), repeats)
    entry = {
        "name": name,
        "repeats": repeats,
        "seed_like_s": round(seed, 6),
        "reference_s": round(reference, 6),
        "bitset_s": round(bitset, 6),
        "speedup": round(seed / bitset, 2) if bitset else None,
    }
    print(f"  {name:42s} seed {seed*1000:8.2f}ms  "
          f"ref {reference*1000:8.2f}ms  bitset {bitset*1000:8.2f}ms  "
          f"speedup {entry['speedup']}x")
    return entry


def covering_union() -> UnionOfConjunctiveQueries:
    return UnionOfConjunctiveQueries(
        [
            ConjunctiveQuery(parse_atom("p(X0, X1)"), (parse_atom("e0(X0, X1)"),)),
            ConjunctiveQuery(parse_atom("p(X0, X1)"), (parse_atom("g0(X0, Z)"),)),
        ]
    )


def containment_suite(repeats: int, smoke: bool):
    print("containment scaling:")
    entries = []
    widths = [1] if smoke else [1, 2]
    for width in widths:
        program = chain_program(width)
        union = covering_union()
        entries.append(time_kernel_case(
            f"containment_width{width}",
            lambda k, p=program, u=union: datalog_contained_in_ucq(p, "p", u, kernel=k),
            repeats,
        ))
    depths = [1] if smoke else [1, 2, 3]
    program = transitive_closure()
    for depth in depths:
        union = expansion_union(program, "p", depth)
        entries.append(time_kernel_case(
            f"containment_tc_depth{depth}",
            lambda k, u=union: datalog_contained_in_ucq(program, "p", u, kernel=k),
            repeats,
        ))
    return entries


def boundedness_suite(repeats: int, smoke: bool):
    print("boundedness:")
    entries = []
    cases = [
        ("boundedness_buys", buys_bounded(), "buys"),
        ("boundedness_widget", widget_certified(), "ok"),
    ]
    for name, program, goal in cases:
        entries.append(time_kernel_case(
            name,
            lambda k, p=program, g=goal: decide_boundedness(p, g, max_depth=3, kernel=k),
            repeats,
        ))
        if smoke:
            break
    if not smoke:
        tc = transitive_closure()
        entries.append(time_kernel_case(
            "boundedness_tc_refute_depth3",
            lambda k: bounded_at_depth(tc, "p", 3, kernel=k),
            repeats,
        ))
    return entries


def _random_nta(rng) -> TreeAutomaton:
    states = [f"s{i}" for i in range(5)]
    transitions = []
    for state in states:
        if rng.random() < 0.8:
            transitions.append((state, "a", ()))
        for _ in range(rng.randint(0, 4)):
            transitions.append(
                (state, "f", (rng.choice(states), rng.choice(states)))
            )
        if rng.random() < 0.5:
            transitions.append((state, "g", (rng.choice(states),)))
    return TreeAutomaton.build(
        ["f", "g", "a"], states, [rng.choice(states)], transitions
    )


def _random_nfa(rng, states: int, density: float = 0.3,
                symbols: str = "ab") -> NFA:
    names = [f"s{i}" for i in range(states)]
    transitions = []
    for source in names:
        for symbol in symbols:
            for target in names:
                if rng.random() < density:
                    transitions.append((source, symbol, target))
    return NFA.build(
        symbols, names, [names[0]],
        [n for n in names if rng.random() < 0.4] or [names[-1]],
        transitions,
    )


def automata_suite(repeats: int, smoke: bool):
    import random

    print("automata substrate:")
    entries = []
    pairs = 4 if smoke else 16
    rng = random.Random(2024)
    tree_pairs = [(_random_nta(rng), _random_nta(rng)) for _ in range(pairs)]

    def tree_batch(kernel):
        for left, right in tree_pairs:
            find_counterexample_tree(left, right, kernel=kernel)

    entries.append(time_kernel_case("tree_containment_batch", tree_batch, repeats))

    size = 4 if smoke else 16
    nfa_pairs = [(_random_nfa(rng, size), _random_nfa(rng, size)) for _ in range(pairs)]

    def word_batch(kernel):
        for left, right in nfa_pairs:
            find_counterexample_word(left, right, kernel=kernel)

    entries.append(time_kernel_case("word_containment_batch", word_batch, repeats))

    # Sparse, wider-alphabet NFAs: the reachable subset space is large
    # (hundreds of subset states), which is where the mask-based
    # construction pays off.
    det_size = 4 if smoke else 18
    det_nfas = [_random_nfa(rng, det_size, density=0.1, symbols="abc")
                for _ in range(4 if smoke else 8)]

    def determinize_batch(kernel):
        for automaton in det_nfas:
            automaton.determinize(kernel=kernel)

    entries.append(time_kernel_case("nfa_determinize_batch", determinize_batch, repeats))
    return entries


def plans_suite(repeats: int, smoke: bool):
    print("evaluation plans:")
    compiled = Engine(EngineConfig(compiled=True))
    interpretive = Engine(EngineConfig(compiled=False))
    program = transitive_closure()
    length = 60 if smoke else 240
    database = Database()
    for i in range(length):
        database.add("e", (f"v{i}", f"v{i+1}"))
        database.add("e0", (f"v{i}", f"v{i+1}"))

    entries = []
    compiled_s = median_seconds(lambda: compiled.evaluate(program, database), repeats)
    interpretive_s = median_seconds(
        lambda: interpretive.evaluate(program, database), repeats
    )
    entry = {
        "name": f"tc_chain_{length}",
        "repeats": repeats,
        "compiled_s": round(compiled_s, 6),
        "interpretive_s": round(interpretive_s, 6),
        "speedup": round(interpretive_s / compiled_s, 2) if compiled_s else None,
    }
    print(f"  {entry['name']:42s} compiled {compiled_s*1000:8.2f}ms  "
          f"interpretive {interpretive_s*1000:8.2f}ms  speedup {entry['speedup']}x")
    entries.append(entry)
    return entries


def run_metadata():
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        commit = "unknown"
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "commit": commit,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def append_trajectory(path: Path, record) -> None:
    trajectory = []
    if path.exists():
        try:
            trajectory = json.loads(path.read_text())
        except json.JSONDecodeError:
            trajectory = []
    trajectory.append(record)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"wrote {path}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5,
                        help="iterations per timing (median is recorded)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes, single repeat, no JSON write "
                             "unless --out is given")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for the BENCH_*.json trajectories "
                             "(default: repo root; with --smoke: no write)")
    parser.add_argument("--suite", choices=["all", "automata", "plans"],
                        default="all")
    args = parser.parse_args()

    repeats = 1 if args.smoke else args.repeats
    meta = run_metadata()
    print(f"run_bench: commit {meta['commit']}, python {meta['python']}, "
          f"repeats {repeats}{' (smoke)' if args.smoke else ''}")

    automata_entries = []
    plans_entries = []
    if args.suite in ("all", "automata"):
        automata_entries += containment_suite(repeats, args.smoke)
        automata_entries += boundedness_suite(repeats, args.smoke)
        automata_entries += automata_suite(repeats, args.smoke)
    if args.suite in ("all", "plans"):
        plans_entries += plans_suite(repeats, args.smoke)

    out_dir = args.out
    if out_dir is None:
        if args.smoke:
            return 0
        out_dir = REPO_ROOT
    out_dir.mkdir(parents=True, exist_ok=True)
    if automata_entries:
        append_trajectory(out_dir / "BENCH_automata.json",
                          {**meta, "smoke": args.smoke, "entries": automata_entries})
    if plans_entries:
        append_trajectory(out_dir / "BENCH_plans.json",
                          {**meta, "smoke": args.smoke, "entries": plans_entries})
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
