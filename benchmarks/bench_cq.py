"""Substrate bench -- Theorems 2.2/2.3: conjunctive-query containment
and minimization costs (the NP-complete primitive underlying the easy
direction of Theorem 6.5)."""

import pytest

from repro.cq.containment import cq_contained_in, ucq_contained_in
from repro.cq.minimize import minimize
from repro.cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.parser import parse_atom


def path_query(length: int, predicate: str = "e") -> ConjunctiveQuery:
    atoms = tuple(
        parse_atom(f"{predicate}(Z{i}, Z{i+1})") for i in range(length)
    )
    return ConjunctiveQuery(parse_atom(f"q(Z0, Z{length})"), atoms)


@pytest.mark.parametrize("length", [4, 8, 16])
def test_path_containment(benchmark, length):
    longer = path_query(2 * length)
    shorter = path_query(length)
    # A 2k-path's endpoints are NOT a k-path pair (distinguished ends
    # pin the mapping), so containment fails -- worst case search.
    verdict = benchmark(lambda: cq_contained_in(longer, shorter))
    assert not verdict


@pytest.mark.parametrize("length", [4, 8])
def test_boolean_path_containment(benchmark, length):
    # Boolean variants: a longer walk IS contained in a shorter one.
    longer = ConjunctiveQuery(parse_atom("q()"), path_query(2 * length).body)
    shorter = ConjunctiveQuery(parse_atom("q()"), path_query(length).body)
    verdict = benchmark(lambda: cq_contained_in(longer, shorter))
    assert verdict


@pytest.mark.parametrize("copies", [2, 4])
def test_minimization(benchmark, copies):
    # 'copies' disjoint duplicates of a 3-path collapse onto one.
    atoms = []
    for c in range(copies):
        atoms.extend(
            parse_atom(f"e(A{c}_{i}, A{c}_{i+1})") for i in range(3)
        )
    query = ConjunctiveQuery(parse_atom("q()"), tuple(atoms))
    core = benchmark(lambda: minimize(query))
    assert len(core.body) == 3


def test_ucq_containment(benchmark):
    paths = [path_query(k) for k in range(1, 6)]
    small = UnionOfConjunctiveQueries(paths[:3])
    big = UnionOfConjunctiveQueries(paths)
    verdict = benchmark(lambda: ucq_contained_in(small, big))
    assert verdict
