"""E12 -- Theorem 6.5: end-to-end equivalence to nonrecursive programs.

Times the full pipeline (unfold the nonrecursive program, decide the
easy direction by canonical databases, decide the hard direction by
proof-tree automata) on a family of bounded recursive programs whose
rewritings grow with a width parameter.
"""

import pytest

from repro.core import is_equivalent_to_nonrecursive
from repro.datalog.parser import parse_program


def guarded_program(width: int):
    """A bounded recursive program with *width* guard atoms (a scaled
    version of Example 1.1's Pi_1) and its rewriting."""
    guards = ", ".join(f"g{j}(X)" for j in range(width))
    recursive = parse_program(
        f"""
        buys(X, Y) :- likes(X, Y).
        buys(X, Y) :- {guards}, buys(Z, Y).
        """
    )
    rewriting = parse_program(
        f"""
        buys(X, Y) :- likes(X, Y).
        buys(X, Y) :- {guards}, likes(Z, Y).
        """
    )
    return recursive, rewriting


@pytest.mark.parametrize("width", [1, 2, 3])
def test_equivalence_vs_width(benchmark, width):
    recursive, rewriting = guarded_program(width)
    result = benchmark(
        lambda: is_equivalent_to_nonrecursive(recursive, rewriting, goal="buys")
    )
    assert result.equivalent
    benchmark.extra_info.update(result.stats)


def test_inequivalence_fast_fail(benchmark):
    recursive, _ = guarded_program(1)
    wrong = parse_program("buys(X, Y) :- likes(X, Y).")
    result = benchmark(
        lambda: is_equivalent_to_nonrecursive(recursive, wrong, goal="buys")
    )
    assert not result.equivalent
