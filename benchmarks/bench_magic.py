"""Ablation -- magic-sets rewriting vs direct bottom-up evaluation.

Supports the paper's motivating claim (Section 1, citing [BR86]) that
equivalence-preserving transformations enable cheaper evaluation: on a
bound-first reachability query over data with irrelevant components,
the magic rewriting derives an order of magnitude fewer facts.  The
star EDB comes from the workload generators
(:func:`repro.workloads.star_edges`), the same family behind the
registry's ``magic_star_8x12`` scenario.
"""

import pytest

from repro.datalog.engine import query
from repro.datalog.magic import derived_fact_count, magic_query, magic_rewrite
from repro.datalog.parser import parse_program
from repro.workloads import edges_database, star_edges

RIGHT_TC = parse_program("p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).")


def star_database(rays: int, length: int):
    """Several disjoint chains; only one is relevant to the query."""
    return edges_database(star_edges(rays, length), ("e",))


@pytest.mark.parametrize("rays", [4, 8])
def test_direct_evaluation(benchmark, rays):
    db = star_database(rays, 12)
    rows = benchmark(lambda: query(RIGHT_TC, db, "p"))
    assert len(rows) == rays * 12 * 13 // 2


@pytest.mark.parametrize("rays", [4, 8])
def test_magic_evaluation(benchmark, rays):
    db = star_database(rays, 12)
    rows = benchmark(lambda: magic_query(RIGHT_TC, db, "p", "bf", ["r0_0"]))
    assert len(rows) == 12
    counts = derived_fact_count(RIGHT_TC, db, "p", "bf", ["r0_0"])
    benchmark.extra_info.update(counts)
    assert counts["magic"] < counts["direct"]


def test_rewrite_cost(benchmark):
    rewriting = benchmark(lambda: magic_rewrite(RIGHT_TC, "p", "bf", ["r0_0"]))
    assert len(rewriting.program) >= len(RIGHT_TC)
