"""Ablation -- magic-sets rewriting vs direct bottom-up evaluation.

Supports the paper's motivating claim (Section 1, citing [BR86]) that
equivalence-preserving transformations enable cheaper evaluation: on a
bound-first reachability query over data with irrelevant components,
the magic rewriting derives an order of magnitude fewer facts.
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import evaluate, query
from repro.datalog.magic import derived_fact_count, magic_query, magic_rewrite
from repro.datalog.parser import parse_program

RIGHT_TC = parse_program("p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).")


def star_database(rays: int, length: int) -> Database:
    """Several disjoint chains; only one is relevant to the query."""
    db = Database()
    for ray in range(rays):
        for i in range(length):
            db.add("e", (f"r{ray}_{i}", f"r{ray}_{i+1}"))
    return db


@pytest.mark.parametrize("rays", [4, 8])
def test_direct_evaluation(benchmark, rays):
    db = star_database(rays, 12)
    rows = benchmark(lambda: query(RIGHT_TC, db, "p"))
    assert len(rows) == rays * 12 * 13 // 2


@pytest.mark.parametrize("rays", [4, 8])
def test_magic_evaluation(benchmark, rays):
    db = star_database(rays, 12)
    rows = benchmark(lambda: magic_query(RIGHT_TC, db, "p", "bf", ["r0_0"]))
    assert len(rows) == 12
    counts = derived_fact_count(RIGHT_TC, db, "p", "bf", ["r0_0"])
    benchmark.extra_info.update(counts)
    assert counts["magic"] < counts["direct"]


def test_rewrite_cost(benchmark):
    rewriting = benchmark(lambda: magic_rewrite(RIGHT_TC, "p", "bf", ["r0_0"]))
    assert len(rewriting.program) >= len(RIGHT_TC)
