"""E4 -- evaluation substrate: naive vs semi-naive fixpoints.

Not a paper table (the paper cites [BR86] for evaluation); regenerates
the standard expectation the machinery relies on: semi-naive beats
naive on deep recursion, and both compute identical fixpoints
(Proposition 2.6's ``Q_Pi(D)``).
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import naive_evaluate, seminaive_evaluate
from repro.programs import plain_transitive_closure


def chain_database(length: int) -> Database:
    db = Database()
    for i in range(length):
        db.add("e", (f"v{i}", f"v{i+1}"))
    return db


@pytest.mark.parametrize("length", [16, 32])
def test_seminaive_tc(benchmark, length):
    program = plain_transitive_closure()
    db = chain_database(length)
    result = benchmark(lambda: seminaive_evaluate(program, db))
    assert len(result.facts("p")) == length * (length + 1) // 2


@pytest.mark.parametrize("length", [16, 32])
def test_naive_tc(benchmark, length):
    program = plain_transitive_closure()
    db = chain_database(length)
    result = benchmark(lambda: naive_evaluate(program, db))
    assert len(result.facts("p")) == length * (length + 1) // 2


def test_fixpoints_agree(benchmark):
    program = plain_transitive_closure()
    db = chain_database(24)

    def both():
        return naive_evaluate(program, db).facts("p"), seminaive_evaluate(
            program, db
        ).facts("p")

    naive_rows, semi_rows = benchmark(both)
    assert naive_rows == semi_rows
