#!/usr/bin/env python
"""Load driver for the decision service daemon.

Starts a daemon (or targets a running one via ``--socket``), drives it
with ``--clients`` concurrent connections issuing a deterministic
round-robin mix of cheap registry scenarios, and appends a trajectory
record to ``BENCH_service.json`` with per-request latency percentiles
(``p50_s`` / ``p99_s``) and sustained throughput (``decisions_per_s``)
-- the served-system numbers the ROADMAP's north star asks for, gated
by ``check_regression.py`` like every other benchmark (throughput
regresses downward, latency upward).

Every response is verified: verdict ``ok`` must be true, and each
scenario's decision record must be identical across all requests that
served it (the coalescing/purity contract).  ``--chaos-drill`` repeats
the load with a planted worker crash (``crash`` fault on one scenario,
every attempt) and asserts the poisoned requests quarantine with typed
errors while every other verdict stays bit-identical to the clean run
-- the chaos-under-load acceptance drill, at load-driver scale.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py             # full run
    PYTHONPATH=src python benchmarks/bench_service.py --smoke     # CI scale
    PYTHONPATH=src python benchmarks/bench_service.py --smoke --chaos-drill
    PYTHONPATH=src python benchmarks/bench_service.py --socket /tmp/repro.sock
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import PoolConfig, ServiceConfig, start_in_thread  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.runner.trajectory import (  # noqa: E402
    append_trajectory,
    find_repo_root,
    run_metadata,
)

SERVICE_TRAJECTORY = "BENCH_service.json"

#: The request mix: cheap bench-tagged scenarios, round-robin.  Small
#: enough that the driver measures the service, not the decisions.
MIX = ("bounded_buys", "equiv_buys_bounded", "contain_chain_w1",
       "eval_tc_chain_120", "eval_sg_tree_d5")

#: The scenario the chaos drill poisons (crash on every attempt).
POISONED = "bounded_buys"


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def round_robin_schedule(client_index: int, per_client: int):
    """The classic mix: every scenario equally often, phase-shifted
    per client so the service sees all of them concurrently."""
    return [MIX[(client_index + i) % len(MIX)]
            for i in range(per_client)]


def zipf_schedule(client_index: int, per_client: int, seed: int = 1992):
    """Repeat-heavy traffic: scenario ranks drawn Zipf-style (rank k
    weighted 1/(k+1)), deterministic per (seed, client).  This is the
    distribution real decision services see -- a hot head of repeated
    questions and a long cold tail -- and what makes a served-decision
    result cache pay."""
    import random

    rng = random.Random(seed * 1009 + client_index)
    weights = [1.0 / (rank + 1) for rank in range(len(MIX))]
    return rng.choices(MIX, weights=weights, k=per_client)


def drive(socket_path: str, clients: int, per_client: int,
          schedule=round_robin_schedule):
    """Run the load: each client thread issues its share of the mix
    serially (one in flight per connection; concurrency comes from the
    client count).  *schedule* maps ``(client_index, per_client)`` to
    that client's scenario list.  Returns ``(samples, by_scenario,
    errors, wall)`` where each sample is ``(scenario, latency_s,
    cached)``."""
    samples = []
    by_scenario = {}
    errors = []
    lock = threading.Lock()

    def one_client(client_index: int) -> None:
        plan = schedule(client_index, per_client)
        with ServiceClient(socket_path=socket_path, timeout=300.0) as client:
            for scenario in plan:
                started = time.perf_counter()
                response = client.request(
                    {"op": "scenario", "scenario": scenario})
                elapsed = time.perf_counter() - started
                with lock:
                    if response["type"] == "decision":
                        samples.append((scenario, elapsed,
                                        response.get("cached", False)))
                        by_scenario.setdefault(scenario, []).append(
                            response["decision"])
                    else:
                        samples.append((scenario, elapsed, False))
                        errors.append((scenario, response))

    threads = [threading.Thread(target=one_client, args=(index,))
               for index in range(clients)]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_started
    return samples, by_scenario, errors, wall


def stable_blob(record: dict) -> str:
    """The deterministic slice of a decision record, as a comparable
    blob (timings and retry bookkeeping vary run to run)."""
    view = {key: record.get(key) for key in
            ("kind", "verdict", "ok", "checksum", "fingerprint")}
    stats = dict(record.get("stats") or {})
    stats.pop("retried_after", None)
    view["stats"] = stats
    return json.dumps(view, sort_keys=True, default=str)


def check_consistency(by_scenario) -> int:
    """Every request that served a scenario must have received the
    same record; returns the number of diverging scenarios."""
    divergences = 0
    for scenario, records in sorted(by_scenario.items()):
        blobs = {stable_blob(record) for record in records}
        if len(blobs) != 1:
            print(f"bench_service: DIVERGENCE in {scenario}: "
                  f"{len(blobs)} distinct records across "
                  f"{len(records)} responses")
            divergences += 1
        if not all(record.get("ok") for record in records):
            print(f"bench_service: verdict not ok for {scenario}")
            divergences += 1
    return divergences


def zipf_cache_phase(socket_dir: str, clients: int, per_client: int,
                     workers: int, executor: str, capacity: int):
    """The repeat-traffic phase: a fresh daemon with the result cache
    on, driven with Zipf-distributed repeats.  Records the cache hit
    rate and the hit-vs-miss latency split -- a cached p50 must be a
    small fraction of the computed p50 for the cache to be worth its
    memory -- and verifies cached replays stay bit-identical.
    Returns ``(entry, failures)``."""
    sock = str(Path(socket_dir) / "repro-zipf.sock")
    config = ServiceConfig(
        socket_path=sock, result_cache=capacity,
        pool=PoolConfig(workers=workers, executor=executor))
    with start_in_thread(config):
        samples, by_scenario, errors, wall = drive(
            sock, clients, per_client, schedule=zipf_schedule)
        with ServiceClient(socket_path=sock, timeout=60.0) as client:
            status = client.request({"op": "status"})["status"]

    failures = len(errors)
    for scenario, response in errors[:5]:
        print(f"bench_service: zipf ERROR response on {scenario}: "
              f"{response}")
    failures += check_consistency(by_scenario)

    latencies = [latency for _, latency, _ in samples]
    hit_latencies = [latency for _, latency, cached in samples if cached]
    miss_latencies = [latency for _, latency, cached in samples
                      if not cached]
    cache = status["result_cache"]
    total = len(samples)
    entry = {
        "name": "service_zipf_cache",
        "clients": clients,
        "requests": total,
        "workers": workers,
        "executor": executor,
        "result_cache": capacity,
        "cache_hit_rate": cache["hit_rate"],
        "p50_s": round(_percentile(latencies, 0.50), 6),
        "p99_s": round(_percentile(latencies, 0.99), 6),
        "hit_p50_s": (round(_percentile(hit_latencies, 0.50), 6)
                      if hit_latencies else None),
        "miss_p50_s": (round(_percentile(miss_latencies, 0.50), 6)
                       if miss_latencies else None),
        "decisions_per_s": round(total / wall, 1),
        "wall_s": round(wall, 3),
    }
    hit_p50 = entry["hit_p50_s"]
    miss_p50 = entry["miss_p50_s"]
    ratio = (f"{hit_p50 / miss_p50:.1%} of computed p50"
             if hit_p50 and miss_p50 else "n/a")
    print(f"bench_service: zipf: {total} decisions in {wall:.2f}s -- "
          f"hit rate {cache['hit_rate']:.0%}  "
          f"hit p50 {1000 * (hit_p50 or 0):.2f}ms ({ratio})  "
          f"miss p50 {1000 * (miss_p50 or 0):.2f}ms  "
          f"{entry['decisions_per_s']:.1f} decisions/s")
    return entry, failures


def chaos_drill(socket_dir: str, clients: int, per_client: int,
                workers: int, clean_blobs: dict,
                result_cache: int = 0) -> int:
    """The seeded drill: same load, but the poisoned scenario crashes
    its worker on every attempt.  Poisoned requests must quarantine
    with typed ``crash`` errors; every other scenario's record must be
    bit-identical to the clean run's.  Runs with the result cache
    *enabled* when ``result_cache > 0`` -- cached replays must stay
    bit-identical under chaos, and failures must never be cached.
    Returns the failure count."""
    sock = str(Path(socket_dir) / "repro-chaos.sock")
    config = ServiceConfig(
        socket_path=sock,
        result_cache=result_cache,
        pool=PoolConfig(workers=workers, executor="process",
                        max_attempts=2,
                        chaos=f"crash:scenario={POISONED},attempt=*"))
    with start_in_thread(config):
        samples, by_scenario, errors, wall = drive(
            sock, clients, per_client)

    failures = 0
    poisoned_errors = [e for e in errors if e[0] == POISONED]
    if by_scenario.get(POISONED):
        print(f"bench_service: chaos drill FAILED -- poisoned scenario "
              f"{POISONED} returned decisions")
        failures += 1
    if not poisoned_errors:
        print("bench_service: chaos drill FAILED -- poisoned scenario "
              "was never requested")
        failures += 1
    for scenario, response in errors:
        if scenario != POISONED or response.get("error") != "crash":
            print(f"bench_service: chaos drill FAILED -- unexpected "
                  f"error {response.get('error')!r} on {scenario}")
            failures += 1
    for scenario, records in sorted(by_scenario.items()):
        blobs = {stable_blob(record) for record in records}
        if blobs != {clean_blobs[scenario]}:
            print(f"bench_service: chaos drill FAILED -- {scenario} "
                  f"diverged from the clean run under chaos")
            failures += 1
    survivors = sum(len(records) for records in by_scenario.values())
    print(f"bench_service: chaos drill: {len(poisoned_errors)} poisoned "
          f"request(s) quarantined (typed crash), {survivors} innocent "
          f"request(s) bit-identical to the clean run, "
          f"{failures} failure(s)")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client connections (default: 4)")
    parser.add_argument("--requests", type=int, default=50,
                        help="requests per client (default: 50)")
    parser.add_argument("--workers", type=int, default=2,
                        help="daemon pool workers (default: 2)")
    parser.add_argument("--executor", choices=("process", "thread"),
                        default="thread",
                        help="daemon executor when self-hosting "
                             "(default: thread -- measures service "
                             "overhead, not process-pool IPC)")
    parser.add_argument("--socket", default=None,
                        help="drive an already-running daemon instead "
                             "of self-hosting one")
    parser.add_argument("--smoke", action="store_true",
                        help="CI scale: 2 clients x 10 requests")
    parser.add_argument("--chaos-drill", action="store_true",
                        help="also run the seeded crash drill (result "
                             "cache enabled) and verify zero verdict "
                             "divergences")
    parser.add_argument("--result-cache", type=int, default=64,
                        metavar="N",
                        help="result-cache capacity for the zipf "
                             "repeat-traffic phase and the chaos drill "
                             "(default: 64; 0 skips the phase)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for the trajectory JSON "
                             "(default: repo root; --smoke skips the "
                             "write unless --out is given)")
    args = parser.parse_args()

    clients = 2 if args.smoke else args.clients
    per_client = 10 if args.smoke else args.requests

    tmp = tempfile.mkdtemp(prefix="repro-service-")
    handle = None
    if args.socket is not None:
        sock = args.socket
    else:
        sock = str(Path(tmp) / "repro.sock")
        handle = start_in_thread(ServiceConfig(
            socket_path=sock,
            pool=PoolConfig(workers=args.workers,
                            executor=args.executor)))
    try:
        samples, by_scenario, errors, wall = drive(
            sock, clients, per_client)
        with ServiceClient(socket_path=sock, timeout=60.0) as client:
            status = client.request({"op": "status"})["status"]
    finally:
        if handle is not None:
            handle.stop()

    latencies = [latency for _, latency, _ in samples]
    total = len(latencies)
    if errors:
        for scenario, response in errors[:5]:
            print(f"bench_service: ERROR response on {scenario}: "
                  f"{response}")
        print(f"bench_service: {len(errors)}/{total} requests failed")
        return 1
    divergences = check_consistency(by_scenario)
    if divergences:
        return 1

    entry = {
        "name": "service_mix",
        "clients": clients,
        "requests": total,
        "workers": args.workers,
        "executor": args.executor if args.socket is None else "external",
        "p50_s": round(_percentile(latencies, 0.50), 6),
        "p99_s": round(_percentile(latencies, 0.99), 6),
        "mean_s": round(statistics.fmean(latencies), 6),
        "decisions_per_s": round(total / wall, 1),
        "wall_s": round(wall, 3),
        "coalesced": status["coalescer"]["joined"],
    }
    print(f"bench_service: {total} decisions in {wall:.2f}s -- "
          f"p50 {entry['p50_s'] * 1000:.2f}ms  "
          f"p99 {entry['p99_s'] * 1000:.2f}ms  "
          f"{entry['decisions_per_s']:.1f} decisions/s  "
          f"({entry['coalesced']} coalesced)")
    entries = [entry]

    if args.socket is None and args.result_cache > 0:
        zipf_entry, zipf_failures = zipf_cache_phase(
            tmp, clients, per_client, workers=args.workers,
            executor=args.executor, capacity=args.result_cache)
        if zipf_failures:
            return 1
        entries.append(zipf_entry)

    drill_failures = 0
    if args.chaos_drill:
        clean_blobs = {scenario: stable_blob(records[0])
                       for scenario, records in by_scenario.items()}
        drill_failures = chaos_drill(tmp, clients=2, per_client=5,
                                     workers=args.workers,
                                     clean_blobs=clean_blobs,
                                     result_cache=args.result_cache)

    record = run_metadata(find_repo_root())
    record["smoke"] = bool(args.smoke)
    record["entries"] = entries
    if args.smoke and args.out is None:
        print("bench_service: smoke run, trajectory not written "
              "(pass --out to write)")
    else:
        out_dir = args.out or find_repo_root()
        out_dir.mkdir(parents=True, exist_ok=True)
        path = Path(out_dir) / SERVICE_TRAJECTORY
        append_trajectory(path, record)
        print(f"bench_service: appended to {path}")
    return 1 if drill_failures else 0


if __name__ == "__main__":
    sys.exit(main())
