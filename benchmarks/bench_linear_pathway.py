"""E7 -- Theorem 5.12, EXPSPACE case: the word-automaton pathway for
linear (chain-form) programs vs the general tree pathway.

Paper claim: linear programs admit a cheaper (word-automata, PSPACE in
the automata) decision.  Both pathways must agree on every verdict;
the word pathway is expected to win on linear inputs.
"""

import pytest

from repro.core.tree_containment import datalog_contained_in_ucq
from repro.core.word_path import datalog_contained_in_ucq_linear
from repro.cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.parser import parse_atom
from repro.datalog.unfold import expansion_union
from repro.programs import buys_bounded, transitive_closure


def _union_for_tc():
    return expansion_union(transitive_closure(), "p", 3)


def _covering_union():
    return UnionOfConjunctiveQueries(
        [ConjunctiveQuery(parse_atom("buys(X0, X1)"), (parse_atom("likes(Z, X1)"),))]
    )


def test_word_pathway_negative(benchmark):
    program = transitive_closure()
    union = _union_for_tc()
    result = benchmark(
        lambda: datalog_contained_in_ucq_linear(program, "p", union)
    )
    assert not result.contained


def test_tree_pathway_negative(benchmark):
    program = transitive_closure()
    union = _union_for_tc()
    result = benchmark(lambda: datalog_contained_in_ucq(program, "p", union))
    assert not result.contained


def test_word_pathway_positive(benchmark):
    program = buys_bounded()
    union = _covering_union()
    result = benchmark(
        lambda: datalog_contained_in_ucq_linear(program, "buys", union)
    )
    assert result.contained


def test_tree_pathway_positive(benchmark):
    program = buys_bounded()
    union = _covering_union()
    result = benchmark(
        lambda: datalog_contained_in_ucq(program, "buys", union)
    )
    assert result.contained
