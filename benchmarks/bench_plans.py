"""E-PLAN -- compiled join plans vs the interpretive evaluator.

Not a paper table: measures the engine rework (PR 1) and the columnar
data plane (PR 4).  The compiled paths -- join order fixed at compile
time, constants interned to ints, indexes maintained incrementally;
executed row-at-a-time (backend="rows") or as batch kernels over
column stores (backend="columnar") -- must (a) produce bit-identical
results to the interpretive path on every program in the library and
(b) beat it on the linear-pathway and chained-recursion workloads.
"""

import random
import time

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import Engine, EngineConfig
from repro.programs import library as lib

COLUMNAR = Engine(EngineConfig(compiled=True, backend="columnar"))
COMPILED = Engine(EngineConfig(compiled=True, backend="rows"))
INTERPRETIVE = Engine(EngineConfig(compiled=False))


def chain_database(length: int, predicates=("e",)) -> Database:
    db = Database()
    for i in range(length):
        for predicate in predicates:
            db.add(predicate, (f"v{i}", f"v{i+1}"))
    return db


def labeled_graph(nodes: int, edge_prob: float = 0.4, seed: int = 7) -> Database:
    rng = random.Random(seed)
    db = Database()
    names = [f"n{i}" for i in range(nodes)]
    for a in names:
        for b in names:
            if rng.random() < edge_prob:
                db.add("e", (a, b))
                db.add("e0", (a, b))
    db.add("e", (names[0], names[1]))
    db.add("e0", (names[0], names[1]))
    for i, name in enumerate(names):
        db.add("zero" if i % 2 == 0 else "one", (name,))
        db.add("flat", (name, names[(i + 1) % nodes]))
        db.add("up", (name, names[(i + 2) % nodes]))
        db.add("down", (name, names[(i + 3) % nodes]))
        for j in range(4):
            db.add(f"g{j}", (name, names[(i + 1) % nodes]))
    return db


# The two acceptance workloads: linear pathway (the paper's Example 2.5
# shape on a long chain) and chained recursion (guarded linear rule).
WORKLOADS = {
    "linear-pathway": (lib.transitive_closure(),
                       chain_database(64, ("e", "e0"))),
    "chained-recursion": (lib.chain_program(3),
                          chain_database(48, ("g0", "g1", "g2", "e0"))),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_compiled_engine(benchmark, workload):
    program, db = WORKLOADS[workload]
    result = benchmark(lambda: COMPILED.evaluate(program, db))
    assert result.fixpoint


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_columnar_engine(benchmark, workload):
    program, db = WORKLOADS[workload]
    result = benchmark(lambda: COLUMNAR.evaluate(program, db))
    assert result.fixpoint


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_interpretive_engine(benchmark, workload):
    program, db = WORKLOADS[workload]
    result = benchmark(lambda: INTERPRETIVE.evaluate(program, db))
    assert result.fixpoint


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_compiled_beats_interpretive(benchmark, workload):
    """The headline claim: compiled+interned wins on both workloads.

    Measured directly (best of 3) rather than via the benchmark
    fixture so the two paths run back to back on the same process
    state; the margin (interpretive is ~10x slower here) makes the
    assertion robust to timer noise.
    """
    program, db = WORKLOADS[workload]

    def best_of(engine, reps=3):
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            engine.evaluate(program, db)
            best = min(best, time.perf_counter() - start)
        return best

    def measure():
        return best_of(COMPILED), best_of(INTERPRETIVE)

    compiled_s, interpretive_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["compiled_s"] = compiled_s
    benchmark.extra_info["interpretive_s"] = interpretive_s
    benchmark.extra_info["speedup"] = interpretive_s / compiled_s
    assert compiled_s < interpretive_s * 0.7, (
        f"compiled path ({compiled_s:.4f}s) should beat the interpretive "
        f"path ({interpretive_s:.4f}s) on {workload}"
    )


def _library_cases():
    graph = labeled_graph(5)
    likes = Database.from_facts([
        ("likes", ("ann", "widget")), ("trendy", ("bob",)),
        ("knows", ("bob", "ann")), ("knows", ("cid", "bob")),
        ("part", ("w1", "w2")), ("part", ("w2", "w3")),
        ("direct", ("w1", "w2")), ("blanket", ("w1",)),
    ])
    return [
        ("buys_bounded", lib.buys_bounded(), likes),
        ("buys_bounded_rewriting", lib.buys_bounded_rewriting(), likes),
        ("buys_recursive", lib.buys_recursive(), likes),
        ("buys_recursive_rewriting", lib.buys_recursive_rewriting(), likes),
        ("transitive_closure", lib.transitive_closure(), graph),
        ("plain_transitive_closure", lib.plain_transitive_closure(), graph),
        ("dist_3", lib.dist(3), graph),
        ("dist_le_2", lib.dist_le(2), graph),
        ("equal_2", lib.equal(2), graph),
        ("word_3", lib.word(3), graph),
        ("chain_program_4", lib.chain_program(4), graph),
        ("nonlinear_reach", lib.nonlinear_reach(), graph),
        ("same_generation", lib.same_generation(), graph),
        ("widget_supply_chain", lib.widget_supply_chain(), likes),
        ("widget_certified", lib.widget_certified(), likes),
        ("widget_certified_rewriting", lib.widget_certified_rewriting(), likes),
    ]


def test_bit_identical_across_library(benchmark):
    """evaluate() agrees across all three paths -- columnar batch
    kernels, row-at-a-time compiled plans, and the interpretive
    reference: idb rows, stage count and fixpoint flag -- on every
    library program, for the unbounded fixpoint and a spread of stage
    bounds."""

    def check_all():
        checked = 0
        for name, program, db in _library_cases():
            for max_stages in (None, 0, 1, 2, 5):
                a = COMPILED.evaluate(program, db, max_stages=max_stages)
                b = INTERPRETIVE.evaluate(program, db, max_stages=max_stages)
                c = COLUMNAR.evaluate(program, db, max_stages=max_stages)
                assert a.idb == b.idb == c.idb, (name, max_stages)
                assert a.stages == b.stages == c.stages, (name, max_stages)
                assert a.fixpoint == b.fixpoint == c.fixpoint, (name, max_stages)
                checked += 1
        return checked

    checked = benchmark.pedantic(check_all, rounds=1, iterations=1)
    assert checked == len(_library_cases()) * 5
