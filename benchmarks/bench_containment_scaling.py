"""E6 -- Theorem 5.12: containment of recursive programs in UCQs.

The paper proves a doubly exponential worst case.  This bench measures
the implementation's actual growth on two controlled families:

* program width: ``chain_program(w)`` adds EDB guards to the recursive
  rule, growing ``var(Pi)`` and hence the instance space exponentially
  in the rule width -- the automata sizes recorded in extra_info grow
  accordingly (the Proposition 5.9 alphabet);
* union size: containment of transitive closure in its own depth-k
  truncations (always False -- unboundedness -- but the search space
  grows with k).
"""

import pytest

from repro.core.tree_containment import datalog_contained_in_ucq
from repro.cq.query import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.parser import parse_atom
from repro.datalog.unfold import expansion_union
from repro.programs import chain_program, transitive_closure


def covering_union(width: int) -> UnionOfConjunctiveQueries:
    # 'some g0-edge out of X0' union 'a bare e0 edge' covers every
    # expansion of chain_program(width).
    return UnionOfConjunctiveQueries(
        [
            ConjunctiveQuery(parse_atom("p(X0, X1)"), (parse_atom("e0(X0, X1)"),)),
            ConjunctiveQuery(parse_atom("p(X0, X1)"), (parse_atom("g0(X0, Z)"),)),
        ]
    )


@pytest.mark.parametrize("width", [1, 2])
def test_containment_vs_program_width(benchmark, width):
    program = chain_program(width)
    union = covering_union(width)
    result = benchmark(lambda: datalog_contained_in_ucq(program, "p", union))
    assert result.contained
    benchmark.extra_info.update(result.stats)


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_containment_vs_truncation_depth(benchmark, depth):
    program = transitive_closure()
    union = expansion_union(program, "p", depth)
    result = benchmark(lambda: datalog_contained_in_ucq(program, "p", union))
    assert not result.contained  # transitive closure is unbounded
    benchmark.extra_info.update(result.stats)
    benchmark.extra_info["union_disjuncts"] = len(union)


def test_antichain_ablation_on(benchmark):
    program = transitive_closure()
    union = expansion_union(program, "p", 3)
    result = benchmark(
        lambda: datalog_contained_in_ucq(program, "p", union, use_antichain=True)
    )
    assert not result.contained
    benchmark.extra_info["profiles"] = result.stats["profiles"]


def test_antichain_ablation_off(benchmark):
    program = transitive_closure()
    union = expansion_union(program, "p", 3)
    result = benchmark.pedantic(
        lambda: datalog_contained_in_ucq(program, "p", union, use_antichain=False),
        rounds=2, iterations=1,
    )
    assert not result.contained
    benchmark.extra_info["profiles"] = result.stats["profiles"]
