"""E6 -- Theorem 5.12: containment of recursive programs in UCQs.

The paper proves a doubly exponential worst case.  This bench measures
the implementation's actual growth on two controlled families, with
configurations drawn from the scenario registry
(:mod:`repro.workloads`) so the benchmark, the batch runner, and CI
exercise the same inputs:

* program width: ``guarded_chain(w)`` adds EDB guards to the recursive
  rule, growing ``var(Pi)`` and hence the instance space exponentially
  in the rule width -- the automata sizes recorded in extra_info grow
  accordingly (the Proposition 5.9 alphabet);
* union size: containment of transitive closure in its own depth-k
  truncations (always False -- unboundedness -- but the search space
  grows with k).
"""

import pytest

from repro.core.tree_containment import datalog_contained_in_ucq
from repro.datalog.unfold import expansion_union
from repro.programs import transitive_closure
from repro.workloads import covering_union, get_scenario, guarded_chain


@pytest.mark.parametrize("width", [1, 2])
def test_containment_vs_program_width(benchmark, width):
    scenario = get_scenario(f"contain_chain_w{width}")
    payload = scenario.build()
    result = benchmark(lambda: datalog_contained_in_ucq(
        payload["program"], payload["goal"], payload["union"]))
    assert result.contained == scenario.expected["contained"]
    benchmark.extra_info.update(result.stats)


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_containment_vs_truncation_depth(benchmark, depth):
    scenario = get_scenario(f"contain_tc_trunc{depth}")
    payload = scenario.build()
    result = benchmark(lambda: datalog_contained_in_ucq(
        payload["program"], payload["goal"], payload["union"]))
    assert result.contained == scenario.expected["contained"]
    benchmark.extra_info.update(result.stats)
    benchmark.extra_info["union_disjuncts"] = len(payload["union"])


def test_antichain_ablation_on(benchmark):
    program = transitive_closure()
    union = expansion_union(program, "p", 3)
    result = benchmark(
        lambda: datalog_contained_in_ucq(program, "p", union, use_antichain=True)
    )
    assert not result.contained
    benchmark.extra_info["profiles"] = result.stats["profiles"]


def test_antichain_ablation_off(benchmark):
    program = transitive_closure()
    union = expansion_union(program, "p", 3)
    result = benchmark.pedantic(
        lambda: datalog_contained_in_ucq(program, "p", union, use_antichain=False),
        rounds=2, iterations=1,
    )
    assert not result.contained
    benchmark.extra_info["profiles"] = result.stats["profiles"]


def test_width_family_agrees_with_registry(benchmark):
    """The registry's covering union is the one this file used to
    define ad hoc; keep them provably in sync."""
    union = covering_union()
    program = guarded_chain(1)
    result = benchmark.pedantic(
        lambda: datalog_contained_in_ucq(program, "p", union),
        rounds=1, iterations=1,
    )
    assert result.contained
