"""E2/E3 -- Figures 1 and 2: tree machinery.

Regenerates the expansion tree / unfolding tree / proof tree trio for
the transitive-closure program and times construction, connectedness
analysis, and the Proposition 5.5 renaming.
"""

from repro.programs import transitive_closure
from repro.trees.expansion import unfolding_trees
from repro.trees.proof import (
    OccurrenceClasses,
    proof_tree_to_expansion_tree,
    proof_trees,
)
from repro.trees.render import render_figure


def test_unfolding_tree_construction(benchmark):
    program = transitive_closure()

    def build():
        return [t for t in unfolding_trees(program, "p", 6)]

    trees = benchmark(build)
    assert len(trees) == 6  # one per height 1..6
    assert sorted(t.height() for t in trees) == list(range(1, 7))


def test_figure_rendering(benchmark):
    program = transitive_closure()
    trees = sorted(unfolding_trees(program, "p", 3), key=lambda t: t.height())
    text = benchmark(
        lambda: render_figure(trees[2], trees[0], "(a)", "(b)")
    )
    assert "p(X0, X1)" in text


def test_proof_tree_enumeration_and_renaming(benchmark):
    program = transitive_closure()

    def run():
        out = []
        for tree in proof_trees(program, "p", 2):
            classes = OccurrenceClasses(tree)
            renamed = proof_tree_to_expansion_tree(tree)
            out.append((tree, classes, renamed))
        return out

    results = benchmark(run)
    assert len(results) == 252  # 36 height-1 + 216 height-2 trees
    for tree, _classes, renamed in results[:20]:
        renamed.validate(program)
