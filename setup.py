"""Legacy setup shim for offline editable installs (see pyproject.toml)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Chaudhuri & Vardi, 'On the Equivalence of Recursive "
        "and Nonrecursive Datalog Programs' (PODS 1992 / JCSS 1997)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
