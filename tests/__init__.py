"""Test package marker.

Several test modules import shared generators with
``from .conftest import ...``; making ``tests`` a package gives those
relative imports a parent package under plain
``python -m pytest`` runs.
"""
