"""Turing-machine substrate tests (Section 5.3 preliminaries)."""

import pytest

from repro.datalog.errors import ValidationError
from repro.lowerbounds.turing import (
    LEFT,
    RIGHT,
    STAY,
    AlternatingTuringMachine,
    TuringMachine,
    is_composite,
    local_relations,
    simple_accepting_machine,
    simple_rejecting_machine,
    sweeping_machine,
    symbol_name,
)


class TestSimulation:
    def test_accepting_machine(self):
        assert simple_accepting_machine().accepts_in_space(2)

    def test_rejecting_machine(self):
        assert not simple_rejecting_machine().accepts_in_space(2, max_steps=100)

    def test_sweeping_machine(self):
        machine = sweeping_machine()
        assert machine.accepts_in_space(2)
        assert machine.accepts_in_space(4)

    def test_run_configurations_ends_accepting(self):
        machine = sweeping_machine()
        history = machine.run_configurations(2)
        final = next(c for c in history[-1] if is_composite(c))
        assert final[0] in machine.accepting_states

    def test_head_cannot_leave_tape(self):
        machine = TuringMachine(
            states=frozenset({"q0", "qa"}),
            tape_symbols=frozenset({"b"}),
            blank="b",
            initial_state="q0",
            accepting_states=frozenset({"qa"}),
            transitions={("q0", "b"): ("q0", "b", LEFT)},
        )
        assert not machine.accepts_in_space(2, max_steps=10)

    def test_validation(self):
        with pytest.raises(ValidationError):
            TuringMachine(
                states=frozenset({"q0"}),
                tape_symbols=frozenset({"b"}),
                blank="x",
                initial_state="q0",
                accepting_states=frozenset(),
                transitions={},
            )

    def test_symbol_name(self):
        assert symbol_name("b") == "b"
        assert symbol_name(("q0", "b")) == "q0_b"

    def test_cell_symbols(self):
        machine = simple_accepting_machine()
        symbols = machine.cell_symbols()
        assert "b" in symbols and ("q0", "b") in symbols
        assert len(symbols) == 3 + 2 * 3


class TestLocalRelations:
    @pytest.mark.parametrize(
        "machine",
        [simple_accepting_machine(), simple_rejecting_machine(), sweeping_machine()],
    )
    def test_simulation_satisfies_relations(self, machine):
        r_m, r_left, r_right = local_relations(machine)
        history = machine.run_configurations(4)
        for before, after in zip(history, history[1:]):
            for i in range(1, len(before) - 1):
                assert (before[i - 1], before[i], before[i + 1], after[i]) in r_m
            assert (before[0], before[1], after[0]) in r_left
            assert (before[-2], before[-1], after[-1]) in r_right

    def test_relations_reject_wrong_successor(self):
        machine = sweeping_machine()
        r_m, _, _ = local_relations(machine)
        history = machine.run_configurations(4)
        before, after = history[0], history[1]
        # Corrupt one cell of the successor.
        wrong = "1" if after[1] != "1" else "b"
        assert (before[0], before[1], before[2], wrong) not in r_m

    def test_double_composite_excluded(self):
        machine = sweeping_machine()
        r_m, _, _ = local_relations(machine)
        head = ("q0", "b")
        assert not any(
            t for t in r_m if t[0] == head and t[1] == head
        )


class TestAlternating:
    def _machine(self, universal: bool) -> AlternatingTuringMachine:
        # Left branch accepts immediately; right branch rejects.
        return AlternatingTuringMachine(
            states=frozenset({"q0", "qa", "qr"}),
            tape_symbols=frozenset({"b", "1"}),
            blank="b",
            initial_state="q0",
            accepting_states=frozenset({"qa"}),
            universal_states=frozenset({"q0"}) if universal else frozenset(),
            left_transitions={("q0", "b"): ("qa", "1", STAY)},
            right_transitions={("q0", "b"): ("qr", "1", STAY)},
        )

    def test_existential_accepts(self):
        assert self._machine(universal=False).accepts_in_space(2)

    def test_universal_rejects(self):
        assert not self._machine(universal=True).accepts_in_space(2)

    def test_universal_accepts_when_both_branches_do(self):
        machine = AlternatingTuringMachine(
            states=frozenset({"q0", "qa"}),
            tape_symbols=frozenset({"b", "1"}),
            blank="b",
            initial_state="q0",
            accepting_states=frozenset({"qa"}),
            universal_states=frozenset({"q0"}),
            left_transitions={("q0", "b"): ("qa", "1", STAY)},
            right_transitions={("q0", "b"): ("qa", "b", RIGHT)},
        )
        assert machine.accepts_in_space(2)
