"""Tests for the optimization extensions: uniform containment [Sa88b]
and magic-sets rewriting [BR86]."""

import random

import pytest

from repro.datalog.database import Database
from repro.datalog.engine import query
from repro.datalog.errors import ValidationError
from repro.datalog.magic import derived_fact_count, magic_query, magic_rewrite
from repro.datalog.parser import parse_program
from repro.datalog.uniform import (
    rule_uniformly_subsumed,
    uniformly_contained_in,
    uniformly_equivalent,
)
from repro.programs import buys_bounded, buys_bounded_rewriting

from .conftest import random_graph_database

LEFT_TC = parse_program("p(X, Y) :- e(X, Y).\np(X, Y) :- p(X, Z), e(Z, Y).")
RIGHT_TC = parse_program("p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).")
DOUBLE_TC = parse_program("p(X, Y) :- e(X, Y).\np(X, Y) :- p(X, Z), p(Z, Y).")


class TestUniformContainment:
    def test_linear_variants_in_nonlinear(self):
        assert uniformly_contained_in(LEFT_TC, DOUBLE_TC)
        assert uniformly_contained_in(RIGHT_TC, DOUBLE_TC)

    def test_nonlinear_not_uniform_in_linear(self):
        # p(x,z), p(z,y) |- p(x,y) needs the nonlinear rule; the linear
        # programs cannot derive it from bare IDB facts.
        assert not uniformly_contained_in(DOUBLE_TC, LEFT_TC)
        assert not uniformly_contained_in(DOUBLE_TC, RIGHT_TC)

    def test_left_right_mutually_not_uniform(self):
        assert not uniformly_contained_in(LEFT_TC, RIGHT_TC)
        assert not uniformly_contained_in(RIGHT_TC, LEFT_TC)

    def test_self_equivalence(self):
        assert uniformly_equivalent(LEFT_TC, LEFT_TC)

    def test_uniform_strictly_stronger_than_containment(self):
        # Example 1.1: Pi_1 is EQUIVALENT to its rewriting but not
        # uniformly contained in it (uniform treats buys as input).
        assert not uniformly_contained_in(buys_bounded(), buys_bounded_rewriting())
        assert uniformly_contained_in(buys_bounded_rewriting(), buys_bounded())

    def test_uniform_implies_semantic_containment(self):
        rng = random.Random(3)
        assert uniformly_contained_in(RIGHT_TC, DOUBLE_TC)
        for _ in range(10):
            db = random_graph_database(rng, nodes=5)
            assert query(RIGHT_TC, db, "p") <= query(DOUBLE_TC, db, "p")

    def test_unsafe_rule_rejected(self):
        program = parse_program("p(X, W) :- e(X, X).")
        with pytest.raises(ValidationError):
            rule_uniformly_subsumed(program.rules[0], RIGHT_TC)

    def test_edb_headed_subsumption(self):
        # A rule deriving nothing new: e(X,Y) :- e(X,Y) style identity
        # via an IDB alias.
        alias = parse_program("p(X, Y) :- e(X, Y).")
        assert uniformly_contained_in(alias, RIGHT_TC)


def chain_db(length: int, extra_component: int = 0) -> Database:
    db = Database()
    for i in range(length):
        db.add("e", (f"v{i}", f"v{i+1}"))
    for i in range(extra_component):
        db.add("e", (f"w{i}", f"w{i+1}"))
    return db


class TestMagicSets:
    def test_agrees_with_direct_evaluation(self):
        db = chain_db(12, extra_component=12)
        rows = magic_query(RIGHT_TC, db, "p", "bf", ["v4"])
        direct = frozenset(
            r for r in query(RIGHT_TC, db, "p") if r[0].value == "v4"
        )
        assert rows == direct

    def test_free_free_adornment_degenerates_to_full(self):
        db = chain_db(6)
        rows = magic_query(RIGHT_TC, db, "p", "ff", [])
        assert rows == query(RIGHT_TC, db, "p")

    def test_bound_both(self):
        db = chain_db(8)
        rows = magic_query(RIGHT_TC, db, "p", "bb", ["v1", "v5"])
        assert rows == frozenset({tuple(r for r in rows)[0]}) if rows else True
        assert len(rows) == 1

    def test_relevance_pruning(self):
        db = chain_db(10, extra_component=40)
        counts = derived_fact_count(RIGHT_TC, db, "p", "bf", ["v8"])
        assert counts["magic"] < counts["direct"]

    def test_random_graphs_differential(self):
        rng = random.Random(19)
        for _ in range(10):
            db = random_graph_database(rng, nodes=6)
            start = sorted(db.active_domain(), key=repr)[0]
            rows = magic_query(RIGHT_TC, db, "p", "bf", [start])
            direct = frozenset(
                r for r in query(RIGHT_TC, db, "p") if r[0] == start
            )
            assert rows == direct

    def test_nonlinear_program(self):
        rng = random.Random(23)
        for _ in range(5):
            db = random_graph_database(rng, nodes=5)
            start = sorted(db.active_domain(), key=repr)[0]
            rows = magic_query(DOUBLE_TC, db, "p", "bf", [start])
            direct = frozenset(
                r for r in query(DOUBLE_TC, db, "p") if r[0] == start
            )
            assert rows == direct

    def test_validation(self):
        with pytest.raises(ValidationError):
            magic_rewrite(RIGHT_TC, "p", "b", [])  # wrong length
        with pytest.raises(ValidationError):
            magic_rewrite(RIGHT_TC, "p", "bx", ["v0"])  # bad letter
        with pytest.raises(ValidationError):
            magic_rewrite(RIGHT_TC, "p", "bf", [])  # missing binding

    def test_rewrite_structure(self):
        rewriting = magic_rewrite(RIGHT_TC, "p", "bf", ["v0"])
        predicates = {r.head.predicate for r in rewriting.program.rules}
        assert "p__bf" in predicates
        assert "magic_p__bf" in predicates
        # Every p__bf rule is guarded by its magic predicate.
        for rule in rewriting.program.rules_for("p__bf"):
            assert rule.body[0].predicate == "magic_p__bf"
